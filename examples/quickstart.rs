//! Quickstart: solve consensus three ways in a few lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! 1. Deterministic simulation under a seeded adversarial scheduler;
//! 2. The same protocol on real OS threads;
//! 3. A different rung of the hierarchy: one `{read, multiply}` location.

use space_hierarchy::protocols::counter::{MultiplyCounterFamily, MultiplyFlavor};
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::racing::RacingConsensus;
use space_hierarchy::sim::{run_consensus, RandomScheduler};
use space_hierarchy::sync::run_threaded;

fn main() {
    // --- 1. Two max-registers, simulated (Theorem 4.2) ------------------
    let n = 8;
    let protocol = MaxRegConsensus::new(n);
    let inputs: Vec<u64> = (0..n as u64).map(|i| (i * 5) % n as u64).collect();

    let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(42), 1_000_000)
        .expect("protocol stays inside the model");
    report.check(&inputs).expect("agreement + validity");
    println!(
        "[sim]     {n} processes agreed on {} using {} max-registers in {} steps",
        report.unanimous().expect("all decide"),
        report.locations_touched,
        report.steps
    );

    // --- 2. The same protocol on real threads ---------------------------
    let outcome = run_threaded(&protocol, &inputs).expect("threads stay inside the model");
    outcome.report.check(&inputs).expect("agreement + validity");
    println!(
        "[threads] {n} threads agreed on {} using {} max-registers in {} steps",
        outcome.report.unanimous().expect("all decide"),
        outcome.report.locations_touched,
        outcome.report.steps
    );

    // --- 3. One location is enough if it multiplies (Theorem 3.3) -------
    let one_loc = RacingConsensus::new(
        MultiplyCounterFamily::new(n, MultiplyFlavor::ReadMultiply),
        n,
    );
    let report = run_consensus(&one_loc, &inputs, RandomScheduler::seeded(7), 4_000_000)
        .expect("protocol stays inside the model");
    report.check(&inputs).expect("agreement + validity");
    println!(
        "[sim]     {n} processes agreed on {} using {} {{read, multiply}} location(s)",
        report.unanimous().expect("all decide"),
        report.locations_touched
    );
}
