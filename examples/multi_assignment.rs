//! Section 7: atomic multiple assignment — transactions don't buy space.
//!
//! ```bash
//! cargo run --example multi_assignment
//! ```
//!
//! Multiple assignment (write several locations in one atomic step — what a
//! simple hardware transaction gives you) famously *does* change Herlihy's
//! computability hierarchy. The paper proves it barely moves the space
//! hierarchy: even with it, `⌈(n−1)/2ℓ⌉` `ℓ`-buffers are necessary. This
//! example (1) runs the buffer consensus with its append step as a real
//! atomic multiple assignment, showing identical space, and (2) exercises the
//! Lemma 7.1 packing machinery that powers the proof.

use space_hierarchy::model::Protocol;
use space_hierarchy::protocols::buffer::BufferCounterFamily;
use space_hierarchy::protocols::racing::RacingConsensus;
use space_hierarchy::sim::{run_consensus, RandomScheduler};
use space_hierarchy::verify::packing::{
    find_k_packing, fully_packed_locations, is_k_packing, repack,
};

fn main() {
    let n = 6;
    let ell = 2;
    let inputs = [5, 0, 3, 3, 1, 5];

    println!("— Theorem 6.3 with and without multiple assignment —\n");
    for multi in [false, true] {
        let family = BufferCounterFamily::new(n, n, ell).with_multi_assign(multi);
        let protocol = RacingConsensus::new(family, n);
        let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(4), 8_000_000)
            .expect("in-model");
        report.check(&inputs).expect("agreement + validity");
        println!(
            "  {:<34} decided {} on {} buffers in {} steps",
            protocol.name(),
            report.unanimous().unwrap(),
            report.locations_touched,
            report.steps
        );
    }
    println!("\n  Same ⌈n/ℓ⌉ = {} buffers either way — Theorem 7.5's prediction.", n.div_ceil(ell));

    println!("\n— Lemma 7.1: repairing k-packings along an Eulerian path —\n");
    // 2ℓ = 4. Six covering processes; location 0 is forced.
    let covers = vec![
        vec![0],
        vec![0],
        vec![0],
        vec![0],
        vec![0, 1],
        vec![0, 1],
    ];
    let k = 4;
    let g = find_k_packing(&covers, k).expect("4-packing exists");
    println!("  covers  = {covers:?}");
    println!("  packing = {g:?} (k = {k})");
    assert!(is_k_packing(&covers, &g, k));
    let fully = fully_packed_locations(&covers, k).expect("feasible");
    println!("  fully {k}-packed locations: {fully:?} (every packing puts {k} processes there)");

    // A second packing that disagrees somewhere lets us walk the repair path.
    let mut reversed = covers.clone();
    for c in reversed.iter_mut() {
        c.reverse();
    }
    let h = find_k_packing(&reversed, k).expect("still feasible");
    let count = |pk: &[usize], r: usize| pk.iter().filter(|&&x| x == r).count();
    if let Some(r1) = (0..2).find(|&r| count(&g, r) > count(&h, r)) {
        let out = repack(&g, &h, r1);
        println!(
            "  g packs {} in location {r1}, h packs {}: repair path {:?} moves one process",
            count(&g, r1),
            count(&h, r1),
            out.path
        );
        assert!(is_k_packing(&covers, &out.packing, k));
        println!("  repaired packing {:?} is still a {k}-packing ✓", out.packing);
    } else {
        println!("  g and h already agree everywhere — both optimal");
    }
}
