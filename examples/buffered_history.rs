//! Section 6 end to end: one `ℓ`-buffer is a history object is `ℓ` registers
//! is (almost) anything.
//!
//! ```bash
//! cargo run --example buffered_history
//! ```
//!
//! Reproduces Figure 1's "ℓ concurrent appends" pattern on the deterministic
//! machine with a scripted scheduler, then uses the native thread-safe
//! [`HistoryObject`](space_hierarchy::sync::objects::HistoryObject) and runs
//! the `⌈n/ℓ⌉`-buffer consensus of Theorem 6.3.

use space_hierarchy::protocols::buffer::{buffer_consensus, reconstruct_history, Record};
use space_hierarchy::model::Value;
use space_hierarchy::sim::{run_consensus, RandomScheduler};
use space_hierarchy::sync::objects::HistoryObject;

fn main() {
    // --- Figure 1: ℓ concurrent appends, reconstructed ------------------
    let ell = 4;
    println!("Figure 1 pattern with ℓ = {ell}:");
    // A pre-history of 3 records, then ℓ appends that all performed their
    // get-history() before any of them wrote.
    let old: Vec<Value> = (0..3)
        .map(|i| {
            Record {
                writer: 9,
                seq: i,
                payload: Value::int(i),
            }
            .encode()
        })
        .collect();
    let entries: Vec<Value> = (0..ell as u64)
        .map(|w| {
            Value::pair(
                Value::seq(old.iter().cloned()),
                Record {
                    writer: w,
                    seq: 0,
                    payload: Value::int(100 + w),
                }
                .encode(),
            )
        })
        .collect();
    let history = reconstruct_history(&entries);
    println!(
        "  buffer shows {} pairs, reconstruction recovers all {} records: {:?}",
        ell,
        history.len(),
        history
            .iter()
            .map(|r| Record::decode(r).payload)
            .collect::<Vec<_>>()
    );
    assert_eq!(history.len(), 3 + ell);

    // --- The same object, native and threaded ---------------------------
    println!("\nNative HistoryObject under 4 threads:");
    let h: HistoryObject<(usize, u64)> = HistoryObject::new(4);
    std::thread::scope(|s| {
        for w in 0..4usize {
            let h = &h;
            s.spawn(move || {
                for i in 0..100u64 {
                    h.append(w, (w, i));
                }
            });
        }
    });
    let hist = h.get_history();
    println!("  {} appends linearized, none lost", hist.len());
    assert_eq!(hist.len(), 400);

    // --- Theorem 6.3: consensus on ⌈n/ℓ⌉ buffers -------------------------
    println!("\nTheorem 6.3, n = 8:");
    for ell in [1usize, 2, 4, 8] {
        let protocol = buffer_consensus(8, ell);
        let inputs = [7, 0, 3, 3, 5, 1, 0, 7];
        let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(3), 8_000_000)
            .expect("in-model");
        report.check(&inputs).expect("agreement + validity");
        println!(
            "  ℓ = {ell}: agreed on {} with ⌈8/{ell}⌉ = {} buffer(s)",
            report.unanimous().unwrap(),
            report.locations_touched
        );
        assert_eq!(report.locations_touched, 8usize.div_ceil(ell));
    }
}
