//! Reachable-configuration counts per Table-1 protocol.
//!
//! Runs the frontier state-space engine over each row's witnessing protocol
//! at a small `n` and a bounded horizon, printing how many semantically
//! distinct configurations are reachable, whether the horizon exhausted the
//! space, and that no agreement/validity violation exists within it. Also
//! demonstrates the engine features beyond plain exploration: the
//! process-symmetry reduction (anonymous protocols, duplicated inputs), the
//! worker-count invariance of outcomes, and the memory-bounded frontier
//! (a byte budget that delta-compresses and spills queued layers to disk
//! without changing a single reported number).

use space_hierarchy::protocols::bitwise::{tas_reset_consensus, write01_consensus};
use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::increment::IncrementFlavor;
use space_hierarchy::protocols::bitwise::increment_log_consensus;
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::registers::register_consensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::model::Protocol;
use space_hierarchy::verify::checker::{ExploreLimits, ExploreOutcome, Explorer};

fn row<P: Protocol>(name: &str, protocol: &P, inputs: &[u64], depth: usize)
where
    P::Proc: Send + Sync,
{
    let limits = ExploreLimits {
        depth,
        max_configs: 200_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let outcome = Explorer::new()
        .limits(limits)
        .explore(protocol, inputs)
        .expect("protocol runs inside the model");
    match outcome {
        ExploreOutcome::Clean { configs, complete } => println!(
            "  {name:<42} {configs:>7} configs to depth {depth:<3} {}",
            if complete { "(complete)" } else { "(horizon cut)" }
        ),
        other => println!("  {name:<42} VIOLATION: {other:?}"),
    }
}

fn main() {
    println!("Reachable state spaces of the Table-1 witnesses (n = 3):\n");
    row("write01 (row 2)", &write01_consensus(3), &[0, 1, 2], 12);
    row("n registers (row 3)", &register_consensus(3), &[0, 1, 2], 12);
    row("tas+reset (row 4)", &tas_reset_consensus(3), &[0, 1, 2], 12);
    row("swap laps (row 5)", &SwapConsensus::new(3), &[0, 1, 2], 12);
    row("2-buffers (row 6)", &buffer_consensus(3, 2), &[0, 1, 2], 12);
    row(
        "increment log n (row 7)",
        &increment_log_consensus(3, IncrementFlavor::Increment),
        &[0, 1, 2],
        12,
    );
    row("two max-registers (row 8)", &MaxRegConsensus::new(3), &[0, 1, 2], 12);
    row("compare-and-swap (row 9)", &CasConsensus::new(3), &[0, 1, 2], 12);

    println!("\nProcess-symmetry reduction (anonymous protocol, inputs [0, 0, 1]):");
    let protocol = MaxRegConsensus::new(3);
    let inputs = [0u64, 0, 1];
    let limits = ExploreLimits {
        depth: 10,
        max_configs: 200_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let plain = Explorer::new().limits(limits).explore(&protocol, &inputs).unwrap();
    let reduced = Explorer::new()
        .limits(limits)
        .symmetry_reduction(true)
        .explore(&protocol, &inputs)
        .unwrap();
    let (ExploreOutcome::Clean { configs: full, .. }, ExploreOutcome::Clean { configs: quotiented, .. }) =
        (&plain, &reduced)
    else {
        panic!("expected clean outcomes");
    };
    println!("  plain {full} configs, quotiented {quotiented} configs");
    assert!(quotiented < full);

    println!("\nWorker-count invariance (same verdict, same counterexample):");
    use space_hierarchy::verify::strawmen::OneMaxRegister;
    let reference = Explorer::new().explore(&OneMaxRegister::new(), &[0, 1]).unwrap();
    for workers in [2, 4, 8] {
        let outcome = Explorer::new()
            .workers(workers)
            .explore(&OneMaxRegister::new(), &[0, 1])
            .unwrap();
        assert_eq!(outcome, reference, "workers={workers}");
    }
    let ExploreOutcome::AgreementViolation { schedule, .. } = &reference else {
        panic!("one max-register must fail (Theorem 4.1)");
    };
    println!(
        "  1, 2, 4 and 8 workers all find the Theorem-4.1 violation via schedule {schedule:?}"
    );

    println!("\nMemory-bounded frontier (tas+reset, budget = 10% of observed peak):");
    let protocol = tas_reset_consensus(3);
    let inputs = [0u64, 1, 2];
    let limits = ExploreLimits {
        depth: 10,
        max_configs: 200_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let explorer = Explorer::new().limits(limits);
    let (outcome, stats) = explorer.explore_stats(&protocol, &inputs).unwrap();
    let budget = (stats.peak_resident_bytes / 10).max(1);
    let (spilled_outcome, spilled_stats) = explorer
        .memory_budget(Some(budget))
        .explore_stats(&protocol, &inputs)
        .unwrap();
    // The budget moves bytes to disk; it never changes what is explored.
    assert_eq!(spilled_outcome, outcome);
    assert_eq!(spilled_stats, stats);
    assert!(spilled_stats.bytes_spilled > 0);
    println!(
        "  unbounded: {} configs, {} KiB frontier-resident at peak",
        stats.configs,
        stats.peak_resident_bytes / 1024
    );
    println!(
        "  budget {} KiB: same outcome and stats bit for bit, {} KiB delta-spilled to disk",
        budget / 1024,
        spilled_stats.bytes_spilled / 1024
    );
}
