//! Watch two impossibility proofs defeat real code.
//!
//! ```bash
//! cargo run --example adversary_demo
//! ```
//!
//! The strawmen in `cbh-verify` are plausible consensus protocols that use
//! one location fewer than the lower bounds allow. The adversaries extracted
//! from Theorems 4.1 and 5.1 construct the interleavings that break them, and
//! the bounded model checker independently rediscovers a violating schedule.

use space_hierarchy::verify::adversary::{fetch_inc_adversary, max_register_interleave};
use space_hierarchy::verify::checker::{explore, ExploreLimits, ExploreOutcome};
use space_hierarchy::verify::strawmen::{OneFetchIncWord, OneMaxRegister, OneRegister};

fn main() {
    println!("— Theorem 4.1: one max-register cannot solve 2-process consensus —\n");
    let strawman = OneMaxRegister::new();
    let outcome = max_register_interleave(&strawman).expect("adversary runs");
    println!("  interleaving adversary vs OneMaxRegister: {outcome}");
    assert!(outcome.violated());

    println!("\n— Theorem 5.1: one {{read, write, fetch-and-increment}} word fails —\n");
    let strawman = OneFetchIncWord::new();
    let outcome = fetch_inc_adversary(&strawman).expect("adversary runs");
    println!("  write-obliteration adversary vs OneFetchIncWord: {outcome}");
    assert!(outcome.violated());

    println!("\n— The model checker finds the same bugs by brute force —\n");
    for (name, out) in [
        (
            "OneMaxRegister",
            explore(&OneMaxRegister::new(), &[0, 1], ExploreLimits::default()),
        ),
        (
            "OneRegister",
            explore(&OneRegister::new(2), &[0, 1], ExploreLimits::default()),
        ),
    ] {
        match out.expect("exploration runs") {
            ExploreOutcome::AgreementViolation { decisions, schedule } => {
                println!(
                    "  {name}: decisions {:?} after schedule {:?}",
                    decisions, schedule
                );
            }
            other => println!("  {name}: {other:?}"),
        }
    }

    println!("\nBoth lower bounds of Table 1's '2' and 'n' rows, witnessed on code.");
}
