//! Obstruction-freedom → randomized wait-freedom, live.
//!
//! ```bash
//! cargo run --example randomized_consensus
//! ```
//!
//! Runs the [GHHW13] transform on two very different protocols — the
//! two-max-register algorithm and the single fetch-and-add word of the
//! [FHS98] remark — under an oblivious adversary, reporting expected turns to
//! termination. The transform adds **zero** locations, which is why the space
//! hierarchy carries over to randomized computation.

use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::random::{expected_turns, faa_randomized_binary, run_randomized, RandomizedConfig};

fn main() {
    println!("Randomized wait-free consensus against an oblivious adversary\n");

    // Two max-registers, n = 6.
    let protocol = MaxRegConsensus::new(6);
    let inputs = [5, 0, 3, 3, 1, 2];
    let stats = run_randomized(&protocol, &inputs, RandomizedConfig::seeded(1))
        .expect("terminates with probability 1");
    stats.report.check(&inputs).expect("agreement + validity");
    println!(
        "  max-registers: agreed on {} in {} turns ({} real steps), {} locations",
        stats.report.unanimous().unwrap(),
        stats.turns,
        stats.steps,
        stats.report.locations_touched
    );

    // One fetch-and-add word (the [FHS98] observation).
    let protocol = faa_randomized_binary(6);
    let inputs = [1, 0, 1, 1, 0, 0];
    let stats = run_randomized(&protocol, &inputs, RandomizedConfig::seeded(2))
        .expect("terminates with probability 1");
    stats.report.check(&inputs).expect("agreement + validity");
    println!(
        "  one faa word:  agreed on {} in {} turns, {} location (vs Ω(√n) historyless!)",
        stats.report.unanimous().unwrap(),
        stats.turns,
        stats.report.locations_touched
    );

    // Expected turns across seeds, growing n — the A3 ablation in miniature.
    println!("\n  expected turns to termination (20 seeds each):");
    for n in [2usize, 4, 8] {
        let protocol = SwapConsensus::new(n);
        let inputs: Vec<u64> = (0..n as u64).collect();
        let avg = expected_turns(&protocol, &inputs, 0..20).expect("all runs terminate");
        println!("    swap protocol, n = {n}: {avg:.0} turns");
    }
}
