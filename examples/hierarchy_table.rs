//! Walk the space hierarchy: run one protocol per Table 1 row and print the
//! measured space next to the paper's bound.
//!
//! ```bash
//! cargo run --example hierarchy_table
//! ```
//!
//! (The `table1` binary in `cbh-bench` is the full harness; this example is
//! the guided-tour version.)

use space_hierarchy::protocols::bitwise::increment_log_consensus;
use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::hierarchy::render_table;
use space_hierarchy::protocols::increment::IncrementFlavor;
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::registers::register_consensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::protocols::tracks::track_consensus;
use space_hierarchy::protocols::util::BitWrite;
use space_hierarchy::model::Protocol;
use space_hierarchy::sim::{run_consensus, RandomScheduler};

fn demo<P: Protocol>(protocol: &P, inputs: &[u64], claimed: &str) {
    let report = run_consensus(protocol, inputs, RandomScheduler::seeded(1), 8_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    report
        .check(inputs)
        .unwrap_or_else(|v| panic!("{}: {v}", protocol.name()));
    println!(
        "  {:<42} claimed {:<10} touched {:>3} locations   ({} steps)",
        protocol.name(),
        claimed,
        report.locations_touched,
        report.steps
    );
}

fn main() {
    println!("The paper's Table 1:\n\n{}", render_table());

    let n = 6;
    let inputs: Vec<u64> = vec![5, 0, 3, 3, 1, 5];
    println!("One protocol per row, n = {n}, inputs {inputs:?}:\n");

    demo(&track_consensus(n, BitWrite::Write1), &inputs, "∞");
    demo(&register_consensus(n), &inputs, "n");
    demo(&SwapConsensus::new(n), &inputs, "n−1");
    demo(&buffer_consensus(n, 2), &inputs, "⌈n/ℓ⌉");
    demo(
        &increment_log_consensus(n, IncrementFlavor::Increment),
        &inputs,
        "O(log n)",
    );
    demo(&MaxRegConsensus::new(n), &inputs, "2");
    demo(&CasConsensus::new(n), &inputs, "1");

    println!("\nReading the column: the same consensus task needs unboundedly many");
    println!("write(1)-registers, n−1 swap locations, two max-registers, or a single");
    println!("compare-and-swap word — space, not computability, separates them.");
}
