//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment is offline, so this crate wraps `std::sync`
//! primitives behind the `parking_lot` API the workspace uses: infallible
//! `lock`/`read`/`write` (no `Result`, no lock poisoning — a panicked holder
//! does not poison the lock for everyone else) and `into_inner` without
//! `unwrap`. Fairness and parking-lot-style adaptive spinning are not
//! reproduced; `std`'s mutexes are plenty for the thread-backed runtime.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with an infallible [`lock`](Mutex::lock).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired. Unlike `std`, poisoning is ignored:
    /// the data is returned even if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A readers-writer lock with infallible [`read`](RwLock::read) /
/// [`write`](RwLock::write).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Blocks until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a holder panicked");
    }
}
