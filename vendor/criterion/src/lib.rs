//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this crate implements the benching
//! surface the workspace uses: [`Criterion`] with builder-style knobs,
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros for `harness = false`
//! bench targets.
//!
//! Statistics are intentionally simple — mean and min over `sample_size`
//! samples, each sized to roughly fill `measurement_time` — with no outlier
//! analysis, plots or HTML reports. `cargo test` does **not** execute
//! `harness = false` bench targets; to smoke-check that every bench routine
//! actually runs, invoke `cargo bench -- --test` (as CI does): each
//! benchmark then runs exactly one iteration, so broken benches fail fast
//! without burning measurement time.

use std::fmt;
use std::time::{Duration, Instant};

/// How a bench binary was invoked (parsed from the command line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test` on a bench target).
    Test,
    /// Compile-only invocations never reach `main`; `--list` prints names.
    List,
}

fn mode_from_args() -> (Mode, Option<String>) {
    let mut mode = Mode::Bench;
    let mut filter = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => mode = Mode::Test,
            "--list" => mode = Mode::List,
            // Value-taking flags of real criterion / libtest: consume the
            // value too, so it is not mistaken for a benchmark filter.
            "--save-baseline" | "--baseline" | "--load-baseline" | "--skip"
            | "--sample-size" | "--warm-up-time" | "--measurement-time"
            | "--profile-time" | "--color" | "--format" | "--logfile" => {
                args.next();
            }
            // Bare flags cargo/libtest conventionally pass through; ignored.
            s if s.starts_with('-') => {}
            s => filter = Some(s.to_string()),
        }
    }
    (mode, filter)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let (mode, filter) = mode_from_args();
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            mode,
            filter,
        }
    }
}

impl Criterion {
    /// Samples (timed batches) per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget the samples aim to fill.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up running time before measurement.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run_one(&label, f);
        self
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        match self.mode {
            Mode::List => {
                println!("{label}: benchmark");
                return;
            }
            Mode::Test => {
                let mut b = Bencher {
                    iters_per_sample: 1,
                    samples: 1,
                    warm_up: Duration::ZERO,
                    elapsed: Vec::new(),
                };
                f(&mut b);
                println!("test {label} ... ok");
                return;
            }
            Mode::Bench => {}
        }
        // Calibrate: run once to estimate cost, then pick a per-sample
        // iteration count that fills measurement_time across sample_size.
        let mut calib = Bencher {
            iters_per_sample: 1,
            samples: 1,
            warm_up: self.warm_up_time,
            elapsed: Vec::new(),
        };
        f(&mut calib);
        let per_iter = calib.elapsed.first().copied().unwrap_or(Duration::ZERO);
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = if per_iter.as_nanos() == 0 {
            1000
        } else {
            (budget / per_iter.as_nanos()).clamp(1, 1_000_000) as u64
        };
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: self.sample_size,
            warm_up: Duration::ZERO,
            elapsed: Vec::new(),
        };
        f(&mut b);
        let times: Vec<f64> = b
            .elapsed
            .iter()
            .map(|d| d.as_secs_f64() / iters as f64)
            .collect();
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{label:<56} mean {:>12}  min {:>12}  ({} samples x {iters} iters)",
            human_time(mean),
            human_time(min),
            times.len(),
        );
    }
}

fn human_time(secs: f64) -> String {
    if !secs.is_finite() {
        return "n/a".into();
    }
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing the parent driver's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function-name + parameter id, rendered as `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    warm_up: Duration,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, storing one elapsed time per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if !self.warm_up.is_zero() {
            let end = Instant::now() + self.warm_up;
            while Instant::now() < end {
                black_box(routine());
            }
        }
        self.elapsed.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.elapsed.push(start.elapsed());
        }
    }
}

/// An identity function the optimizer must assume reads its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// The `main` of a `harness = false` bench target: runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_routine() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(1),
            warm_up_time: Duration::ZERO,
            mode: Mode::Test,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0, "routine executed at least once");
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("ell", 4).to_string(), "ell/4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }

    #[test]
    fn human_time_scales() {
        assert!(human_time(2.0).ends_with(" s"));
        assert!(human_time(2e-3).ends_with(" ms"));
        assert!(human_time(2e-6).ends_with(" us"));
        assert!(human_time(2e-9).ends_with(" ns"));
    }
}
