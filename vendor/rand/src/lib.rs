//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment is offline, so the workspace vendors exactly the API
//! surface it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, `gen_ratio`, `gen_bool`.
//!
//! The generator is SplitMix64 (Steele, Lea, Flood 2014): a 64-bit state
//! advanced by a Weyl sequence and finalized with a murmur-style mixer. It is
//! deterministic in its seed, statistically solid for simulation workloads,
//! and — unlike the upstream `StdRng` — guaranteed stable across releases,
//! which the proptest-determinism policy of this workspace relies on.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the single source of entropy is `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` from raw random bits (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                let mut v = rng.next_u64() as u128;
                if core::mem::size_of::<$t>() > 8 {
                    v = (v << 64) | rng.next_u64() as u128;
                }
                v as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// A range-like argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                match ((end - start) as u128).checked_add(1) {
                    Some(span) => start + uniform_below(rng, span) as $t,
                    // Full-domain u128 range: any value works.
                    None => <$t as Standard>::sample(rng),
                }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                match ((end as $u).wrapping_sub(start as $u) as u128).checked_add(1) {
                    Some(span) => start.wrapping_add(uniform_below(rng, span) as $t),
                    // Full-domain i128 range: any value works.
                    None => <$t as Standard>::sample(rng),
                }
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

/// A uniform draw from `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        if span.is_power_of_two() {
            return (rng.next_u64() & (span - 1)) as u128;
        }
        // Reject the final partial copy of [0, span) inside [0, 2^64).
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return (v % span) as u128;
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX % span);
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < zone {
                return v % span;
            }
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "gen_ratio: numerator exceeds denominator"
        );
        self.gen_range(0..denominator) < numerator
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_stream_is_pinned_forever() {
        // Golden sequences: every saved fuzzer seed, shrunken reproducer and
        // deterministic proptest stream in this workspace assumes these exact
        // outputs. If this test breaks, the generator changed — do not update
        // the constants; restore the generator (or add a *new* one and leave
        // `StdRng` alone). The reference values are SplitMix64 (Steele, Lea,
        // Flood 2014) with the standard 0x9E3779B97F4A7C15 Weyl increment.
        let stream = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()]
        };
        assert_eq!(
            stream(0),
            [
                16294208416658607535,
                7960286522194355700,
                487617019471545679,
                17909611376780542444,
            ]
        );
        assert_eq!(
            stream(1),
            [
                10451216379200822465,
                13757245211066428519,
                17911839290282890590,
                8196980753821780235,
            ]
        );
        assert_eq!(
            stream(42),
            [
                13679457532755275413,
                2949826092126892291,
                5139283748462763858,
                6349198060258255764,
            ]
        );
    }

    #[test]
    fn gen_range_stream_is_pinned_forever() {
        // The rejection-sampling layer is part of the stable stream contract
        // too: shrunken reproducers replay through `gen_range`, not raw bits.
        let mut rng = StdRng::seed_from_u64(9);
        let drawn: Vec<usize> = (0..8).map(|_| rng.gen_range(0usize..5)).collect();
        assert_eq!(drawn, [3, 1, 3, 4, 1, 0, 3, 0]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let s = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_ratio(0, 10));
        assert!(rng.gen_ratio(10, 10));
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 drawn in 200 tries");
    }
}
