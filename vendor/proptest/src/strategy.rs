//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`] from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy is
/// a pure function of the RNG stream, which keeps replays exact.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for each `v` this strategy produces.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);

/// A fixed value repeated every case (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
