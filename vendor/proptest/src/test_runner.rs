//! The deterministic case runner.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// The workspace-wide base seed. Every property test's stream is derived
/// from this constant XOR an FNV hash of the test's name, so runs are
/// reproducible across machines and CI by construction. Override with the
/// `PROPTEST_SEED` environment variable to explore other streams.
pub const DEFAULT_SEED: u64 = 0x5ACE_417E_12A2_2016;

/// Configuration of a [`TestRunner`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Generated cases per test (`PROPTEST_CASES` scales the default).
    pub cases: u32,
    /// Give up if rejects (`prop_assume!` failures) exceed this count.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion: the property does not hold.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is replaced, not counted.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies; deterministic in `(seed, test name, case)`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A stream seeded directly (used by strategy unit tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runs one property test's cases.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRunner {
    /// A runner for the test named `name` under `config`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Accept both decimal and the 0x-prefixed hex form that failure
        // messages print, so replay instructions work verbatim.
        let parse_seed = |v: &str| match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => v.parse().ok(),
        };
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(DEFAULT_SEED);
        TestRunner {
            config,
            name,
            base_seed: base ^ fnv1a(name.as_bytes()),
        }
    }

    /// Runs `f` on `config.cases` generated cases.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (with seed and case context), or if
    /// `prop_assume!` rejected more than `config.max_global_rejects` cases.
    pub fn run<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut rejects = 0u32;
        let mut attempt = 0u64;
        let mut passed = 0u32;
        while passed < self.config.cases {
            let case_seed = self
                .base_seed
                .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempt += 1;
            let mut rng = TestRng::from_seed(case_seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "proptest '{}': too many prop_assume! rejections ({rejects})",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest '{}' failed at case {} (case seed {case_seed:#x}, \
                         replay with PROPTEST_SEED={:#x}): {reason}",
                        self.name, passed, self.base_seed ^ fnv1a(self.name.as_bytes()),
                    );
                }
            }
        }
    }
}
