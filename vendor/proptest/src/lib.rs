//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment is offline, so this crate implements exactly the
//! property-testing surface the workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, range / tuple / `any` /
//! mapped strategies, `proptest::collection::{vec, btree_set}`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Two deliberate simplifications versus upstream:
//!
//! - **No shrinking.** A failing case reports its seed, case index and the
//!   generated inputs (via the test's own assertion message); replaying is
//!   exact because generation is deterministic.
//! - **Deterministic by default.** Upstream draws a fresh entropy seed per
//!   run and persists failures in `proptest-regressions/`; here every test
//!   derives its stream from a fixed workspace seed XOR a hash of the test
//!   name, so CI runs are reproducible by construction. Set `PROPTEST_SEED`
//!   to explore a different stream, and `PROPTEST_CASES` to scale case
//!   counts; both are plain integers.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    //! The names a property test needs in scope.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: `fn name(arg in strategy, ..) { body }` items,
/// optionally preceded by `#![proptest_config(expr)]`.
///
/// Each declared function becomes an ordinary `#[test]` that runs the body
/// for `config.cases` generated inputs. The body may use `?` on
/// `Result<_, TestCaseError>` and may `return Ok(())` early.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
}

/// Like `assert!`, but fails the current generated case instead of
/// panicking directly (the runner panics with seed/case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, for property-test bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Like `assert_ne!`, for property-test bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l
            )));
        }
    }};
}

/// Discards the current generated case when its precondition fails; the
/// runner draws a replacement case instead of counting a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in 0u64..=4, c in -5i64..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..3, 0usize..2), 0..10)) {
            prop_assert!(v.len() < 10);
            for (x, y) in v {
                prop_assert!(x < 3 && y < 2);
            }
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(0u64..4, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn btree_sets_respect_domain(s in crate::collection::btree_set(0usize..5, 1..4)) {
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(s.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_but_test_passes(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn question_mark_works(x in 0u32..5) {
            fn helper(x: u32) -> Result<u32, TestCaseError> {
                Ok(x + 1)
            }
            let y = helper(x)?;
            prop_assert_eq!(y, x + 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.generate(&mut TestRng::from_seed(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.generate(&mut TestRng::from_seed(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn prop_map_applies() {
        let strat = (0u64..10).prop_map(|x| x * 2);
        for seed in 0..50 {
            let v = strat.generate(&mut TestRng::from_seed(seed));
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic_with_context() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
