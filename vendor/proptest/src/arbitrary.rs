//! The `any::<T>()` strategy: uniform draws over a type's whole domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
