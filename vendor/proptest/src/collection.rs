//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A target size for a generated collection: exact or drawn from a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        let mut set = BTreeSet::new();
        // Duplicates collapse; retry a bounded number of times so small
        // element domains cannot loop forever when `target` exceeds them.
        let mut attempts = 10 * target + 10;
        while set.len() < target && attempts > 0 {
            set.insert(self.element.generate(rng));
            attempts -= 1;
        }
        set
    }
}

/// `BTreeSet`s of `element` values with (up to) `size` members.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
