//! Signed arbitrary-precision integers with an inline small-integer fast path.
//!
//! Representation: a [`BigInt`] is either an inline `i64` (`Repr::Small`) or a
//! heap-backed sign + [`BigUint`] magnitude (`Repr::Big`). The representation
//! is **canonical**: every value that fits in an `i64` is stored inline, and
//! every constructor and arithmetic result re-normalises. Canonicality is what
//! makes the derived `PartialEq`/`Eq`/`Hash` correct — two equal values always
//! have byte-identical representations, no matter which sequence of operations
//! produced them — and it is why the model's hot path (`Value::Int` holding a
//! protocol counter or round number) never allocates.

use crate::biguint::BigUint;
use crate::ParseBigIntError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// The sign of a [`BigInt`]. Zero always has sign [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

/// Internal storage. Invariant: `Big` is only used for values outside the
/// `i64` range, so `Small` vs `Big` is decided by the value, never by the
/// construction path, and the derived `Eq`/`Hash` on [`BigInt`] are sound.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// `i64::MIN ..= i64::MAX`, inline, allocation-free.
    Small(i64),
    /// `|value| > i64` range. `sign` is never [`Sign::Zero`].
    Big {
        sign: Sign,
        mag: BigUint,
    },
}

/// A signed arbitrary-precision integer.
///
/// The `decrement()`/`multiply(x)` consensus protocol from the paper's
/// introduction distinguishes processes by whether the shared word went
/// negative, so the model's word type must be signed. Values that fit in an
/// `i64` — the overwhelmingly common case in protocol state — are stored
/// inline without heap allocation; arithmetic spills to the heap form only on
/// overflow and falls back to the inline form whenever a result shrinks.
///
/// # Examples
///
/// ```
/// use cbh_bigint::BigInt;
///
/// let v = BigInt::from(-3i64) * BigInt::from(7i64);
/// assert!(v.is_negative());
/// assert_eq!(v.to_string(), "-21");
/// assert!(v.is_inline());
///
/// // Spill past i64 and shrink back: the representation stays canonical.
/// let big = BigInt::from(i64::MAX) + BigInt::from(1i64);
/// assert!(!big.is_inline());
/// assert!((big - BigInt::from(1i64)).is_inline());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    repr: Repr,
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt::small(0)
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt::small(1)
    }

    #[inline]
    fn small(v: i64) -> Self {
        BigInt {
            repr: Repr::Small(v),
        }
    }

    /// Canonicalising constructor: inline when the value fits in `i64`.
    fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            return BigInt::small(0);
        }
        if let Some(m) = mag.to_u128() {
            if sign != Sign::Minus && m <= i64::MAX as u128 {
                return BigInt::small(m as i64);
            }
            if sign == Sign::Minus && m <= i64::MAX as u128 + 1 {
                return BigInt::small((m as i128).wrapping_neg() as i64);
            }
        }
        BigInt {
            repr: Repr::Big {
                sign: if sign == Sign::Zero { Sign::Plus } else { sign },
                mag,
            },
        }
    }

    /// Builds a value from a sign and magnitude; the sign of a zero magnitude
    /// is normalised to [`Sign::Zero`], and a magnitude in `i64` range is
    /// normalised to the inline representation.
    pub fn from_parts(sign: Sign, mag: BigUint) -> Self {
        BigInt::from_sign_mag(sign, mag)
    }

    /// Returns `true` if the value is stored in the inline (allocation-free)
    /// `i64` representation — by canonicality, exactly when it fits in `i64`.
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        match &self.repr {
            Repr::Small(v) => match v.cmp(&0) {
                Ordering::Less => Sign::Minus,
                Ordering::Equal => Sign::Zero,
                Ordering::Greater => Sign::Plus,
            },
            Repr::Big { sign, .. } => *sign,
        }
    }

    /// The magnitude (absolute value). Materialised on demand for inline
    /// values, so prefer [`BigInt::bit_len`] / [`BigInt::count_ones`] /
    /// [`BigInt::bit`] when only a property of the magnitude is needed.
    pub fn magnitude(&self) -> BigUint {
        match &self.repr {
            Repr::Small(v) => BigUint::from(v.unsigned_abs()),
            Repr::Big { mag, .. } => mag.clone(),
        }
    }

    /// Consumes the value and returns its magnitude.
    pub fn into_magnitude(self) -> BigUint {
        match self.repr {
            Repr::Small(v) => BigUint::from(v.unsigned_abs()),
            Repr::Big { mag, .. } => mag,
        }
    }

    /// Decomposes into owned sign and magnitude (slow-path helper).
    fn sign_mag(&self) -> (Sign, BigUint) {
        match &self.repr {
            Repr::Small(v) => {
                let sign = match v.cmp(&0) {
                    Ordering::Less => Sign::Minus,
                    Ordering::Equal => Sign::Zero,
                    Ordering::Greater => Sign::Plus,
                };
                (sign, BigUint::from(v.unsigned_abs()))
            }
            Repr::Big { sign, mag } => (*sign, mag.clone()),
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign() == Sign::Plus
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign() == Sign::Minus
    }

    /// Converts to `i64`, returning `None` on overflow. By canonicality this
    /// is a representation test: inline values fit, heap values never do.
    pub fn to_i64(&self) -> Option<i64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Big { .. } => None,
        }
    }

    /// Converts to `u64` if the value is a representable nonnegative integer.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => u64::try_from(*v).ok(),
            Repr::Big { sign, mag } => match sign {
                Sign::Minus => None,
                _ => mag.to_u64(),
            },
        }
    }

    /// Converts to `i128`, returning `None` on overflow.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as i128),
            Repr::Big { sign, mag } => {
                let m = mag.to_u128()?;
                match sign {
                    Sign::Zero => Some(0),
                    Sign::Plus => (m <= i128::MAX as u128).then_some(m as i128),
                    Sign::Minus => {
                        if m <= i128::MAX as u128 {
                            Some(-(m as i128))
                        } else if m == i128::MAX as u128 + 1 {
                            Some(i128::MIN)
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Number of significant bits of the magnitude; zero has bit length 0.
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => (64 - v.unsigned_abs().leading_zeros()) as usize,
            Repr::Big { mag, .. } => mag.bit_len(),
        }
    }

    /// Counts the 1-bits of the magnitude.
    pub fn count_ones(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => v.unsigned_abs().count_ones() as u64,
            Repr::Big { mag, .. } => mag.count_ones(),
        }
    }

    /// `self^exp` by binary exponentiation (sign follows exponent parity).
    pub fn pow(&self, exp: u64) -> BigInt {
        if let Repr::Small(v) = self.repr {
            if let Ok(e) = u32::try_from(exp) {
                if let Some(p) = v.checked_pow(e) {
                    return BigInt::small(p);
                }
            }
        }
        let (sign, mag) = self.sign_mag();
        let mag = mag.pow(exp);
        let sign = match sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Plus
                } else {
                    Sign::Zero
                }
            }
            Sign::Plus => Sign::Plus,
            Sign::Minus => {
                if exp.is_multiple_of(2) {
                    Sign::Plus
                } else {
                    Sign::Minus
                }
            }
        };
        BigInt::from_sign_mag(sign, mag)
    }

    /// Largest `k` such that `p^k` divides `|self|`; see
    /// [`BigUint::factor_multiplicity`].
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`.
    pub fn factor_multiplicity(&self, p: u64) -> u64 {
        match &self.repr {
            Repr::Small(v) => {
                assert!(p >= 2, "factor must be at least 2");
                let mut m = v.unsigned_abs();
                if m == 0 {
                    return 0;
                }
                let mut k = 0;
                while m % p == 0 {
                    m /= p;
                    k += 1;
                }
                k
            }
            Repr::Big { mag, .. } => mag.factor_multiplicity(p),
        }
    }

    /// Divides by a positive machine-word divisor using *Euclidean* semantics:
    /// the remainder is always in `0..d`, so digit extraction is stable for
    /// negative values too.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_euclid_u64(&self, d: u64) -> (BigInt, u64) {
        assert!(d != 0, "division by zero");
        match &self.repr {
            Repr::Small(v) => {
                // Widen to i128: |v| ≤ 2^63 and d ≥ 1, so the Euclidean
                // quotient always fits back in an i64.
                let (q, r) = ((*v as i128).div_euclid(d as i128), (*v as i128).rem_euclid(d as i128));
                (BigInt::small(q as i64), r as u64)
            }
            Repr::Big { sign, mag } => {
                let (q, r) = mag.div_rem_u64(d);
                match sign {
                    Sign::Zero => (BigInt::zero(), 0),
                    Sign::Plus => (BigInt::from_sign_mag(Sign::Plus, q), r),
                    Sign::Minus => {
                        if r == 0 {
                            (BigInt::from_sign_mag(Sign::Minus, q), 0)
                        } else {
                            // -(q*d + r) = -(q+1)*d + (d - r)
                            let q1 = q + BigUint::one();
                            (BigInt::from_sign_mag(Sign::Minus, q1), d - r)
                        }
                    }
                }
            }
        }
    }

    /// Returns bit `i` of the magnitude.
    pub fn bit(&self, i: u64) -> bool {
        match &self.repr {
            Repr::Small(v) => i < 64 && (v.unsigned_abs() >> i) & 1 == 1,
            Repr::Big { mag, .. } => mag.bit(i),
        }
    }

    /// Sets bit `i` of the magnitude to 1 (used by `set-bit(x)`).
    pub fn set_bit(&mut self, i: u64) {
        match &mut self.repr {
            Repr::Small(v) => {
                if *v >= 0 && i < 63 {
                    *v |= 1 << i; // stays within i64::MAX: pure fast path
                    return;
                }
                let sign = if *v < 0 { Sign::Minus } else { Sign::Plus };
                let mut mag = BigUint::from(v.unsigned_abs());
                mag.set_bit(i);
                *self = BigInt::from_sign_mag(sign, mag);
            }
            Repr::Big { mag, .. } => {
                // Setting a bit can only grow the magnitude, so the heap
                // form stays out of i64 range and the invariant holds.
                mag.set_bit(i);
            }
        }
    }

    /// Adds `rhs` into `self`.
    pub fn add_assign_ref(&mut self, rhs: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            match a.checked_add(*b) {
                Some(s) => self.repr = Repr::Small(s),
                None => *self = BigInt::from(*a as i128 + *b as i128),
            }
            return;
        }
        let (ss, mut sm) = self.sign_mag();
        let (rs, rm) = rhs.sign_mag();
        *self = match (ss, rs) {
            (_, Sign::Zero) => return,
            (Sign::Zero, _) => rhs.clone(),
            (a, b) if a == b => {
                sm.add_assign_ref(&rm);
                BigInt::from_sign_mag(ss, sm)
            }
            _ => match sm.cmp(&rm) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    sm.sub_assign_ref(&rm);
                    BigInt::from_sign_mag(ss, sm)
                }
                Ordering::Less => BigInt::from_sign_mag(rs, &rm - &sm),
            },
        };
    }

    /// Multiplies `self` by `rhs`.
    pub fn mul_assign_ref(&mut self, rhs: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            match a.checked_mul(*b) {
                Some(p) => self.repr = Repr::Small(p),
                None => *self = BigInt::from(*a as i128 * *b as i128),
            }
            return;
        }
        let (ss, sm) = self.sign_mag();
        let (rs, rm) = rhs.sign_mag();
        let sign = match (ss, rs) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        *self = BigInt::from_sign_mag(sign, sm.mul_ref(&rm));
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(small) => BigInt::small(small),
            Err(_) => BigInt::from_sign_mag(Sign::Plus, BigUint::from(v)),
        }
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> Self {
        BigInt::small(v as i64)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::small(v)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::small(v as i64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match i64::try_from(v) {
            Ok(small) => BigInt::small(small),
            Err(_) if v < 0 => BigInt::from_sign_mag(Sign::Minus, BigUint::from(v.unsigned_abs())),
            Err(_) => BigInt::from_sign_mag(Sign::Plus, BigUint::from(v as u128)),
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_sign_mag(Sign::Plus, mag)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // A heap value is outside i64 range, so its sign decides.
            (Repr::Small(_), Repr::Big { sign, .. }) => match sign {
                Sign::Minus => Ordering::Greater,
                _ => Ordering::Less,
            },
            (Repr::Big { sign, .. }, Repr::Small(_)) => match sign {
                Sign::Minus => Ordering::Less,
                _ => Ordering::Greater,
            },
            (Repr::Big { sign: a, mag: am }, Repr::Big { sign: b, mag: bm }) => match (a, b) {
                (x, y) if x != y => x.cmp(y),
                (Sign::Plus, _) => am.cmp(bm),
                (Sign::Minus, _) => bm.cmp(am),
                _ => Ordering::Equal,
            },
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt::small(n),
                // -i64::MIN = 2^63 spills to the heap form.
                None => BigInt::from_sign_mag(Sign::Plus, BigUint::from(v.unsigned_abs())),
            },
            Repr::Big { sign, mag } => {
                let sign = match sign {
                    Sign::Plus => Sign::Minus,
                    Sign::Minus => Sign::Plus,
                    Sign::Zero => Sign::Zero,
                };
                // Re-normalise: negating +2^63 lands back on i64::MIN.
                BigInt::from_sign_mag(sign, mag)
            }
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(mut self, rhs: BigInt) -> BigInt {
        self.add_assign_ref(&rhs);
        self
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(mut self, rhs: BigInt) -> BigInt {
        self.add_assign_ref(&-rhs);
        self
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        let mut out = self.clone();
        out.add_assign_ref(&-rhs);
        out
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        self.add_assign_ref(&-rhs);
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(mut self, rhs: BigInt) -> BigInt {
        self.mul_assign_ref(&rhs);
        self
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let mut out = self.clone();
        out.mul_assign_ref(rhs);
        out
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        self.mul_assign_ref(rhs);
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(v) => {
                let s = v.unsigned_abs().to_string();
                f.pad_integral(*v >= 0, "", &s)
            }
            Repr::Big { sign, mag } => {
                let s = mag.to_string();
                f.pad_integral(*sign != Sign::Minus, "", &s)
            }
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigIntError::empty());
        }
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: BigUint = digits.parse()?;
        Ok(BigInt::from_sign_mag(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalisation() {
        assert_eq!(BigInt::from_parts(Sign::Minus, BigUint::zero()), b(0));
        assert_eq!(b(0).sign(), Sign::Zero);
        assert!(b(5).is_positive() && b(-5).is_negative() && b(0).is_zero());
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        for a in [-7i128, -1, 0, 1, 7] {
            for c in [-9i128, -1, 0, 1, 9] {
                assert_eq!((b(a) + b(c)).to_i128(), Some(a + c), "{a} + {c}");
                assert_eq!((b(a) - b(c)).to_i128(), Some(a - c), "{a} - {c}");
                assert_eq!((b(a) * b(c)).to_i128(), Some(a * c), "{a} * {c}");
            }
        }
    }

    #[test]
    fn ordering_spans_signs() {
        assert!(b(-10) < b(-2));
        assert!(b(-2) < b(0));
        assert!(b(0) < b(3));
        assert!(b(3) < b(10));
    }

    #[test]
    fn negation_roundtrip() {
        assert_eq!(-b(42), b(-42));
        assert_eq!(-b(0), b(0));
        assert_eq!((-b(-7)).to_i128(), Some(7));
    }

    #[test]
    fn pow_sign_parity() {
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
        assert_eq!(b(0).pow(0), b(1));
        assert_eq!(b(0).pow(5), b(0));
    }

    #[test]
    fn euclid_div_rem_negative_values() {
        // -7 = -3*3 + 2
        let (q, r) = b(-7).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (-3, 2));
        let (q, r) = b(7).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (2, 1));
        let (q, r) = b(-6).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (-2, 0));
        let (q, r) = b(0).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (0, 0));
    }

    #[test]
    fn display_and_parse_signed() {
        assert_eq!(b(-12345).to_string(), "-12345");
        assert_eq!("-987654321987654321".parse::<BigInt>().unwrap().to_string(), "-987654321987654321");
        assert_eq!("+17".parse::<BigInt>().unwrap(), b(17));
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn to_i64_boundaries() {
        assert_eq!(BigInt::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((BigInt::from(i64::MAX) + b(1)).to_i64(), None);
        assert_eq!(b(-1).to_u64(), None);
    }

    #[test]
    fn set_bit_fixes_zero_sign() {
        let mut v = BigInt::zero();
        v.set_bit(10);
        assert!(v.is_positive());
        assert_eq!(v.to_i128(), Some(1024));
    }

    #[test]
    fn inline_exactly_within_i64_range() {
        assert!(b(0).is_inline());
        assert!(BigInt::from(i64::MAX).is_inline());
        assert!(BigInt::from(i64::MIN).is_inline());
        assert!(!b(i64::MAX as i128 + 1).is_inline());
        assert!(!b(i64::MIN as i128 - 1).is_inline());
        // from_parts normalises a small magnitude down to the inline form.
        assert!(BigInt::from_parts(Sign::Plus, BigUint::from(17u32)).is_inline());
        assert!(BigInt::from_parts(Sign::Minus, BigUint::from(1u128 << 63)).is_inline());
        assert!(!BigInt::from_parts(Sign::Plus, BigUint::from(1u128 << 63)).is_inline());
    }

    #[test]
    fn arithmetic_spills_and_returns_canonically() {
        let max = BigInt::from(i64::MAX);
        let one = BigInt::one();
        let spilled = &max + &one;
        assert!(!spilled.is_inline());
        let back = &spilled - &one;
        assert!(back.is_inline());
        assert_eq!(back, max);
        // Negating i64::MIN spills; negating back re-inlines.
        let min = BigInt::from(i64::MIN);
        let pos = -min.clone();
        assert!(!pos.is_inline());
        assert_eq!(-pos, min);
    }

    #[test]
    fn set_bit_spills_out_of_inline_range() {
        let mut v = BigInt::one();
        v.set_bit(63);
        assert!(!v.is_inline());
        assert_eq!(v.to_i128(), Some((1i128 << 63) + 1));
        let mut neg = b(-1);
        neg.set_bit(70);
        assert_eq!(neg.to_i128(), Some(-((1i128 << 70) + 1)));
    }

    #[test]
    fn bit_len_and_count_ones_match_magnitude() {
        assert_eq!(b(0).bit_len(), 0);
        assert_eq!(b(-9).bit_len(), 4);
        assert_eq!(b(9).count_ones(), 2);
        let big = b(1i128 << 100);
        assert_eq!(big.bit_len(), 101);
        assert_eq!(big.count_ones(), 1);
    }

    #[test]
    fn mixed_representation_ordering() {
        let small = BigInt::from(i64::MAX);
        let big_pos = b(i64::MAX as i128 + 1);
        let big_neg = b(i64::MIN as i128 - 1);
        assert!(small < big_pos);
        assert!(big_neg < small);
        assert!(big_neg < big_pos);
    }
}
