//! Signed arbitrary-precision integers (sign + magnitude).

use crate::biguint::BigUint;
use crate::ParseBigIntError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// The sign of a [`BigInt`]. Zero always has sign [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

/// A signed arbitrary-precision integer.
///
/// The `decrement()`/`multiply(x)` consensus protocol from the paper's
/// introduction distinguishes processes by whether the shared word went
/// negative, so the model's word type must be signed.
///
/// # Examples
///
/// ```
/// use cbh_bigint::BigInt;
///
/// let v = BigInt::from(-3i64) * BigInt::from(7i64);
/// assert!(v.is_negative());
/// assert_eq!(v.to_string(), "-21");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Builds a value from a sign and magnitude; the sign of a zero magnitude
    /// is normalised to [`Sign::Zero`].
    pub fn from_parts(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            let sign = if sign == Sign::Zero { Sign::Plus } else { sign };
            BigInt { sign, mag }
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value).
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes the value and returns its magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Converts to `i64`, returning `None` on overflow.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => (m <= i64::MAX as u128).then_some(m as i64),
            Sign::Minus => (m <= i64::MAX as u128 + 1).then(|| (m as i128).wrapping_neg() as i64),
        }
    }

    /// Converts to `u64` if the value is a representable nonnegative integer.
    pub fn to_u64(&self) -> Option<u64> {
        match self.sign {
            Sign::Minus => None,
            _ => self.mag.to_u64(),
        }
    }

    /// Converts to `i128`, returning `None` on overflow.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => (m <= i128::MAX as u128).then_some(m as i128),
            Sign::Minus => {
                if m <= i128::MAX as u128 {
                    Some(-(m as i128))
                } else if m == i128::MAX as u128 + 1 {
                    Some(i128::MIN)
                } else {
                    None
                }
            }
        }
    }

    /// `self^exp` by binary exponentiation (sign follows exponent parity).
    pub fn pow(&self, exp: u64) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Plus
                } else {
                    Sign::Zero
                }
            }
            Sign::Plus => Sign::Plus,
            Sign::Minus => {
                if exp.is_multiple_of(2) {
                    Sign::Plus
                } else {
                    Sign::Minus
                }
            }
        };
        BigInt::from_parts(sign, mag)
    }

    /// Largest `k` such that `p^k` divides `|self|`; see
    /// [`BigUint::factor_multiplicity`].
    pub fn factor_multiplicity(&self, p: u64) -> u64 {
        self.mag.factor_multiplicity(p)
    }

    /// Divides by a positive machine-word divisor using *Euclidean* semantics:
    /// the remainder is always in `0..d`, so digit extraction is stable for
    /// negative values too.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_euclid_u64(&self, d: u64) -> (BigInt, u64) {
        let (q, r) = self.mag.div_rem_u64(d);
        match self.sign {
            Sign::Zero => (BigInt::zero(), 0),
            Sign::Plus => (BigInt::from_parts(Sign::Plus, q), r),
            Sign::Minus => {
                if r == 0 {
                    (BigInt::from_parts(Sign::Minus, q), 0)
                } else {
                    // -(q*d + r) = -(q+1)*d + (d - r)
                    let q1 = q + BigUint::one();
                    (BigInt::from_parts(Sign::Minus, q1), d - r)
                }
            }
        }
    }

    /// Returns bit `i` of the magnitude.
    pub fn bit(&self, i: u64) -> bool {
        self.mag.bit(i)
    }

    /// Sets bit `i` of the magnitude to 1 (used by `set-bit(x)`).
    pub fn set_bit(&mut self, i: u64) {
        self.mag.set_bit(i);
        if self.sign == Sign::Zero && !self.mag.is_zero() {
            self.sign = Sign::Plus;
        }
    }

    /// Adds `rhs` into `self`.
    pub fn add_assign_ref(&mut self, rhs: &BigInt) {
        match (self.sign, rhs.sign) {
            (_, Sign::Zero) => {}
            (Sign::Zero, _) => *self = rhs.clone(),
            (a, b) if a == b => self.mag.add_assign_ref(&rhs.mag),
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => *self = BigInt::zero(),
                Ordering::Greater => self.mag.sub_assign_ref(&rhs.mag),
                Ordering::Less => {
                    let mag = &rhs.mag - &self.mag;
                    *self = BigInt::from_parts(rhs.sign, mag);
                }
            },
        }
    }

    /// Multiplies `self` by `rhs`.
    pub fn mul_assign_ref(&mut self, rhs: &BigInt) {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        let mag = self.mag.mul_ref(&rhs.mag);
        *self = BigInt::from_parts(sign, mag);
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_parts(Sign::Plus, BigUint::from(v))
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt::from_parts(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_parts(Sign::Plus, BigUint::from(v as u64))
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v < 0 {
            BigInt::from_parts(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_parts(Sign::Plus, BigUint::from(v as u128))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_parts(Sign::Plus, mag)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (a, b) if a != b => a.cmp(&b),
            (Sign::Plus, _) => self.mag.cmp(&other.mag),
            (Sign::Minus, _) => other.mag.cmp(&self.mag),
            _ => Ordering::Equal,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
        };
        BigInt {
            sign,
            mag: self.mag,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(mut self, rhs: BigInt) -> BigInt {
        self.add_assign_ref(&rhs);
        self
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(mut self, rhs: BigInt) -> BigInt {
        self.add_assign_ref(&-rhs);
        self
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        let mut out = self.clone();
        out.add_assign_ref(&-rhs);
        out
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        self.add_assign_ref(&-rhs);
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(mut self, rhs: BigInt) -> BigInt {
        self.mul_assign_ref(&rhs);
        self
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let mut out = self.clone();
        out.mul_assign_ref(rhs);
        out
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        self.mul_assign_ref(rhs);
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.mag.to_string();
        f.pad_integral(self.sign != Sign::Minus, "", &s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigIntError::empty());
        }
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: BigUint = digits.parse()?;
        Ok(BigInt::from_parts(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalisation() {
        assert_eq!(BigInt::from_parts(Sign::Minus, BigUint::zero()), b(0));
        assert_eq!(b(0).sign(), Sign::Zero);
        assert!(b(5).is_positive() && b(-5).is_negative() && b(0).is_zero());
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        for a in [-7i128, -1, 0, 1, 7] {
            for c in [-9i128, -1, 0, 1, 9] {
                assert_eq!((b(a) + b(c)).to_i128(), Some(a + c), "{a} + {c}");
                assert_eq!((b(a) - b(c)).to_i128(), Some(a - c), "{a} - {c}");
                assert_eq!((b(a) * b(c)).to_i128(), Some(a * c), "{a} * {c}");
            }
        }
    }

    #[test]
    fn ordering_spans_signs() {
        assert!(b(-10) < b(-2));
        assert!(b(-2) < b(0));
        assert!(b(0) < b(3));
        assert!(b(3) < b(10));
    }

    #[test]
    fn negation_roundtrip() {
        assert_eq!(-b(42), b(-42));
        assert_eq!(-b(0), b(0));
        assert_eq!((-b(-7)).to_i128(), Some(7));
    }

    #[test]
    fn pow_sign_parity() {
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
        assert_eq!(b(0).pow(0), b(1));
        assert_eq!(b(0).pow(5), b(0));
    }

    #[test]
    fn euclid_div_rem_negative_values() {
        // -7 = -3*3 + 2
        let (q, r) = b(-7).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (-3, 2));
        let (q, r) = b(7).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (2, 1));
        let (q, r) = b(-6).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (-2, 0));
        let (q, r) = b(0).div_rem_euclid_u64(3);
        assert_eq!((q.to_i128().unwrap(), r), (0, 0));
    }

    #[test]
    fn display_and_parse_signed() {
        assert_eq!(b(-12345).to_string(), "-12345");
        assert_eq!("-987654321987654321".parse::<BigInt>().unwrap().to_string(), "-987654321987654321");
        assert_eq!("+17".parse::<BigInt>().unwrap(), b(17));
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn to_i64_boundaries() {
        assert_eq!(BigInt::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((BigInt::from(i64::MAX) + b(1)).to_i64(), None);
        assert_eq!(b(-1).to_u64(), None);
    }

    #[test]
    fn set_bit_fixes_zero_sign() {
        let mut v = BigInt::zero();
        v.set_bit(10);
        assert!(v.is_positive());
        assert_eq!(v.to_i128(), Some(1024));
    }
}
