//! Arbitrary-precision integers for the unbounded-word shared-memory model.
//!
//! The space-hierarchy paper (Ellen, Gelashvili, Shavit, Zhu, PODC 2016) assumes
//! memory locations hold unbounded integers: the `multiply(x)` counter simulation
//! of Theorem 3.3 stores a product of primes that grows without bound, and the
//! `(r, x) ↦ (x+1)·yʳ` max-register encoding of Theorem 4.2 grows with the round
//! number `r`. Machine words would overflow and silently break the prime
//! decomposition, so the model is built on this crate.
//!
//! Only the operations the model needs are provided: ring arithmetic, comparison,
//! exponentiation by a machine-word exponent, division by machine-word divisors
//! (for digit extraction and prime factorisation), and single-bit access (for the
//! `set-bit(x)` counter). Full big-by-big division is deliberately out of scope.
//!
//! # Examples
//!
//! ```
//! use cbh_bigint::BigInt;
//!
//! let p = BigInt::from(3u64).pow(100) * BigInt::from(5u64).pow(7);
//! assert_eq!(p.factor_multiplicity(3), 100);
//! assert_eq!(p.factor_multiplicity(5), 7);
//! ```

mod bigint;
mod biguint;

pub use crate::bigint::{BigInt, Sign};
pub use crate::biguint::BigUint;

/// Errors produced when parsing a [`BigInt`] or [`BigUint`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl core::fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer"),
        }
    }
}

impl std::error::Error for ParseBigIntError {}

impl ParseBigIntError {
    pub(crate) fn empty() -> Self {
        ParseBigIntError {
            kind: ParseErrorKind::Empty,
        }
    }
    pub(crate) fn invalid(c: char) -> Self {
        ParseBigIntError {
            kind: ParseErrorKind::InvalidDigit(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_nonempty() {
        assert!(ParseBigIntError::empty().to_string().starts_with("cannot"));
        assert!(ParseBigIntError::invalid('z').to_string().contains('z'));
    }
}
