//! Unsigned arbitrary-precision magnitude.
//!
//! Representation: little-endian `u32` limbs with no trailing zero limbs
//! (so the empty limb vector is the canonical zero). `u32` limbs keep the
//! schoolbook multiplication carry inside a `u64`, which is all the model's
//! workloads need; values in the counter simulations grow to a few thousand
//! bits at most.

use crate::{ParseBigIntError, ParseErrorKind};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Sub, SubAssign};
use std::str::FromStr;

const LIMB_BITS: usize = 32;

/// An unsigned arbitrary-precision integer.
///
/// # Examples
///
/// ```
/// use cbh_bigint::BigUint;
///
/// let a = BigUint::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, canonical (no trailing zeros).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Builds a value from little-endian `u32` limbs (trailing zeros allowed).
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// A view of the little-endian limbs (canonical; no trailing zeros).
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Number of significant bits; zero has bit length 0.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the bit length.
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        match self.limbs.get(limb) {
            Some(&w) => (w >> off) & 1 == 1,
            None => false,
        }
    }

    /// Sets bit `i` to 1, growing the representation as needed.
    pub fn set_bit(&mut self, i: u64) {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Counts the 1-bits in the binary representation.
    pub fn count_ones(&self) -> u64 {
        self.limbs.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &w) in self.limbs.iter().enumerate() {
            v |= (w as u128) << (32 * i);
        }
        Some(v)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self += other`.
    pub fn add_assign_ref(&mut self, other: &BigUint) {
        let mut carry: u64 = 0;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = self.limbs[i] as u64 + b + carry;
            self.limbs[i] = s as u32;
            carry = s >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the magnitude cannot go negative).
    pub fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint subtraction underflow: {self} - {other}"
        );
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = self.limbs[i] as i64 - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            self.limbs[i] = d as u32;
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Schoolbook product `self * other`.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            let a = a as u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiplies in place by a machine word.
    pub fn mul_assign_u64(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        *self = self.mul_ref(&BigUint::from(m));
    }

    /// Divides by a machine-word divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        if d <= u32::MAX as u64 {
            // Fast path: one limb at a time.
            let d32 = d as u32;
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem: u64 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d32 as u64) as u32;
                rem = cur % d32 as u64;
            }
            (BigUint::from_limbs(q), rem)
        } else {
            // Two limbs at a time using u128 intermediates.
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem: u128 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u128;
                q[i] = (cur / d as u128) as u32;
                rem = cur % d as u128;
            }
            (BigUint::from_limbs(q), rem as u64)
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut result = BigUint::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul_ref(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul_ref(&base);
            }
        }
        result
    }

    /// Largest `k` such that `p^k` divides `self`; returns 0 for zero input.
    ///
    /// Used by the prime-encoded counter of Theorem 3.3 to recover component
    /// counts from the single memory word.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`.
    pub fn factor_multiplicity(&self, p: u64) -> u64 {
        assert!(p >= 2, "factor must be at least 2");
        if self.is_zero() {
            return 0;
        }
        let mut k = 0;
        let mut cur = self.clone();
        loop {
            let (q, r) = cur.div_rem_u64(p);
            if r != 0 {
                return k;
            }
            k += 1;
            cur = q;
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: BigUint) -> BigUint {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = (bits % LIMB_BITS) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &w in &self.limbs {
                out.push((w << bit_shift) | carry);
                carry = w >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel 9 decimal digits at a time.
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:09}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for BigUint {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigIntError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut out = BigUint::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or_else(|| ParseBigIntError::invalid(c))?;
            out.mul_assign_u64(10);
            out.add_assign_ref(&BigUint::from(d));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_is_canonical_and_default() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::default(), BigUint::zero());
        assert_eq!(BigUint::from_limbs(vec![0, 0, 0]), BigUint::zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = big(u64::MAX as u128);
        let b = big(1);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = big(1u128 << 96);
        let b = big(1);
        assert_eq!((&a - &b).to_u128(), Some((1u128 << 96) - 1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1) - big(2);
    }

    #[test]
    fn mul_matches_u128() {
        let a = big(0xDEAD_BEEF_CAFE);
        let b = big(0x1234_5678_9ABC);
        assert_eq!(a.mul_ref(&b).to_u128(), Some(0xDEAD_BEEF_CAFEu128 * 0x1234_5678_9ABC));
    }

    #[test]
    fn div_rem_small_and_large_divisor() {
        let v = big(123_456_789_012_345_678_901_234_567u128);
        let (q, r) = v.div_rem_u64(97);
        assert_eq!(
            q.to_u128().unwrap() * 97 + r as u128,
            123_456_789_012_345_678_901_234_567u128
        );
        let (q2, r2) = v.div_rem_u64(u64::MAX);
        assert_eq!(
            q2.to_u128().unwrap() * u64::MAX as u128 + r2 as u128,
            123_456_789_012_345_678_901_234_567u128
        );
    }

    #[test]
    fn pow_and_factor_multiplicity_roundtrip() {
        let v = BigUint::from(7u32).pow(23).mul_ref(&BigUint::from(11u32).pow(5));
        assert_eq!(v.factor_multiplicity(7), 23);
        assert_eq!(v.factor_multiplicity(11), 5);
        assert_eq!(v.factor_multiplicity(13), 0);
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(BigUint::from(5u32).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(3), BigUint::zero());
        assert_eq!(BigUint::one().pow(1000), BigUint::one());
    }

    #[test]
    fn bits_set_and_get() {
        let mut v = BigUint::zero();
        v.set_bit(0);
        v.set_bit(33);
        v.set_bit(100);
        assert!(v.bit(0) && v.bit(33) && v.bit(100));
        assert!(!v.bit(1) && !v.bit(99) && !v.bit(1000));
        assert_eq!(v.count_ones(), 3);
        assert_eq!(v.bit_len(), 101);
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let v = big(0xFFFF_FFFF_FFFF);
        assert_eq!((&v << 45), v.mul_ref(&BigUint::from(2u32).pow(45)));
        assert_eq!((&BigUint::zero() << 100), BigUint::zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let s = "934875938475983475983475987349857394857938475";
        let v: BigUint = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!("0".parse::<BigUint>().unwrap(), BigUint::zero());
        assert!("".parse::<BigUint>().is_err());
        assert!("12x".parse::<BigUint>().is_err());
    }

    #[test]
    fn ordering_is_by_magnitude() {
        assert!(big(100) < big(101));
        assert!(big(1u128 << 64) > big(u64::MAX as u128));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn display_pads_and_aligns() {
        assert_eq!(format!("{:>5}", big(42)), "   42");
    }
}
