//! Property tests for `cbh-bigint` against native-integer oracles.

use cbh_bigint::{BigInt, BigUint};
use proptest::prelude::*;

fn u(v: u128) -> BigUint {
    BigUint::from(v)
}

fn s(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..(1 << 100), b in 0u128..(1 << 24)) {
        prop_assert_eq!((&u(a) + &u(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..(1 << 100), b in 0u128..(1 << 100)) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&u(hi) - &u(lo)).to_u128(), Some(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in 0u128..(1 << 60), b in 0u128..(1 << 60)) {
        prop_assert_eq!(u(a).mul_ref(&u(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn div_rem_reconstructs(a in 0u128..u128::MAX / 2, d in 1u64..) {
        let (q, r) = u(a).div_rem_u64(d);
        prop_assert!((r as u128) < d as u128);
        let back = q.mul_ref(&u(d as u128)) + u(r as u128);
        prop_assert_eq!(back.to_u128(), Some(a));
    }

    #[test]
    fn signed_ring_ops_match_i128(a in -(1i128 << 60)..(1i128 << 60), b in -(1i128 << 60)..(1i128 << 60)) {
        prop_assert_eq!((s(a) + s(b)).to_i128(), Some(a + b));
        prop_assert_eq!((s(a) - s(b)).to_i128(), Some(a - b));
        prop_assert_eq!((s(a) * s(b)).to_i128(), Some(a * b));
    }

    #[test]
    fn signed_cmp_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(s(a as i128).cmp(&s(b as i128)), a.cmp(&b));
    }

    #[test]
    fn display_parse_roundtrip_unsigned(a in any::<u128>()) {
        let v = u(a);
        let back: BigUint = v.to_string().parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn display_parse_roundtrip_signed(a in any::<i128>()) {
        let v = s(a);
        let back: BigInt = v.to_string().parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn display_matches_native(a in any::<i128>()) {
        prop_assert_eq!(s(a).to_string(), a.to_string());
    }

    #[test]
    fn pow_matches_checked(base in 0u64..32, exp in 0u64..20) {
        if let Some(expect) = (base as u128).checked_pow(exp as u32) {
            prop_assert_eq!(u(base as u128).pow(exp).to_u128(), Some(expect));
        }
    }

    #[test]
    fn factor_multiplicity_detects_exponent(p in 2u64..50, k in 0u64..40, co in 1u64..1000) {
        // Make the cofactor coprime to p so k is exactly the multiplicity.
        let co = if co % p == 0 { co + 1 } else { co };
        prop_assume!(co % p != 0);
        let v = u(p as u128).pow(k).mul_ref(&u(co as u128));
        prop_assert_eq!(v.factor_multiplicity(p), k);
    }

    #[test]
    fn bit_roundtrip(positions in proptest::collection::btree_set(0u64..500, 0..20)) {
        let mut v = BigUint::zero();
        for &p in &positions {
            v.set_bit(p);
        }
        prop_assert_eq!(v.count_ones(), positions.len() as u64);
        for p in 0..500u64 {
            prop_assert_eq!(v.bit(p), positions.contains(&p));
        }
    }

    #[test]
    fn euclid_rem_in_range(a in any::<i128>(), d in 1u64..) {
        let (q, r) = s(a).div_rem_euclid_u64(d);
        prop_assert!((r as u128) < d as u128);
        // a == q*d + r
        let back = q * s(d as i128) + s(r as i128);
        prop_assert_eq!(back, s(a));
    }

    #[test]
    fn shl_matches_pow2_mul(a in 0u128..(1 << 80), sh in 0usize..64) {
        let v = u(a);
        let shifted = &v << sh;
        prop_assert_eq!(shifted, v.mul_ref(&u(1u128 << sh)));
    }
}
