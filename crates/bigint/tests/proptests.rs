//! Property tests for `cbh-bigint` against native-integer oracles.

use cbh_bigint::{BigInt, BigUint};
use proptest::prelude::*;

fn u(v: u128) -> BigUint {
    BigUint::from(v)
}

fn s(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..(1 << 100), b in 0u128..(1 << 24)) {
        prop_assert_eq!((&u(a) + &u(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..(1 << 100), b in 0u128..(1 << 100)) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&u(hi) - &u(lo)).to_u128(), Some(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in 0u128..(1 << 60), b in 0u128..(1 << 60)) {
        prop_assert_eq!(u(a).mul_ref(&u(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn div_rem_reconstructs(a in 0u128..u128::MAX / 2, d in 1u64..) {
        let (q, r) = u(a).div_rem_u64(d);
        prop_assert!((r as u128) < d as u128);
        let back = q.mul_ref(&u(d as u128)) + u(r as u128);
        prop_assert_eq!(back.to_u128(), Some(a));
    }

    #[test]
    fn signed_ring_ops_match_i128(a in -(1i128 << 60)..(1i128 << 60), b in -(1i128 << 60)..(1i128 << 60)) {
        prop_assert_eq!((s(a) + s(b)).to_i128(), Some(a + b));
        prop_assert_eq!((s(a) - s(b)).to_i128(), Some(a - b));
        prop_assert_eq!((s(a) * s(b)).to_i128(), Some(a * b));
    }

    #[test]
    fn signed_cmp_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(s(a as i128).cmp(&s(b as i128)), a.cmp(&b));
    }

    #[test]
    fn display_parse_roundtrip_unsigned(a in any::<u128>()) {
        let v = u(a);
        let back: BigUint = v.to_string().parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn display_parse_roundtrip_signed(a in any::<i128>()) {
        let v = s(a);
        let back: BigInt = v.to_string().parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn display_matches_native(a in any::<i128>()) {
        prop_assert_eq!(s(a).to_string(), a.to_string());
    }

    #[test]
    fn pow_matches_checked(base in 0u64..32, exp in 0u64..20) {
        if let Some(expect) = (base as u128).checked_pow(exp as u32) {
            prop_assert_eq!(u(base as u128).pow(exp).to_u128(), Some(expect));
        }
    }

    #[test]
    fn factor_multiplicity_detects_exponent(p in 2u64..50, k in 0u64..40, co in 1u64..1000) {
        // Make the cofactor coprime to p so k is exactly the multiplicity.
        let co = if co % p == 0 { co + 1 } else { co };
        prop_assume!(co % p != 0);
        let v = u(p as u128).pow(k).mul_ref(&u(co as u128));
        prop_assert_eq!(v.factor_multiplicity(p), k);
    }

    #[test]
    fn bit_roundtrip(positions in proptest::collection::btree_set(0u64..500, 0..20)) {
        let mut v = BigUint::zero();
        for &p in &positions {
            v.set_bit(p);
        }
        prop_assert_eq!(v.count_ones(), positions.len() as u64);
        for p in 0..500u64 {
            prop_assert_eq!(v.bit(p), positions.contains(&p));
        }
    }

    #[test]
    fn euclid_rem_in_range(a in any::<i128>(), d in 1u64..) {
        let (q, r) = s(a).div_rem_euclid_u64(d);
        prop_assert!((r as u128) < d as u128);
        // a == q*d + r
        let back = q * s(d as i128) + s(r as i128);
        prop_assert_eq!(back, s(a));
    }

    #[test]
    fn shl_matches_pow2_mul(a in 0u128..(1 << 80), sh in 0usize..64) {
        let v = u(a);
        let shifted = &v << sh;
        prop_assert_eq!(shifted, v.mul_ref(&u(1u128 << sh)));
    }
}

/// Values straddling the inline/heap boundary: `±(i64::MAX + offset)` and
/// `±(i64::MIN − offset)` territory, where every arithmetic result may spill
/// out of — or shrink back into — the inline `i64` representation.
fn near_boundary() -> impl Strategy<Value = i128> {
    (-4000i128..4000, 0usize..3).prop_map(|(offset, region)| match region {
        0 => i64::MAX as i128 + offset,
        1 => i64::MIN as i128 + offset,
        _ => offset,
    })
}

fn std_hash(v: &BigInt) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn inline_form_is_canonical_across_the_boundary(a in near_boundary()) {
        let v = s(a);
        prop_assert_eq!(v.is_inline(), i64::try_from(a).is_ok());
    }

    #[test]
    fn arithmetic_agrees_with_i128_across_the_boundary(a in near_boundary(), b in near_boundary()) {
        prop_assert_eq!((s(a) + s(b)).to_i128(), Some(a + b));
        prop_assert_eq!((s(a) - s(b)).to_i128(), Some(a - b));
        prop_assert_eq!((s(a) * s(3)).to_i128(), Some(a * 3));
        prop_assert_eq!((-s(a)).to_i128(), Some(-a));
    }

    #[test]
    fn ord_agrees_with_i128_across_the_boundary(a in near_boundary(), b in near_boundary()) {
        prop_assert_eq!(s(a).cmp(&s(b)), a.cmp(&b));
    }

    #[test]
    fn display_agrees_with_i128_across_the_boundary(a in near_boundary()) {
        prop_assert_eq!(s(a).to_string(), a.to_string());
        let back: BigInt = s(a).to_string().parse().unwrap();
        prop_assert_eq!(back, s(a));
    }

    #[test]
    fn hash_and_eq_are_construction_path_independent(a in near_boundary(), d in 1i128..(1i128 << 70)) {
        // Reach the same value three ways: directly, via an excursion past
        // the boundary and back, and via sign-magnitude parts. Canonical
        // representation means all are equal AND hash equal AND agree on
        // which form they use.
        let direct = s(a);
        let excursion = (s(a) + s(d)) - s(d);
        let parts = {
            use cbh_bigint::{BigUint, Sign};
            let sign = if a < 0 { Sign::Minus } else { Sign::Plus };
            BigInt::from_parts(sign, BigUint::from(a.unsigned_abs()))
        };
        prop_assert_eq!(&direct, &excursion);
        prop_assert_eq!(&direct, &parts);
        prop_assert_eq!(std_hash(&direct), std_hash(&excursion));
        prop_assert_eq!(std_hash(&direct), std_hash(&parts));
        prop_assert_eq!(direct.is_inline(), excursion.is_inline());
        prop_assert_eq!(direct.is_inline(), parts.is_inline());
    }

    #[test]
    fn euclid_division_agrees_across_the_boundary(a in near_boundary(), d in 1u64..1000) {
        let (q, r) = s(a).div_rem_euclid_u64(d);
        prop_assert!((r as u128) < d as u128);
        prop_assert_eq!(q * s(d as i128) + s(r as i128), s(a));
    }
}
