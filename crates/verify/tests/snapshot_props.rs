//! Property tests for the checkpoint wire format — the bytes a killed
//! exploration trusts with its entire resume state.
//!
//! Mirrors the delta-codec suite (`cbh-model/tests/delta_props.rs`): random
//! structurally-valid snapshots round-trip bit-exactly, and hostile bytes —
//! flips, truncations, outright garbage — always come back as a typed
//! [`SnapshotError`], never a panic, a bogus decode or an oversized
//! allocation. Stronger than the delta codec's corruption bar, in fact:
//! every byte of a snapshot except the four trailing reserved header bytes
//! is CRC-covered, so a flip either leaves the decode equal to the original
//! or fails typed — it can never smuggle in a *different* snapshot.

use cbh_verify::snapshot::{Snapshot, SnapshotError, NO_PARENT};
use proptest::prelude::*;

/// SplitMix64: cheap deterministic diversity for fingerprints and names.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Shapes free-form raw material into a structurally valid snapshot: links
/// point backwards, pids stay below `n`, the seen set is sorted and
/// duplicate-free with exactly one entry per configuration, and every
/// cursor respects its range invariant.
#[allow(clippy::too_many_arguments)]
fn build_snapshot(
    name_seed: u64,
    n: usize,
    depth: usize,
    max_configs: usize,
    solo: Option<u64>,
    symmetric: bool,
    links_raw: &[(u64, u64)],
    fp_seed: u64,
    cursors: (u64, u64, u64, bool),
) -> Snapshot {
    let links: Vec<(usize, usize)> = links_raw
        .iter()
        .enumerate()
        .map(|(j, &(parent_raw, pid_raw))| {
            let parent = match parent_raw as usize % (j + 1) {
                0 => NO_PARENT,
                k => k - 1,
            };
            (parent, pid_raw as usize % n)
        })
        .collect();
    let configs = links.len() + 1;
    // Low bits carry the index, so fingerprints are distinct by construction.
    let mut seen: Vec<u128> = (0..configs)
        .map(|i| ((mix(fp_seed ^ i as u64) as u128) << 64) | i as u128)
        .collect();
    seen.sort_unstable();
    let (next_raw, peak_raw, reached_raw, complete) = cursors;
    Snapshot {
        protocol: format!("row-{}", name_seed % 1_000),
        n,
        inputs: (0..n as u64).collect(),
        depth,
        max_configs,
        solo_check_budget: solo,
        symmetric,
        links,
        seen,
        next_commit: next_raw as usize % (configs + 1),
        frontier_peak: peak_raw as usize % configs + 1,
        depth_reached: reached_raw as usize % (depth + 1),
        complete,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshots_roundtrip_bit_exactly(
        name_seed in any::<u64>(),
        n in 2usize..6,
        depth in 0usize..64,
        max_configs in 1usize..2_000_000,
        solo_raw in (any::<bool>(), 0u64..10_000),
        symmetric in any::<bool>(),
        links_raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..48),
        fp_seed in any::<u64>(),
        cursors in (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
    ) {
        let solo = solo_raw.0.then_some(solo_raw.1);
        let snap = build_snapshot(
            name_seed, n, depth, max_configs, solo, symmetric,
            &links_raw, fp_seed, cursors,
        );
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).expect("honest snapshot decodes");
        prop_assert_eq!(&decoded, &snap);
        // Re-encoding is byte-stable: one canonical encoding per snapshot.
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn byte_flips_never_panic_and_never_forge_a_different_snapshot(
        links_raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..24),
        fp_seed in any::<u64>(),
        flips in proptest::collection::vec((any::<u64>(), 1u8..=255), 1..24),
    ) {
        let snap = build_snapshot(
            7, 3, 9, 50_000, Some(12), false,
            &links_raw, fp_seed, (1, 2, 3, true),
        );
        let good = snap.to_bytes();
        for &(pos, mask) in &flips {
            let mut corrupt = good.clone();
            let at = pos as usize % corrupt.len();
            corrupt[at] ^= mask;
            // `mask` is nonzero, so the bytes genuinely differ. CRC coverage
            // means the decode must fail typed — unless the flip landed in
            // the trailing reserved header bytes (44..48), the only four
            // bytes outside every checksum, where the decode must still
            // equal the original.
            match Snapshot::from_bytes(&corrupt) {
                Err(_) => {}
                Ok(decoded) => {
                    prop_assert!((44..48).contains(&at), "undetected flip at {}", at);
                    prop_assert_eq!(&decoded, &snap);
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        links_raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..12),
        fp_seed in any::<u64>(),
    ) {
        let snap = build_snapshot(
            3, 2, 6, 9_000, None, true,
            &links_raw, fp_seed, (0, 0, 0, false),
        );
        let good = snap.to_bytes();
        for cut in 0..good.len() {
            match Snapshot::from_bytes(&good[..cut]) {
                Ok(_) => prop_assert!(false, "strict prefix {} decoded", cut),
                // A cut below the CRC-covered region reads as truncation; at
                // or above it, the damaged trailing section may surface as
                // any typed decode error — but never a panic.
                Err(SnapshotError::Io { .. }) => {
                    prop_assert!(false, "in-memory decode returned an Io error")
                }
                Err(_) => {}
            }
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Typed error or (vanishingly unlikely) an honest decode — the call
        // must return either way, without panicking or allocating from
        // attacker-controlled counts.
        let _ = Snapshot::from_bytes(&garbage);
    }

    #[test]
    fn garbage_behind_an_honest_header_never_panics(
        links_raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..12),
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Hostile payload bytes behind a header that passes its CRC: the
        // section walk and every count/bounds check must stay total.
        let snap = build_snapshot(1, 2, 4, 1_000, None, false, &links_raw, 5, (0, 0, 0, true));
        let mut bytes = snap.to_bytes();
        bytes.truncate(48);
        bytes.extend_from_slice(&garbage);
        let _ = Snapshot::from_bytes(&bytes);
    }
}
