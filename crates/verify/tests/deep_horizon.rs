//! Deep-horizon conformance smoke: a state space past 10⁶ configurations,
//! the regime where the lock-free claim table sees real probe chains, the
//! per-worker intern caches carry most lookups, and adaptive batching
//! leaves its minimum batch size.
//!
//! The small conformance scenarios can't reach this regime, so a racing
//! bug that only fires under load (a lost claim in a long probe chain, a
//! stale cache entry, a batch boundary off-by-one) would slip past them.
//! Here the 8-worker packed run must reproduce the 1-worker packed run
//! bit-for-bit — same `ExploreOutcome`, same `ExploreStats` — on a
//! 1.5M-config space.
//!
//! Marked `#[ignore]`: minutes-scale in debug builds. CI runs it in release
//! via `cargo test --release --test deep_horizon -- --ignored`.

use cbh_core::maxreg::MaxRegConsensus;
use cbh_verify::checker::{ExploreLimits, Explorer};

const DEEP_LIMITS: ExploreLimits = ExploreLimits {
    depth: 26,
    max_configs: 3_000_000,
    solo_check_budget: None,
    memory_budget: None,
    checkpoint_every: None,
};

#[test]
#[ignore = "minutes-scale in debug builds; CI runs it with --release -- --ignored"]
fn packed_w8_matches_w1_past_a_million_configs() {
    let protocol = MaxRegConsensus::new(4);
    let inputs = [0u64, 1, 2, 3];
    let w1 = Explorer::new()
        .workers(1)
        .limits(DEEP_LIMITS)
        .explore_stats(&protocol, &inputs)
        .expect("deep horizon explores cleanly at 1 worker");
    assert!(
        w1.1.configs >= 1_000_000,
        "deep-horizon space shrank below 10^6 configs ({}); the smoke no \
         longer exercises the at-scale regime",
        w1.1.configs
    );
    let w8 = Explorer::new()
        .workers(8)
        .limits(DEEP_LIMITS)
        .explore_stats(&protocol, &inputs)
        .expect("deep horizon explores cleanly at 8 workers");
    assert_eq!(w1, w8, "packed w8 diverged from w1 on the deep horizon");
}

/// Same at-scale regime, but with the memory budget pinned to ~10% of the
/// unbounded run's observed resident peak: the tiered fingerprint store must
/// evict most of a million-plus-entry seen set to disk runs, the frontier
/// must spill most layers — and the outcome must still be bit-identical at
/// 1 and 8 workers, with the tracked resident peak staying under the budget
/// plus a fixed slack for floor-sized structures.
#[test]
#[ignore = "minutes-scale in debug builds; CI runs it with --release -- --ignored"]
fn budgeted_deep_horizon_matches_unbounded() {
    const SLACK: usize = 4 << 20;
    let protocol = MaxRegConsensus::new(4);
    let inputs = [0u64, 1, 2, 3];
    let unbounded = Explorer::new()
        .workers(1)
        .limits(DEEP_LIMITS)
        .explore_stats(&protocol, &inputs)
        .expect("deep horizon explores cleanly unbounded");
    assert!(unbounded.1.configs >= 1_000_000);
    assert_eq!(unbounded.1.bytes_spilled, 0);
    let budget = unbounded.1.peak_resident_bytes / 10;
    let limits = ExploreLimits {
        memory_budget: Some(budget),
        ..DEEP_LIMITS
    };
    for workers in [1, 8] {
        let spilled = Explorer::new()
            .workers(workers)
            .limits(limits)
            .explore_stats(&protocol, &inputs)
            .expect("budgeted deep horizon explores cleanly");
        assert_eq!(
            spilled, unbounded,
            "budget {budget} at {workers} workers diverged on the deep horizon"
        );
        assert!(
            spilled.1.bytes_spilled > 0,
            "budget {budget} at {workers} workers never spilled"
        );
        assert!(
            spilled.1.fpset_disk_bytes > 0,
            "budget {budget} at {workers} workers never evicted the seen set \
             (a 1.5M-entry set cannot fit in a {budget}-byte cap)"
        );
        assert!(
            spilled.1.peak_resident_bytes <= budget + SLACK,
            "budget {budget} at {workers} workers peaked at {} resident bytes",
            spilled.1.peak_resident_bytes
        );
    }
}
