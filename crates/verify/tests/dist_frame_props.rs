//! Property tests for the distributed explorer's wire format: the CRC-framed,
//! delta-chained state frames shards exchange over Unix sockets.
//!
//! Random schedules over **every Table-1 registry row** produce real
//! `PackedState` chains (exactly what a cross-shard SUCC frame carries), and
//! for each chain:
//!
//! - `StateChainEncoder` → `encode_frame` → `FrameReader` → `StateChainDecoder`
//!   reproduces every state bit for bit, including both engine digests, no
//!   matter how the byte stream is fragmented into partial reads;
//! - every strict prefix of a frame is "need more bytes" (streaming) or
//!   [`FrameError::Truncated`] (exact decode) — never a state, never a panic;
//! - flipping any byte of a frame is a typed [`FrameError`] — the magic check
//!   catches the prelude, the version byte its own flip, and the CRC trailer
//!   everything else;
//! - arbitrary garbage fed to the reader terminates with frames or a typed
//!   error, never a panic or a runaway allocation (the payload cap rejects
//!   absurd lengths before allocating).

use cbh_core::registry::{self, RowSpec, RowVisitor};
use cbh_model::{
    decode_frame, decode_frame_exact, encode_frame, FrameError, FrameReader, PackedCtx,
    PackedState, Protocol, StateChainDecoder, StateChainEncoder,
};
use cbh_sim::Machine;
use proptest::prelude::*;

/// Wire kind used by the tests; the codec treats kinds as opaque.
const KIND: u8 = 3;

/// Splits `bytes` at the (sorted, deduped) cut points and feeds the pieces
/// to a [`FrameReader`], collecting every completed frame.
fn reassemble(bytes: &[u8], cuts: &[usize]) -> Result<Vec<(u8, Vec<u8>)>, FrameError> {
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let mut at = 0usize;
    let mut points: Vec<usize> = cuts.iter().map(|c| c % bytes.len().max(1)).collect();
    points.sort_unstable();
    points.dedup();
    for point in points.into_iter().chain([bytes.len()]) {
        if point <= at {
            continue;
        }
        reader.push(&bytes[at..point]);
        at = point;
        while let Some(frame) = reader.next_frame()? {
            frames.push(frame);
        }
    }
    assert!(!reader.has_partial(), "whole stream consumed");
    Ok(frames)
}

struct ChainWalk<'a> {
    schedule: &'a [usize],
    cuts: &'a [usize],
}

impl RowVisitor for ChainWalk<'_> {
    type Output = ();

    fn visit<P>(&mut self, _spec: &RowSpec, protocol: P)
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let n = protocol.n();
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % protocol.domain()).collect();
        let machine = Machine::start(&protocol, &inputs).expect("row starts");
        let ctx: PackedCtx<P::Proc> = machine.packed_ctx();
        let mut state = machine.pack(&ctx);
        let mut states = vec![state.clone()];
        for &raw in self.schedule {
            let pid = raw % n;
            if ctx.is_active(&state, pid) {
                ctx.step(&mut state, pid).expect("active pid steps");
                states.push(state.clone());
            }
        }
        // Two frames from one logical stream: chains never cross a frame
        // boundary, so each frame restarts with a flat head and decodes
        // independently of the other's arrival.
        let split = states.len() / 2;
        let mut wire = Vec::new();
        for group in [&states[..split], &states[split..]] {
            if group.is_empty() {
                continue;
            }
            let mut payload = Vec::new();
            let mut chain = StateChainEncoder::new();
            for state in group {
                chain.push(state, &mut payload);
            }
            encode_frame(KIND, &payload, &mut wire);
        }
        let frames = reassemble(&wire, self.cuts).expect("honest stream decodes");
        let mut decoded: Vec<PackedState> = Vec::new();
        for (kind, payload) in &frames {
            assert_eq!(*kind, KIND);
            let mut chain = StateChainDecoder::new();
            let mut rest = payload.as_slice();
            while !rest.is_empty() {
                decoded.push(chain.next(&mut rest).expect("honest chain record"));
            }
        }
        assert_eq!(decoded.len(), states.len(), "every state crossed the wire");
        for (original, wired) in states.iter().zip(&decoded) {
            assert_eq!(original, wired, "field mismatch");
            for symmetric in [false, true] {
                assert_eq!(
                    ctx.digest(original, symmetric),
                    ctx.digest(wired, symmetric),
                    "digest mismatch (symmetric={symmetric})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn framed_state_chains_roundtrip_on_every_row(
        schedule in proptest::collection::vec(0usize..3, 1..24),
        cuts in proptest::collection::vec(0usize..4096, 0..12),
    ) {
        for row in registry::all_rows() {
            registry::visit_row(row.id, 3, &mut ChainWalk { schedule: &schedule, cuts: &cuts })
                .expect("registered row");
        }
    }

    #[test]
    fn truncated_frames_are_need_more_bytes_never_states(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        kind in any::<u8>(),
    ) {
        let mut wire = Vec::new();
        encode_frame(kind, &payload, &mut wire);
        for cut in 0..wire.len() {
            // Streaming decode: a strict prefix of a valid frame is always
            // an honest "wait for more" — typed errors fire only on bytes
            // that can no longer become a valid frame.
            prop_assert!(decode_frame(&wire[..cut]).unwrap().is_none(), "prefix {cut}");
            // Exact decode of the same prefix is the typed truncation error.
            prop_assert!(
                decode_frame_exact(&wire[..cut]).unwrap_err() == FrameError::Truncated,
                "prefix {cut}"
            );
        }
        let (k, p, consumed) = decode_frame_exact(&wire).expect("whole frame decodes");
        prop_assert_eq!((k, p, consumed), (kind, payload.as_slice(), wire.len()));
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flips in proptest::collection::vec((0usize..4096, 0u8..255), 1..16),
    ) {
        let mut wire = Vec::new();
        encode_frame(KIND, &payload, &mut wire);
        for &(pos, value) in &flips {
            let mut corrupt = wire.clone();
            let at = pos % corrupt.len();
            corrupt[at] ^= value | 1;
            // Magic flips are BadMagic, version flips UnsupportedVersion,
            // length flips Oversize/Truncated/CrcMismatch, and kind,
            // payload or trailer flips CrcMismatch — never Ok, never a
            // panic. (A length flip that *shrinks* the frame is caught by
            // the CRC landing on the wrong bytes.)
            prop_assert!(
                decode_frame_exact(&corrupt).is_err(),
                "flip at {} undetected",
                at
            );
        }
    }

    #[test]
    fn garbage_streams_never_panic_the_reader(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..8,
        ),
    ) {
        let mut reader = FrameReader::new();
        'outer: for chunk in &chunks {
            reader.push(chunk);
            loop {
                match reader.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    // Poisoned is a legal terminal state; what matters is
                    // the error being typed, not a panic.
                    Err(_) => break 'outer,
                }
            }
        }
    }

    #[test]
    fn garbage_chain_records_never_panic_the_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..192),
    ) {
        let mut chain = StateChainDecoder::new();
        let mut rest = bytes.as_slice();
        while !rest.is_empty() {
            let before = rest.len();
            match chain.next(&mut rest) {
                Ok(_) => {
                    // Progress or stop: a decoded record must consume bytes.
                    if rest.len() == before {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
}
