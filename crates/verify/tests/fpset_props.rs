//! Property tests for the tiered fingerprint store — the budgeted seen set
//! the committer's admission order rides on.
//!
//! The reference model is the structure the store replaces: a
//! `HashSet<u128>`. Whatever the budget, however many evictions and
//! compactions the workload forces, and however many threads race on probes,
//! `admit` must give exactly the `HashSet::insert` answer sequence — a Bloom
//! false positive may cost a disk probe but must never become a false
//! negative (or a false admission), and run-merge compaction must preserve
//! membership bit for bit.

use cbh_verify::fpset::{decode_run, FpSet};
use cbh_verify::frontier::{SpillContext, SpillError};
use proptest::prelude::*;
use std::collections::HashSet;

/// Spreads small generator integers into full-width fingerprints while
/// keeping collisions likely (many duplicates per run).
fn widen(raw: u128, spread: bool) -> u128 {
    if !spread {
        return raw;
    }
    let lo = (raw as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let hi = ((raw >> 64) as u64 ^ 0xdead_beef).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    ((hi as u128) << 64) | lo as u128
}

/// Maps two generator integers onto the interesting budget shapes:
/// unbounded, zero (spill everything) and a small positive cap.
fn pick_budget(sel: usize, val: usize) -> Option<usize> {
    match sel % 3 {
        0 => None,
        1 => Some(0),
        _ => Some(val),
    }
}

/// Encodes fingerprints the way a run is written: raw little-endian u128s.
fn encode(fps: &[u128]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(fps.len() * 16);
    for fp in fps {
        bytes.extend_from_slice(&fp.to_le_bytes());
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random admit/contains interleavings with budget-forced evictions and
    /// compactions sprinkled in: the answer sequence is exactly the
    /// `HashSet`'s, at any budget.
    #[test]
    fn membership_is_hashset_membership_under_evict_and_compact(
        raws in proptest::collection::vec(0u128..4000, 1..400),
        ops in proptest::collection::vec(0u8..8, 1..400),
        spread in any::<bool>(),
        budget_sel in 0usize..3,
        budget_val in 1usize..20_000,
    ) {
        let ctx = SpillContext::new(pick_budget(budget_sel, budget_val));
        let set = FpSet::new(4096, ctx.clone());
        let mut reference: HashSet<u128> = HashSet::new();
        for (i, &raw) in raws.iter().enumerate() {
            let fp = widen(raw, spread);
            match ops[i % ops.len()] {
                // Mostly admissions: the committer's hot path.
                0..=4 => prop_assert_eq!(set.admit(fp).unwrap(), reference.insert(fp)),
                5 => prop_assert_eq!(set.contains(fp).unwrap(), reference.contains(&fp)),
                6 => set.force_evict().unwrap(),
                _ => set.force_compact().unwrap(),
            }
        }
        prop_assert_eq!(set.len(), reference.len());
        // No false negatives after arbitrary eviction/compaction history …
        for &fp in &reference {
            prop_assert!(set.contains(fp).unwrap());
            prop_assert!(!set.admit(fp).unwrap(), "{:#x} re-admitted", fp);
        }
        // … and Bloom false positives never flip a decision: probes for
        // never-admitted fingerprints still answer `false`.
        for &raw in raws.iter().take(64) {
            let probe = widen(raw, spread) ^ (1 << 127);
            prop_assert_eq!(set.contains(probe).unwrap(), reference.contains(&probe));
        }
    }

    /// Racing threads admitting overlapping fingerprint sets into one store:
    /// every distinct fingerprint is admitted exactly once across all
    /// threads, and the survivors are exactly the input set. (The engines
    /// admit from one committer thread; this pins the store's linearized
    /// semantics for the shared `&FpSet` probes.)
    #[test]
    fn racing_admissions_are_exactly_once(
        raws in proptest::collection::vec(0u128..1500, 1..200),
        spread in any::<bool>(),
        budget_sel in 0usize..3,
        budget_val in 1usize..8192,
        threads in 2usize..6,
    ) {
        let ctx = SpillContext::new(pick_budget(budget_sel, budget_val));
        let set = FpSet::new(2048, ctx.clone());
        let fps: Vec<u128> = raws.iter().map(|&r| widen(r, spread)).collect();
        let wins: Vec<Vec<u128>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let set = &set;
                    let fps = &fps;
                    scope.spawn(move || {
                        let mut won = Vec::new();
                        for i in 0..fps.len() {
                            // Rotated start: threads collide mid-stream.
                            let fp = fps[(i + t * 97) % fps.len()];
                            if set.admit(fp).unwrap() {
                                won.push(fp);
                            }
                        }
                        won
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let distinct: HashSet<u128> = fps.iter().copied().collect();
        let mut winners: HashSet<u128> = HashSet::new();
        for fp in wins.iter().flatten() {
            prop_assert!(winners.insert(*fp), "{:#x} admitted twice", fp);
        }
        prop_assert_eq!(&winners, &distinct);
        prop_assert_eq!(set.len(), distinct.len());
        for &fp in &distinct {
            prop_assert!(set.contains(fp).unwrap());
        }
    }

    /// Forced eviction rounds followed by a k-way merge: compaction leaves
    /// one run and byte-for-byte membership.
    #[test]
    fn compaction_preserves_membership(
        raws in proptest::collection::vec(0u128..3000, 32..400),
        evictions in 2usize..6,
    ) {
        let ctx = SpillContext::new(Some(0));
        let set = FpSet::new(2048, ctx.clone());
        let mut reference: HashSet<u128> = HashSet::new();
        for &raw in &raws {
            let fp = widen(raw, true);
            prop_assert_eq!(set.admit(fp).unwrap(), reference.insert(fp));
        }
        for _ in 0..evictions {
            set.force_evict().unwrap();
        }
        set.force_compact().unwrap();
        prop_assert!(set.run_count() <= 1, "compaction left {} runs", set.run_count());
        prop_assert_eq!(set.len(), reference.len());
        for &fp in &reference {
            prop_assert!(set.contains(fp).unwrap());
            prop_assert!(!set.admit(fp).unwrap());
        }
    }

    /// The run decoder rejects damage with typed errors: truncation to a
    /// non-whole number of fingerprints and order violations are both
    /// [`SpillError::Corrupt`]; undamaged runs round-trip.
    #[test]
    fn damaged_runs_decode_to_typed_errors(
        raws in proptest::collection::vec(0u128..100_000, 2..200),
        cut in 1usize..16,
        swap_raw in 0usize..1_000_000,
    ) {
        let mut fps: Vec<u128> = raws.iter().map(|&r| widen(r, true)).collect();
        fps.sort_unstable();
        fps.dedup();
        let good = encode(&fps);
        prop_assert_eq!(decode_run(&good).unwrap(), fps.clone());
        // Truncation that breaks 16-byte framing.
        let cut = cut.min(good.len() - 1);
        if cut % 16 != 0 {
            let truncated = decode_run(&good[..good.len() - cut]);
            let corrupt = matches!(truncated, Err(SpillError::Corrupt { .. }));
            prop_assert!(corrupt, "truncated run decoded as {:?}", truncated);
        }
        // An ordering violation anywhere in the run.
        if fps.len() >= 2 {
            let i = swap_raw % (fps.len() - 1);
            fps.swap(i, i + 1);
            let shuffled = decode_run(&encode(&fps));
            let corrupt = matches!(shuffled, Err(SpillError::Corrupt { .. }));
            prop_assert!(corrupt, "out-of-order run decoded as {:?}", shuffled);
        }
    }
}
