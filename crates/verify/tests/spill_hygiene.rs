//! Spill-arena hygiene: every byte spilled to disk is cleaned up on drop,
//! including the pid-salted subdirectory that isolates concurrent explorer
//! processes sharing one `CBH_SPILL_DIR`.
//!
//! This lives in its own integration-test binary because it must own
//! `CBH_SPILL_DIR` for the whole process: unit tests run as parallel
//! threads and the variable is process-global.

use cbh_verify::checker::ExploreLimits;
use cbh_verify::dist::{explore_sharded, DistConfig};
use cbh_verify::frontier::{spill_dir, SpillContext};
use cbh_verify::reference::reference_explore;
use cbh_core::maxreg::MaxRegConsensus;

fn entries(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default()
}

#[test]
fn spill_files_live_in_a_self_deleting_pid_directory() {
    let base = std::env::temp_dir().join(format!("cbh-hygiene-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    // Safe: this test binary is single-threaded at this point and owns the
    // variable for the whole process (one #[test] per concern below).
    std::env::set_var("CBH_SPILL_DIR", &base);
    assert_eq!(spill_dir(), base);

    let pid_dir = base.join(format!("cbh-spill-{}", std::process::id()));
    {
        let ctx = SpillContext::new(Some(0));
        ctx.arena().append(vec![0u8; 256]).unwrap();
        assert!(pid_dir.is_dir(), "spills land in the pid-salted subdir");
        let files = entries(&pid_dir);
        assert_eq!(files.len(), 1, "one arena, one file: {files:?}");
        assert!(
            files[0]
                .file_name()
                .unwrap()
                .to_string_lossy()
                .starts_with(&format!("cbh-spill-{}-", std::process::id())),
            "file name carries the pid salt: {files:?}"
        );
    }
    assert!(
        !pid_dir.exists(),
        "last arena out removes the pid directory"
    );

    // A sibling arena must keep the directory alive until it too drops.
    let ctx_a = SpillContext::new(Some(0));
    ctx_a.arena().append(vec![1u8; 64]).unwrap();
    {
        let ctx_b = SpillContext::new(Some(0));
        ctx_b.arena().append(vec![2u8; 64]).unwrap();
        assert_eq!(entries(&pid_dir).len(), 2);
    }
    assert_eq!(entries(&pid_dir).len(), 1, "sibling file survives");
    drop(ctx_a);
    assert!(!pid_dir.exists());

    // End-to-end: a budgeted sharded run (every shard spilling) leaves the
    // base directory exactly as it found it, and the hygiene does not
    // perturb the semantic outcome.
    let protocol = MaxRegConsensus::new(2);
    let limits = ExploreLimits {
        depth: 9,
        max_configs: 100_000,
        solo_check_budget: None,
        memory_budget: Some(0),
        checkpoint_every: None,
    };
    let cfg = DistConfig {
        shards: 2,
        workers: 2,
        symmetric: false,
    };
    let dist = explore_sharded(&protocol, &[0, 1], limits, cfg).unwrap();
    let oracle = reference_explore(&protocol, &[0, 1], limits).unwrap();
    assert_eq!(dist, oracle);
    assert!(
        entries(&base).is_empty(),
        "sharded spills all cleaned up: {:?}",
        entries(&base)
    );
    std::fs::remove_dir(&base).unwrap();
}
