//! Property tests for the lock-free claim table — the shared fingerprint
//! set both the explorer's workers (advisory claims) and its committer
//! (authoritative admissions) race on.
//!
//! The reference model is the structure the table replaced: a
//! `HashSet<u128>`. For random fingerprint workloads — duplicates, zero
//! halves, table capacities from degenerate to roomy — the table must give
//! exactly the `HashSet` answers when driven sequentially, and exactly-once
//! claim/admission semantics when driven from racing threads with the work
//! interleaved arbitrarily.

use cbh_verify::claim::ClaimTable;
use proptest::prelude::*;
use std::collections::HashSet;

/// Spreads small generator integers into full-width fingerprints while
/// keeping collisions likely (many duplicates per run) and preserving the
/// generator's occasional zero halves via the pass-through arm.
fn widen(raw: u128, spread: bool) -> u128 {
    if !spread {
        return raw; // raw values keep zero halves and tiny magnitudes
    }
    let lo = (raw as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let hi = ((raw >> 64) as u64 ^ 0xdead_beef).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    ((hi as u128) << 64) | lo as u128
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Driven from one thread, `claim` is exactly `HashSet::insert`.
    #[test]
    fn sequential_claims_agree_with_hashset(
        raws in proptest::collection::vec(0u128..5000, 1..300),
        spread in any::<bool>(),
        expected in 0usize..4096,
    ) {
        let table = ClaimTable::new(expected);
        let mut reference: HashSet<u128> = HashSet::new();
        for &raw in &raws {
            let fp = widen(raw, spread);
            prop_assert_eq!(table.claim(fp), reference.insert(fp));
            prop_assert!(table.contains(fp));
        }
        for &raw in &raws {
            prop_assert!(table.contains(widen(raw, spread)));
        }
    }

    /// Likewise `admit`, independent of interleaved prior claims.
    #[test]
    fn sequential_admissions_agree_with_hashset(
        raws in proptest::collection::vec(0u128..5000, 1..300),
        claim_first in proptest::collection::vec(any::<bool>(), 1..300),
        expected in 0usize..4096,
    ) {
        let table = ClaimTable::new(expected);
        let mut reference: HashSet<u128> = HashSet::new();
        for (i, &raw) in raws.iter().enumerate() {
            let fp = widen(raw, true);
            if claim_first[i % claim_first.len()] {
                table.claim(fp); // advisory claims must not affect admission
            }
            prop_assert_eq!(table.admit(fp), reference.insert(fp));
        }
    }

    /// Racing threads claiming overlapping fingerprint sets: every distinct
    /// fingerprint is won exactly once across all threads — no lost claims,
    /// no duplicate wins — and the winners' union is the input set.
    #[test]
    fn interleaved_claims_are_exactly_once(
        raws in proptest::collection::vec(0u128..2000, 1..200),
        spread in any::<bool>(),
        expected in 0usize..512,
        threads in 2usize..6,
    ) {
        let table = ClaimTable::new(expected);
        let fps: Vec<u128> = raws.iter().map(|&r| widen(r, spread)).collect();
        let wins: Vec<Vec<u128>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let table = &table;
                    let fps = &fps;
                    scope.spawn(move || {
                        let mut won = Vec::new();
                        for i in 0..fps.len() {
                            // Rotated start: threads collide mid-stream.
                            let fp = fps[(i + t * 97) % fps.len()];
                            if table.claim(fp) {
                                won.push(fp);
                            }
                        }
                        won
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let distinct: HashSet<u128> = fps.iter().copied().collect();
        let mut winners: HashSet<u128> = HashSet::new();
        for fp in wins.iter().flatten() {
            prop_assert!(winners.insert(*fp), "{:#x} claimed twice", fp);
        }
        prop_assert_eq!(winners, distinct);
    }

    /// A committer admitting against racing workers: admissions are
    /// exactly-once and complete regardless of claim interleavings — the
    /// engine's determinism hinges on exactly this.
    #[test]
    fn admissions_survive_racing_claims(
        raws in proptest::collection::vec(0u128..1500, 1..150),
        expected in 0usize..256,
    ) {
        let table = ClaimTable::new(expected);
        let fps: Vec<u128> = raws.iter().map(|&r| widen(r, true)).collect();
        let distinct: HashSet<u128> = fps.iter().copied().collect();
        let admitted = std::thread::scope(|scope| {
            for t in 0..3 {
                let table = &table;
                let fps = &fps;
                scope.spawn(move || {
                    for i in 0..fps.len() {
                        table.claim(fps[(i + t * 53) % fps.len()]);
                    }
                });
            }
            let mut first_admissions = 0usize;
            for &fp in &fps {
                if table.admit(fp) {
                    first_admissions += 1;
                }
            }
            first_admissions
        });
        prop_assert_eq!(admitted, distinct.len());
        for &fp in &distinct {
            prop_assert!(!table.admit(fp), "{:#x} re-admitted", fp);
        }
    }

    /// Degenerate capacity: a minimum-size table under a workload far past
    /// its slots must keep full exactly-once semantics via the overflow path.
    #[test]
    fn capacity_exceeded_keeps_exact_semantics(
        raws in proptest::collection::vec(0u128..10_000, 64..400),
    ) {
        let table = ClaimTable::new(0); // 16 slots, guaranteed overflow
        let mut reference: HashSet<u128> = HashSet::new();
        for &raw in &raws {
            let fp = widen(raw, true);
            prop_assert_eq!(table.claim(fp), reference.insert(fp));
        }
        // Everything is still findable after the spill.
        for &raw in &raws {
            prop_assert!(table.contains(widen(raw, true)));
        }
    }
}
