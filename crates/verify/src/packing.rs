//! `k`-packings and Lemma 7.1's Eulerian repair argument.
//!
//! In the multiple-assignment lower bound (Section 7), each covering process
//! is poised to atomically write a *set* of locations; a `k`-packing assigns
//! every process to one location it covers with at most `k` processes per
//! location. Lemma 7.1 is the combinatorial heart of the proof: given two
//! `k`-packings of the same processes where `g` packs more than `h` into a
//! location `r₁`, there is a path `r₁, …, r_t` through the multigraph with an
//! edge `g(p) → h(p)` per process, ending at a location where `h` packs more
//! than `g`; re-packing the path's processes yields a `k`-packing with one
//! fewer process at `r₁` and one more at `r_t`.
//!
//! This module implements `k`-packing construction (max-flow by augmenting
//! paths), the repair walk, and the *fully `k`-packed* location computation
//! that Lemma 7.2 and Theorem 7.5 quantify over.

use std::collections::BTreeSet;

/// A `k`-packing: `packing[p]` is the location process `p` is packed into.
pub type Packing = Vec<usize>;

/// Checks that `packing` is a valid `k`-packing of `covers`.
///
/// Every process must be packed into a location it covers, and no location may
/// receive more than `k` processes.
pub fn is_k_packing(covers: &[Vec<usize>], packing: &[usize], k: usize) -> bool {
    if covers.len() != packing.len() {
        return false;
    }
    let mut load = std::collections::HashMap::new();
    for (p, &r) in packing.iter().enumerate() {
        if !covers[p].contains(&r) {
            return false;
        }
        *load.entry(r).or_insert(0usize) += 1;
    }
    load.values().all(|&c| c <= k)
}

/// Finds a `k`-packing of `covers` (process `p` may be packed into any
/// location in `covers[p]`), or `None` if none exists.
///
/// Standard bipartite `b`-matching via augmenting paths, with per-location
/// capacity `caps[r]` (use `k` everywhere via [`find_k_packing`]).
pub fn find_packing_with_caps(
    covers: &[Vec<usize>],
    caps: impl Fn(usize) -> usize,
) -> Option<Packing> {
    let n = covers.len();
    let num_locs = covers
        .iter()
        .flat_map(|c| c.iter().copied())
        .max()
        .map_or(0, |m| m + 1);
    let mut packed: Vec<Option<usize>> = vec![None; n];
    let mut load = vec![0usize; num_locs];

    fn augment(
        p: usize,
        covers: &[Vec<usize>],
        caps: &impl Fn(usize) -> usize,
        packed: &mut Vec<Option<usize>>,
        load: &mut Vec<usize>,
        visited: &mut Vec<bool>,
    ) -> bool {
        for &r in &covers[p] {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            if load[r] < caps(r) {
                if let Some(old) = packed[p] {
                    load[old] -= 1;
                }
                packed[p] = Some(r);
                load[r] += 1;
                return true;
            }
            // Try to relocate someone currently packed in r.
            for q in 0..covers.len() {
                if q != p && packed[q] == Some(r) {
                    // Temporarily evict q and try to re-place it.
                    if augment(q, covers, caps, packed, load, visited) {
                        // q moved elsewhere; r has a free slot now.
                        if load[r] < caps(r) {
                            if let Some(old) = packed[p] {
                                load[old] -= 1;
                            }
                            packed[p] = Some(r);
                            load[r] += 1;
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    for p in 0..n {
        let mut visited = vec![false; num_locs];
        if !augment(p, covers, &caps, &mut packed, &mut load, &mut visited) {
            return None;
        }
    }
    Some(packed.into_iter().map(|r| r.expect("all packed")).collect())
}

/// Finds a `k`-packing with uniform capacity `k`, or `None`.
pub fn find_k_packing(covers: &[Vec<usize>], k: usize) -> Option<Packing> {
    find_packing_with_caps(covers, |_| k)
}

/// The result of a Lemma 7.1 repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repack {
    /// The path of locations `r₁, …, r_t`.
    pub path: Vec<usize>,
    /// The processes `p₁, …, p_{t−1}` along the path.
    pub processes: Vec<usize>,
    /// The repaired packing (one fewer process in `r₁`, one more in `r_t`).
    pub packing: Packing,
}

/// Lemma 7.1: given `k`-packings `g` and `h` of the same processes with
/// `|g⁻¹(r1)| > |h⁻¹(r1)|`, finds the path and the repaired packing `g'`.
///
/// Follows the proof exactly: build the multigraph with an edge
/// `g(p) → h(p)` labelled `p` for every process, walk a maximal trail from
/// `r1`, and re-pack every edge on the trail from its `g`-end to its `h`-end.
///
/// # Panics
///
/// Panics if the precondition `|g⁻¹(r1)| > |h⁻¹(r1)|` fails or the inputs are
/// not packings of the same process set.
pub fn repack(g: &[usize], h: &[usize], r1: usize) -> Repack {
    assert_eq!(g.len(), h.len(), "packings must cover the same processes");
    let count = |pk: &[usize], r: usize| pk.iter().filter(|&&x| x == r).count();
    assert!(
        count(g, r1) > count(h, r1),
        "Lemma 7.1 needs g to pack more processes than h into r1"
    );

    // Maximal trail from r1 over edges p: g(p) → h(p), each used once.
    let mut unused: BTreeSet<usize> = (0..g.len()).collect();
    let mut path = vec![r1];
    let mut processes = Vec::new();
    let mut cur = r1;
    while let Some(&p) = unused.iter().find(|&&p| g[p] == cur) {
        unused.remove(&p);
        processes.push(p);
        cur = h[p];
        path.push(cur);
    }
    // Endpoint property (proof of Lemma 7.1): the trail is maximal, so its
    // endpoint has more h-packed than g-packed processes.
    debug_assert!(count(h, cur) > count(g, cur) || cur == r1);

    let mut packing = g.to_vec();
    for &p in &processes {
        packing[p] = h[p];
    }
    Repack {
        path,
        processes,
        packing,
    }
}

/// The locations *fully `k`-packed* by `covers`: a `k`-packing exists, and
/// **every** `k`-packing packs exactly `k` processes there (the set `L` of
/// Lemma 7.2 / Theorem 7.5).
///
/// Computed by capacity probing: location `r` is fully packed iff capping `r`
/// at `k−1` (all others at `k`) makes packing infeasible.
///
/// Returns `None` if no `k`-packing exists at all.
pub fn fully_packed_locations(covers: &[Vec<usize>], k: usize) -> Option<Vec<usize>> {
    let base = find_k_packing(covers, k)?;
    let candidate: BTreeSet<usize> = base.iter().copied().collect();
    let mut fully = Vec::new();
    for &r in &candidate {
        if base.iter().filter(|&&x| x == r).count() < k {
            continue; // some packing (this one) packs < k here
        }
        let constrained = find_packing_with_caps(covers, |loc| if loc == r { k - 1 } else { k });
        if constrained.is_none() {
            fully.push(r);
        }
    }
    Some(fully)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_packing_found() {
        // 4 processes, 2 locations, everyone covers both: a 2-packing exists.
        let covers = vec![vec![0, 1]; 4];
        let p = find_k_packing(&covers, 2).unwrap();
        assert!(is_k_packing(&covers, &p, 2));
        // ...but a 1-packing does not.
        assert!(find_k_packing(&covers, 1).is_none());
    }

    #[test]
    fn packing_respects_covers() {
        let covers = vec![vec![0], vec![1], vec![0, 1]];
        // Three processes into two locations: impossible with k = 1 ...
        assert!(find_k_packing(&covers, 1).is_none());
        // ... and forced assignments for p0 and p1 with k = 2.
        let p = find_k_packing(&covers, 2).unwrap();
        assert!(is_k_packing(&covers, &p, 2));
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 1);
    }

    #[test]
    fn augmenting_relocates() {
        // p0 covers {0}, p1 covers {0,1}: with k=1, p1 must be pushed to 1
        // even if it is considered first.
        let covers = vec![vec![0, 1], vec![0]];
        let p = find_k_packing(&covers, 1).unwrap();
        assert_eq!(p, vec![1, 0]);
    }

    #[test]
    fn repack_moves_one_process_along_the_path() {
        // g packs both p0,p1 in location 0; h packs p0→1, p1→0.
        let covers = vec![vec![0, 1], vec![0]];
        let g = vec![0, 0];
        let h = vec![1, 0];
        assert!(is_k_packing(&covers, &g, 2));
        assert!(is_k_packing(&covers, &h, 1));
        let r = repack(&g, &h, 0);
        assert_eq!(r.path[0], 0);
        assert_eq!(*r.path.last().unwrap(), 1);
        // g' has one fewer in 0, one more in 1, and is a valid packing.
        let count = |pk: &[usize], loc: usize| pk.iter().filter(|&&x| x == loc).count();
        assert_eq!(count(&r.packing, 0), count(&g, 0) - 1);
        assert_eq!(count(&r.packing, 1), count(&g, 1) + 1);
        assert!(is_k_packing(&covers, &r.packing, 2));
    }

    #[test]
    #[should_panic(expected = "needs g to pack more")]
    fn repack_checks_precondition() {
        let _ = repack(&[0], &[0], 0);
    }

    #[test]
    fn fully_packed_identifies_forced_locations() {
        // 2ℓ = 2. Three processes: p0,p1 cover only {0}; p2 covers {0,1}.
        // Location 0 must hold p0 and p1 in every 2-packing → fully packed.
        let covers = vec![vec![0], vec![0], vec![0, 1]];
        let fully = fully_packed_locations(&covers, 2).unwrap();
        assert_eq!(fully, vec![0]);
        // If p2 also fits elsewhere, location 1 is never forced.
        assert!(!fully.contains(&1));
    }

    #[test]
    fn fully_packed_none_when_overloaded() {
        // Three processes all covering only {0} cannot be 2-packed at all.
        let covers = vec![vec![0]; 3];
        assert!(fully_packed_locations(&covers, 2).is_none());
    }

    #[test]
    fn lemma_7_2_style_block_coverage() {
        // 2ℓ processes packed into each fully packed location can be split
        // into two blocks of ℓ — the construction before Lemma 7.2. Verify
        // the counting works on a larger instance.
        let ell = 2;
        let k = 2 * ell;
        // 8 processes, 2 locations; processes 0..4 cover {0}, 4..8 cover {0,1}.
        let mut covers = vec![vec![0]; 4];
        covers.extend(std::iter::repeat_n(vec![0, 1], 4));
        let packing = find_k_packing(&covers, k).unwrap();
        assert!(is_k_packing(&covers, &packing, k));
        let fully = fully_packed_locations(&covers, k).unwrap();
        assert!(fully.contains(&0), "location 0 is forced to hold 4 = 2ℓ");
    }
}
