//! The packed work-stealing explorer: the production state-space engine.
//!
//! # Architecture
//!
//! The engine splits exploration into a **speculative parallel phase** and a
//! **deterministic sequential commit**:
//!
//! - **Workers** own per-worker deques of expansion tasks and steal from
//!   each other when idle. A task is one admitted configuration (a flat
//!   [`PackedState`]); the worker walks its outgoing edges with the
//!   *read-only* [`PackedCtx::edge_digest`] preview (no mutation, no undo)
//!   through a thread-local [`PackedCache`] over the shared intern tables,
//!   runs the optional solo probes, and — when an edge's successor digest
//!   wins its claim in the lock-free [`ClaimTable`] — speculatively
//!   materialises the successor (a flat clone plus one in-place step) so
//!   the committer usually receives admitted children ready-made.
//! - The **committer** (the calling thread) consumes one result per node
//!   *in admission-index order* and replays, verbatim, the sequential
//!   algorithm of the clone-based reference BFS: authoritative admission
//!   (the claim table's committed bitmap — see [`crate::claim`]),
//!   `max_configs` accounting, violation selection, parent-link
//!   construction, layer bookkeeping. Every order-sensitive decision is made
//!   here, single-threaded, on a totally ordered stream. While a result it
//!   needs is still being computed, the committer *helps*: it pops and
//!   expands backlogged batches itself instead of sleeping.
//!
//! # Determinism argument
//!
//! The admission index of a node is assigned by the committer, and a node's
//! children are admitted only while committing that node — so index order
//! equals the reference BFS's admission order (layer by layer, frontier
//! order within a layer, pid order within a node) *by construction*,
//! independent of how worker threads raced. Workers influence only *when* a
//! result becomes available, never *what* the committer does with it;
//! speculative work past the committer's stopping point (a violation, the
//! config cap) is simply discarded. Hence `(ExploreOutcome, ExploreStats)`
//! — verdict, counterexample schedule, configuration count, frontier peak,
//! depth — are bit-identical at any worker count, and bit-identical to
//! [`crate::reference::reference_explore`]. The conformance oracle enforces
//! exactly this.
//!
//! Worker-side claims are advisory: a duplicate claim merely means a child
//! arrives unmaterialised and the committer derives it from the parent with
//! one packed step. Admissions, by contrast, are authoritative, and only the
//! committer performs them — the claim table keeps the two states separate,
//! so worker races can never affect what gets admitted. Intern-table ids
//! race between threads, but digests hash *content*, never ids, so outcomes
//! cannot observe interning order; the per-thread intern caches only
//! memoise those immutable entries and are equally unobservable.
//!
//! # Memory-bounded frontiers
//!
//! All three queues that scale with frontier width — the sequential
//! engine's admission queue, the pool's per-worker deques, and the
//! committer's reorder buffer — live in [`crate::frontier`] stores: within
//! [`ExploreLimits::memory_budget`] they are the plain in-memory structures
//! described above; past it, backlogs delta-compress
//! ([`cbh_model::packed::delta`]) into a temp-file arena and stream back.
//! Spilling only moves *where* a node waits, never the order the committer
//! consumes results in, so the determinism argument — and bit-identical
//! `(ExploreOutcome, ExploreStats)` — holds at any budget; the budgeted
//! runs additionally report [`ExploreStats::bytes_spilled`] and
//! [`ExploreStats::peak_resident_bytes`] (telemetry, excluded from stats
//! equality).

use crate::checker::{schedule_of, ExploreLimits, ExploreOutcome, ExploreStats, Link, NO_LINK};
use crate::claim::ClaimTable;
use crate::fpset::{AdmitSet, SeenBackend};
use crate::frontier::{FrontierStore, ReorderBuffer, SpillCodec, SpillContext, SpillError};
use crate::snapshot::{Snapshot, SnapshotError, NO_PARENT};
use cbh_model::packed::delta::{read_varint, write_varint};
use cbh_model::{apply_delta, apply_delta_into, decode_flat, encode_delta, encode_flat, PackedCache, PackedCtx,
    PackedState, Process, Protocol};
use cbh_sim::{Machine, SimError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// The snapshot wire format and the engine share the "no parent" sentinel, so
// links round-trip without translation.
const _: () = assert!(NO_PARENT == NO_LINK);

/// Tolerated overrun above [`ExploreLimits::memory_budget`] before the
/// engine gives up with [`SimError::Budget`]: covers the evictable stores'
/// bounded slack (in-flight double-buffered spill writes, one streamed-back
/// run, merge buffers) — the same envelope the budget-stress suite asserts
/// `peak_resident_bytes` stays within. Append-only intern tables that push
/// residency past it cannot be evicted, so continuing would silently break
/// the cap.
const BUDGET_OVERRUN_SLACK: usize = 4 << 20;

/// Periodic-checkpoint configuration threaded into the commit loop.
pub(crate) struct CheckpointCfg {
    /// Where the snapshot lands (atomically, via temp file + rename).
    pub(crate) path: PathBuf,
    /// Admissions between snapshots (≥ 1).
    pub(crate) every: u64,
    /// Keep a numbered copy (`<path>.ck0`, `<path>.ck1`, …) of every
    /// snapshot instead of overwriting — the kill-at-every-checkpoint
    /// matrix's hook.
    pub(crate) retain: bool,
    /// [`Protocol::name`] of the run, stored in the snapshot identity.
    pub(crate) protocol: String,
}

/// Snapshot failures surface through the engine's existing error type: they
/// are exploration-persistence failures exactly like spill-arena ones. The
/// typed [`SnapshotError`] detail rides in the message.
pub(crate) fn snapshot_sim_err(err: &SnapshotError) -> SimError {
    SimError::Spill {
        detail: format!("checkpoint: {err}"),
    }
}

/// Per-run constants every worker needs.
#[derive(Clone, Copy)]
pub(crate) struct RunCfg {
    pub(crate) solo_budget: Option<u64>,
    pub(crate) symmetric: bool,
    /// Budgeted runs bound each thread's intern cache to this many bytes;
    /// past it the cache is cleared wholesale (entries re-fetch from the
    /// shared tables on demand). `None` = unbounded, the historical
    /// behaviour of unbudgeted runs.
    pub(crate) cache_cap: Option<usize>,
}

/// Per-thread intern-cache byte cap under a memory budget: an eighth of the
/// budget, floored so tiny stress budgets don't thrash re-fetches.
pub(crate) fn cache_cap_of(memory_budget: Option<usize>) -> Option<usize> {
    memory_budget.map(|b| (b / 8).max(64 * 1024))
}

/// One admitted configuration awaiting expansion.
#[derive(Clone)]
pub(crate) struct Node {
    pub(crate) index: usize,
    pub(crate) state: PackedState,
    /// The node's own digest (base of the incremental edge previews).
    pub(crate) fp: u128,
    /// `false` for horizon nodes: only solo probes / activity reporting.
    pub(crate) expand: bool,
}

/// One unit of pool work: a batch of nodes (admission siblings ride
/// together, so the per-task synchronisation — deque push, wakeup, result
/// insertion — is paid once per batch instead of once per node).
type Batch = Vec<Node>;

/// Bounds on the adaptive batch size (see [`PoolSource::batch_target`]).
/// Batches amortise the pool's per-task mutex and condvar traffic, but a
/// batch also rides one deque slot — too coarse and a narrow frontier lands
/// on one worker while the rest starve. The committer therefore sizes each
/// batch from the live outstanding-node count instead of a fixed constant.
const MIN_BATCH: usize = 1;
const MAX_BATCH: usize = 64;

/// One outgoing edge of an expanded node, in pid order.
pub(crate) struct Edge {
    pub(crate) pid: usize,
    pub(crate) fp: u128,
    /// Speculatively materialised successor, present iff this worker won the
    /// claim on `fp`. `None` is always safe: the committer rematerialises
    /// from the parent on demand.
    pub(crate) child: Option<PackedState>,
}

/// What expanding one node produced.
pub(crate) struct Expansion {
    /// First active pid whose solo run failed to decide, if solo checks ran.
    pub(crate) solo_failure: Option<usize>,
    /// `true` if some process can still move (horizon completeness).
    pub(crate) has_active: bool,
    pub(crate) edges: Vec<Edge>,
}

struct NodeResult {
    /// The node's state, returned so the committer can derive unclaimed
    /// children from it.
    state: PackedState,
    out: Result<Expansion, SimError>,
}

// ---------------------------------------------------------------------------
// Spill codecs: how the engine's queues cross the memory/disk boundary
// ---------------------------------------------------------------------------

/// Encodes one node; `base` is the spill run's previous state (delta base).
/// The state rides last and unframed — both state decoders are strict, so
/// the record's end delimits it.
fn encode_node(node: &Node, base: Option<&PackedState>, out: &mut Vec<u8>) {
    write_varint(out, node.index as u64);
    out.extend_from_slice(&node.fp.to_le_bytes());
    out.push(u8::from(node.expand));
    match base {
        Some(base) => {
            out.push(1);
            encode_delta(base, &node.state, out);
        }
        None => {
            out.push(0);
            encode_flat(&node.state, out);
        }
    }
}

fn decode_node(mut bytes: &[u8], base: Option<&PackedState>) -> Node {
    let index = read_varint(&mut bytes).expect("node record: index") as usize;
    let (fp_bytes, rest) = bytes.split_at(16);
    let fp = u128::from_le_bytes(fp_bytes.try_into().expect("16-byte digest"));
    let expand = rest[0] != 0;
    let tag = rest[1];
    let state_bytes = &rest[2..];
    let state = match (tag, base) {
        (1, Some(base)) => apply_delta(base, state_bytes).expect("node record: delta"),
        (0, _) => decode_flat(state_bytes).expect("node record: flat state"),
        _ => unreachable!("spill record base/tag mismatch"),
    };
    Node {
        index,
        state,
        fp,
        expand,
    }
}

/// Codec for the sequential engine's admission queue: records chain across
/// the whole run, each state a delta against the previously spilled one.
pub(crate) struct NodeCodec;

impl SpillCodec for NodeCodec {
    type Item = Node;

    fn encode(&self, node: &Node, prev: Option<&Node>, out: &mut Vec<u8>) {
        encode_node(node, prev.map(|p| &p.state), out);
    }

    fn decode(&self, bytes: &[u8], prev: Option<&Node>) -> Node {
        decode_node(bytes, prev.map(|p| &p.state))
    }

    /// Streamed-back records patch the chained base **in place** (a delta
    /// touches a handful of positions) and clone once to return — instead of
    /// building a state from the base and cloning it again for the chain.
    fn decode_step(&self, mut bytes: &[u8], prev: &mut Option<Node>) -> Node {
        let Some(node) = prev else {
            let item = self.decode(bytes, None);
            *prev = Some(item.clone());
            return item;
        };
        node.index = read_varint(&mut bytes).expect("node record: index") as usize;
        let (fp_bytes, rest) = bytes.split_at(16);
        node.fp = u128::from_le_bytes(fp_bytes.try_into().expect("16-byte digest"));
        node.expand = rest[0] != 0;
        let tag = rest[1];
        let state_bytes = &rest[2..];
        match tag {
            1 => apply_delta_into(&mut node.state, state_bytes).expect("node record: delta"),
            0 => node.state = decode_flat(state_bytes).expect("node record: flat state"),
            _ => unreachable!("spill record base/tag mismatch"),
        }
        node.clone()
    }

    fn cost(&self, node: &Node) -> usize {
        std::mem::size_of::<Node>() + node.state.resident_bytes()
    }
}

/// Codec for the pool's per-worker deques: a record is a whole batch, its
/// nodes length-framed and delta-chained (admission siblings compress
/// against each other; the first node chains to the previous batch's last).
struct BatchCodec;

impl SpillCodec for BatchCodec {
    type Item = Batch;

    fn encode(&self, batch: &Batch, prev: Option<&Batch>, out: &mut Vec<u8>) {
        write_varint(out, batch.len() as u64);
        let mut base = prev.and_then(|b| b.last()).map(|n| &n.state);
        let mut record = Vec::new();
        for node in batch {
            record.clear();
            encode_node(node, base, &mut record);
            write_varint(out, record.len() as u64);
            out.extend_from_slice(&record);
            base = Some(&node.state);
        }
    }

    fn decode(&self, mut bytes: &[u8], prev: Option<&Batch>) -> Batch {
        let count = read_varint(&mut bytes).expect("batch record: count") as usize;
        let mut batch = Vec::with_capacity(count);
        for _ in 0..count {
            let len = read_varint(&mut bytes).expect("batch record: framing") as usize;
            let base = batch.last().or_else(|| prev.and_then(|b: &Batch| b.last()));
            let node = decode_node(&bytes[..len], base.map(|n: &Node| &n.state));
            bytes = &bytes[len..];
            batch.push(node);
        }
        batch
    }

    /// Only the chain's *last* node ever serves as a delta base, so keep a
    /// one-node stub instead of cloning the whole batch between records.
    fn decode_step(&self, bytes: &[u8], prev: &mut Option<Batch>) -> Batch {
        let batch = self.decode(bytes, prev.as_ref());
        // An empty batch leaves the chain where it was, exactly as `encode`
        // leaves its base untouched when it writes zero nodes.
        if let Some(last) = batch.last() {
            *prev = Some(vec![last.clone()]);
        }
        batch
    }

    fn cost(&self, batch: &Batch) -> usize {
        batch
            .iter()
            .map(|n| std::mem::size_of::<Node>() + n.state.resident_bytes())
            .sum()
    }
}

/// Codec for the committer's reorder buffer. Records are parked
/// individually (no run chaining): the parent state is flat-encoded and
/// each speculatively materialised child is a delta against it — one step
/// away, so a few bytes each. Error results are never spilled (the
/// committer consumes and propagates them immediately).
struct ResultCodec;

impl SpillCodec for ResultCodec {
    type Item = NodeResult;

    fn encode(&self, result: &NodeResult, _prev: Option<&NodeResult>, out: &mut Vec<u8>) {
        let expansion = result
            .out
            .as_ref()
            .expect("error results are unspillable");
        let mut state_bytes = Vec::new();
        encode_flat(&result.state, &mut state_bytes);
        write_varint(out, state_bytes.len() as u64);
        out.extend_from_slice(&state_bytes);
        out.push(u8::from(expansion.has_active));
        match expansion.solo_failure {
            None => out.push(0),
            Some(pid) => {
                out.push(1);
                write_varint(out, pid as u64);
            }
        }
        write_varint(out, expansion.edges.len() as u64);
        let mut child_bytes = Vec::new();
        for edge in &expansion.edges {
            write_varint(out, edge.pid as u64);
            out.extend_from_slice(&edge.fp.to_le_bytes());
            match &edge.child {
                None => out.push(0),
                Some(child) => {
                    out.push(1);
                    child_bytes.clear();
                    encode_delta(&result.state, child, &mut child_bytes);
                    write_varint(out, child_bytes.len() as u64);
                    out.extend_from_slice(&child_bytes);
                }
            }
        }
    }

    fn decode(&self, mut bytes: &[u8], _prev: Option<&NodeResult>) -> NodeResult {
        let state_len = read_varint(&mut bytes).expect("result record: framing") as usize;
        let state = decode_flat(&bytes[..state_len]).expect("result record: state");
        bytes = &bytes[state_len..];
        let has_active = bytes[0] != 0;
        let solo_failure = match bytes[1] {
            0 => {
                bytes = &bytes[2..];
                None
            }
            _ => {
                bytes = &bytes[2..];
                Some(read_varint(&mut bytes).expect("result record: solo pid") as usize)
            }
        };
        let edge_count = read_varint(&mut bytes).expect("result record: edges") as usize;
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let pid = read_varint(&mut bytes).expect("result record: pid") as usize;
            let (fp_bytes, rest) = bytes.split_at(16);
            let fp = u128::from_le_bytes(fp_bytes.try_into().expect("16-byte digest"));
            let child = match rest[0] {
                0 => {
                    bytes = &rest[1..];
                    None
                }
                _ => {
                    bytes = &rest[1..];
                    let len = read_varint(&mut bytes).expect("result record: child len") as usize;
                    let child = apply_delta(&state, &bytes[..len]).expect("result record: child");
                    bytes = &bytes[len..];
                    Some(child)
                }
            };
            edges.push(Edge { pid, fp, child });
        }
        NodeResult {
            state,
            out: Ok(Expansion {
                solo_failure,
                has_active,
                edges,
            }),
        }
    }

    fn cost(&self, result: &NodeResult) -> usize {
        let children: usize = match &result.out {
            Ok(expansion) => expansion
                .edges
                .iter()
                .filter_map(|e| e.child.as_ref())
                .map(|c| c.resident_bytes() + std::mem::size_of::<Edge>())
                .sum(),
            Err(_) => 0,
        };
        std::mem::size_of::<NodeResult>() + result.state.resident_bytes() + children
    }

    fn spillable(&self, result: &NodeResult) -> bool {
        result.out.is_ok()
    }
}

/// Expands one node: solo probes first (mirroring the reference: a failure
/// suppresses the edges), then one previewed edge per active pid. All
/// intern-table traffic goes through the expander's thread-local `cache`.
pub(crate) fn expand_node<P: Process>(
    ctx: &PackedCtx<P>,
    node: &Node,
    cfg: RunCfg,
    claims: Option<&ClaimTable>,
    cache: &mut PackedCache<P>,
) -> Result<Expansion, SimError> {
    let state = &node.state;
    let has_active = ctx.has_active(state);
    if let Some(budget) = cfg.solo_budget {
        // One unpack per node, one machine clone per probe — the same cost
        // shape as the reference's per-pid `machine.clone()`.
        let base = Machine::from_packed_cached(ctx, cache, state);
        for pid in (0..state.n()).filter(|&p| ctx.is_active(state, p)) {
            let mut probe = base.clone();
            if probe.run_solo(pid, budget)?.is_none() {
                return Ok(Expansion {
                    solo_failure: Some(pid),
                    has_active,
                    edges: Vec::new(),
                });
            }
        }
    }
    let mut edges = Vec::new();
    if node.expand {
        for pid in (0..state.n()).filter(|&p| ctx.is_active(state, p)) {
            let fp = ctx
                .edge_digest_cached(cache, state, pid, node.fp, cfg.symmetric)
                .map_err(|source| SimError::Model {
                    pid,
                    step: state.steps(),
                    source,
                })?;
            let child = match claims {
                Some(claims) if claims.claim(fp) => {
                    Some(ctx.branch_step_cached(cache, state, pid).expect("previewed edge steps"))
                }
                _ => None,
            };
            edges.push(Edge { pid, fp, child });
        }
    }
    Ok(Expansion {
        solo_failure: None,
        has_active,
        edges,
    })
}

// ---------------------------------------------------------------------------
// Result sources: where the committer gets ordered node results from
// ---------------------------------------------------------------------------

/// The committer's view of the expansion machinery: it hands out tasks and
/// asks for node results in admission order. Sequential and work-stealing
/// implementations share the one committer, which is what makes them
/// bit-identical. The authoritative seen set lives behind
/// [`crate::fpset::AdmitSet`]; both are fallible because a budgeted run's
/// queues and fingerprint store may touch disk.
trait ResultSource<P: Process> {
    fn dispatch(&mut self, node: Node) -> Result<(), SimError>;
    fn take(&mut self, index: usize) -> Result<NodeResult, SimError>;
}

/// In-process source: tasks run inline, in dispatch order, on the calling
/// thread. No claims — the committer materialises every admitted child. The
/// admission queue is a budgeted [`FrontierStore`]: within the memory budget
/// it is the plain deque this engine always used, past it the backlog spills
/// to the run's arena and streams back in the same order, so `take` still
/// sees exactly the dispatch sequence.
struct SeqSource<'c, P: Process> {
    ctx: &'c PackedCtx<P>,
    cfg: RunCfg,
    queue: FrontierStore<NodeCodec>,
    cache: PackedCache<P>,
}

impl<P: Process> ResultSource<P> for SeqSource<'_, P> {
    fn dispatch(&mut self, node: Node) -> Result<(), SimError> {
        self.queue.push(node)?;
        Ok(())
    }

    fn take(&mut self, index: usize) -> Result<NodeResult, SimError> {
        let node = self.queue.pop()?.expect("take follows dispatch");
        debug_assert_eq!(node.index, index);
        let out = expand_node(self.ctx, &node, self.cfg, None, &mut self.cache);
        if let Some(cap) = self.cfg.cache_cap {
            self.cache.evict_if_over(cap);
        }
        Ok(NodeResult {
            state: node.state,
            out,
        })
    }
}

/// Everything the worker threads and the committer share.
struct Pool {
    /// One deque per worker: the committer deals node batches round-robin;
    /// owners pop the front, idle workers steal from the front of other
    /// deques (FIFO everywhere keeps completion roughly in admission order,
    /// which keeps the committer's reorder buffer small). Each deque is a
    /// budgeted [`FrontierStore`], so backlogged batches spill rather than
    /// accumulate.
    deques: Vec<Mutex<FrontierStore<BatchCodec>>>,
    /// Completed expansions, keyed by admission index; large-index results
    /// park in the spill arena past the budget.
    results: Mutex<ReorderBuffer<ResultCodec>>,
    results_ready: Condvar,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    work_ready: Condvar,
    stop: AtomicBool,
    /// Shared fingerprint table: workers claim into it to dedupe speculative
    /// child materialisation; on unbudgeted runs the committer also admits
    /// into its committed bitmap. Lock-free on both hot paths.
    claims: ClaimTable,
    /// First spill-IO failure observed by any pool thread. A worker that
    /// hits one records it here and stops the pool; the committer turns it
    /// into a clean [`SimError::Spill`] instead of the abnormal-termination
    /// panic reserved for genuine worker crashes.
    io_error: Mutex<Option<SpillError>>,
}

impl Pool {
    fn pop_batch(&self, home: usize) -> Result<Option<Batch>, SpillError> {
        let workers = self.deques.len();
        for offset in 0..workers {
            let deque = &self.deques[(home + offset) % workers];
            if let Some(batch) = deque.lock().unwrap().pop()? {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    /// Records the first spill failure (later ones lose the race and are
    /// dropped: one failure already stops the run).
    fn record_io_error(&self, err: SpillError) {
        self.io_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert(err);
    }

    /// Takes the recorded spill failure, if any (committer side).
    fn take_io_error(&self) -> Option<SpillError> {
        self.io_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    fn worker_loop<P: Process>(&self, ctx: &PackedCtx<P>, cfg: RunCfg, home: usize) {
        let _guard = StopGuard(self);
        // Thread-local read-through view of the shared intern tables; lives
        // for the whole run, so entries are fetched under a shard lock at
        // most once per worker (unless a budget caps and clears it).
        let mut cache = PackedCache::new();
        loop {
            if self.stop.load(Ordering::Acquire) {
                return; // abandon speculative leftovers: the run is decided
            }
            let popped = match self.pop_batch(home) {
                Ok(popped) => popped,
                Err(err) => {
                    // StopGuard (not us) wakes the committer, which maps the
                    // recorded error to a clean outcome.
                    self.record_io_error(err);
                    return;
                }
            };
            if let Some(batch) = popped {
                // Expand the whole batch before taking the results lock
                // once: one insertion burst, one committer wakeup.
                let outs: Vec<(usize, NodeResult)> = batch
                    .into_iter()
                    .map(|node| {
                        let out = expand_node(ctx, &node, cfg, Some(&self.claims), &mut cache);
                        (
                            node.index,
                            NodeResult {
                                state: node.state,
                                out,
                            },
                        )
                    })
                    .collect();
                if let Some(cap) = cfg.cache_cap {
                    cache.evict_if_over(cap);
                }
                let mut failed = None;
                {
                    let mut results = self.results.lock().unwrap();
                    for (index, result) in outs {
                        if let Err(err) = results.insert(index, result) {
                            failed = Some(err);
                            break;
                        }
                    }
                }
                if let Some(err) = failed {
                    self.record_io_error(err);
                    return;
                }
                self.results_ready.notify_one();
                continue;
            }
            // Nothing to run or steal: park. The re-check under the idle
            // lock pairs with `dispatch` taking the same lock around its
            // notify, so a task pushed between our failed pop and the wait
            // cannot be missed; the timeout is pure belt-and-braces.
            let guard = self.idle.lock().unwrap();
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            if self.pop_would_succeed() {
                continue;
            }
            let _ = self
                .work_ready
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
        }
    }

    fn pop_would_succeed(&self) -> bool {
        self.deques
            .iter()
            .any(|deque| !deque.lock().unwrap().is_empty())
    }
}

/// Sets the pool's stop flag and wakes everyone on drop — including during
/// unwinding. Held by the committer (so a committer panic releases the
/// workers instead of hanging `thread::scope`'s implicit join) and by every
/// worker (so a worker panic wakes a committer blocked on the result that
/// will now never arrive).
struct StopGuard<'p>(&'p Pool);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
        // Poison-tolerant locking: this drop runs *during unwinding* (that
        // is its whole job), where finding a mutex the panicking thread
        // poisoned is expected — an `unwrap` here would be a panic inside a
        // drop, turning a clean unwind into a process abort.
        let guard = self.0.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.0.work_ready.notify_all();
        drop(guard);
        let results = self.0.results.lock().unwrap_or_else(|e| e.into_inner());
        self.0.results_ready.notify_all();
        drop(results);
    }
}

/// Work-stealing source: the committer side of the pool.
struct PoolSource<'p, P: Process> {
    pool: &'p Pool,
    ctx: &'p PackedCtx<P>,
    cfg: RunCfg,
    /// The committer's own intern cache, used when it helps expand.
    cache: PackedCache<P>,
    workers: usize,
    next_deque: usize,
    /// Nodes admitted but not yet pushed to a deque; flushed as one batch.
    pending: Batch,
    /// Nodes dispatched but not yet taken — the live frontier width the
    /// batch size adapts to.
    outstanding: usize,
}

impl<P: Process> PoolSource<'_, P> {
    /// Live batch size: a fraction of the outstanding work per worker, so
    /// wide frontiers amortise pool traffic with big batches while narrow
    /// ones split into single nodes that spread across workers instead of
    /// queueing behind one.
    fn batch_target(&self) -> usize {
        (self.outstanding / (4 * self.workers)).clamp(MIN_BATCH, MAX_BATCH)
    }

    fn flush(&mut self) -> Result<(), SimError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        let deques = &self.pool.deques;
        deques[self.next_deque % deques.len()]
            .lock()
            .unwrap()
            .push(batch)?;
        self.next_deque += 1;
        // Serialize the notify against the workers' park re-check: a worker
        // either holds `idle` (and will observe the push above), or is
        // already waiting (and receives this notification).
        let _guard = self.pool.idle.lock().unwrap();
        self.pool.work_ready.notify_one();
        Ok(())
    }

    /// Pops one backlogged batch and expands it on the committer's thread —
    /// what `take` does instead of sleeping while its result is in flight.
    /// Returns `false` if every deque was empty.
    fn help(&mut self) -> Result<bool, SimError> {
        let Some(batch) = self.pool.pop_batch(self.next_deque % self.workers)? else {
            return Ok(false);
        };
        let outs: Vec<(usize, NodeResult)> = batch
            .into_iter()
            .map(|node| {
                let out =
                    expand_node(self.ctx, &node, self.cfg, Some(&self.pool.claims), &mut self.cache);
                (
                    node.index,
                    NodeResult {
                        state: node.state,
                        out,
                    },
                )
            })
            .collect();
        if let Some(cap) = self.cfg.cache_cap {
            self.cache.evict_if_over(cap);
        }
        let mut results = self.pool.results.lock().unwrap();
        for (index, result) in outs {
            results.insert(index, result)?;
        }
        Ok(true)
    }

    /// A worker stopped the pool mid-run: a recorded spill failure becomes a
    /// clean error, anything else is the abnormal-termination panic.
    fn stopped_abnormally(&self) -> SimError {
        match self.pool.take_io_error() {
            Some(err) => err.into(),
            None => panic!("explorer worker terminated abnormally"),
        }
    }
}

impl<P: Process> ResultSource<P> for PoolSource<'_, P> {
    fn dispatch(&mut self, node: Node) -> Result<(), SimError> {
        self.pending.push(node);
        self.outstanding += 1;
        if self.pending.len() >= self.batch_target() {
            self.flush()?;
        }
        Ok(())
    }

    fn take(&mut self, index: usize) -> Result<NodeResult, SimError> {
        // Nodes buffer in admission order, so the buffer's first index is
        // its minimum: flush iff the node we are about to wait for (or any
        // earlier one) is still sitting in the buffer.
        if self.pending.first().is_some_and(|node| node.index <= index) {
            self.flush()?;
        }
        loop {
            {
                let mut results = self.pool.results.lock().unwrap();
                if let Some(result) = results.remove(index)? {
                    self.outstanding -= 1;
                    return Ok(result);
                }
                // `stop` flips mid-run only when a worker unwound (its
                // StopGuard) or hit a spill failure; without this check the
                // committer would wait forever for the result that worker
                // was computing.
                if self.pool.stop.load(Ordering::Acquire) {
                    drop(results);
                    return Err(self.stopped_abnormally());
                }
            }
            // The result is in flight. Expand a backlogged batch ourselves
            // rather than sleeping — on saturated machines the committer is
            // effectively one more worker; on oversubscribed ones it keeps
            // progress independent of the scheduler.
            if self.help()? {
                continue;
            }
            // Nothing to help with: park until a worker delivers. The
            // re-check under the lock pairs with the workers' insert-then-
            // notify; the timeout covers the window between our failed help
            // and the wait.
            let mut results = self.pool.results.lock().unwrap();
            if let Some(result) = results.remove(index)? {
                self.outstanding -= 1;
                return Ok(result);
            }
            if self.pool.stop.load(Ordering::Acquire) {
                drop(results);
                return Err(self.stopped_abnormally());
            }
            let _ = self
                .pool
                .results_ready
                .wait_timeout(results, Duration::from_millis(10))
                .unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// The deterministic committer
// ---------------------------------------------------------------------------

/// Validity/agreement check on one packed configuration: collects the
/// semantic decision vector and defers to the engine-shared
/// [`crate::checker::violation_from_decisions`], so both representations'
/// checks can never drift apart.
pub(crate) fn packed_violation<P: Process>(
    ctx: &PackedCtx<P>,
    cache: &mut PackedCache<P>,
    state: &PackedState,
    inputs: &[u64],
    link: usize,
    links: &[Link],
) -> Option<ExploreOutcome> {
    let decisions: Vec<u64> = (0..state.n())
        .filter_map(|p| ctx.decision_cached(cache, state, p))
        .collect();
    crate::checker::violation_from_decisions(&decisions, inputs, link, links)
}

/// The sequential commit loop: consumes node results in admission order and
/// makes every stateful decision exactly the way the clone-based reference
/// BFS does. This is the *only* place the admitted set, links, counters and
/// outcome are touched, which is the whole determinism argument — `admit` is
/// a private `HashSet` or the shared claim table's committed bitmap, but
/// either way only this loop calls it, in one deterministic order.
#[allow(clippy::too_many_arguments)]
fn drive<P, S, A>(
    ctx: &PackedCtx<P>,
    root: PackedState,
    inputs: &[u64],
    limits: ExploreLimits,
    symmetric: bool,
    source: &mut S,
    admit: &mut A,
    mem: &SpillContext,
    ckpt: Option<&CheckpointCfg>,
    resume: Option<&Snapshot>,
) -> Result<(ExploreOutcome, ExploreStats), SimError>
where
    P: Process,
    S: ResultSource<P>,
    A: AdmitSet,
{
    // The committer's own read-through intern cache (derivation of
    // unclaimed children, violation checks, the root digest).
    let mut cache: PackedCache<P> = PackedCache::new();
    // Admitted-configuration count: tracks `admit` admissions one-for-one,
    // kept locally because the shared table has no cheap exact size.
    let mut configs = 0usize;
    let mut links: Vec<Link> = Vec::new();
    // (parent link, depth) per admitted node, in admission order.
    let mut meta: Vec<(usize, usize)> = Vec::new();
    let mut complete = true;
    let mut frontier_peak = 1usize;
    let mut depth_reached = 0usize;
    // Admitted / committed node counts per breadth-first layer. A layer's
    // admissions close when the previous layer is fully committed; indices
    // are therefore grouped by layer, in layer order.
    let mut layer_total: Vec<usize> = vec![1];
    let mut layer_done: Vec<usize> = vec![0];
    // Intern-table bytes already charged to the tracker. The tables are
    // append-only (spilled states embed intern ids, so entries can never be
    // evicted); the committer polls their growth into the shared tracker so
    // the budget sees frontier + seen set + interners as one total.
    let mut interned_charged = 0usize;
    let cache_cap = cache_cap_of(limits.memory_budget);
    // Checkpoint telemetry (stays 0 without a checkpoint config; excluded
    // from stats equality like the other byte counters).
    let mut ckpt_seq = 0u64;
    let mut ckpt_bytes = 0u64;
    let mut ckpt_ms = 0u64;
    macro_rules! stats {
        () => {
            ExploreStats {
                configs,
                frontier_peak,
                depth_reached,
                bytes_spilled: mem.tracker().bytes_spilled(),
                peak_resident_bytes: mem.tracker().peak_resident_bytes(),
                seen_resident_bytes: admit.seen_resident_bytes(),
                intern_resident_bytes: ctx.intern_resident_bytes(),
                fpset_disk_bytes: admit.fpset_disk_bytes(),
                checkpoint_bytes: ckpt_bytes,
                checkpoint_ms: ckpt_ms,
                frames_exchanged: 0,
                frame_bytes: 0,
            }
        };
    }

    // Horizon nodes with no solo checks to run have a fixed, edge-free
    // expansion; computing their `has_active` bit inline at admission (flag
    // reads only, no table locks) spares the biggest layer of a
    // depth-limited run a pool round-trip per node.
    let mut inline_active: HashMap<usize, bool> = HashMap::new();
    let solo = limits.solo_check_budget.is_some();

    let n = root.n();
    let root_fp = ctx.digest_cached(&mut cache, &root, symmetric);
    let mut next_commit = 0usize;
    if let Some(snap) = resume {
        // --- Resume: restore the committer's logical state, then rebuild
        // everything physical deterministically. ---
        //
        // The snapshot stores membership and provenance, not layouts: the
        // seen set is re-admitted fp by fp (its tiering afterwards differs
        // from the killed run's — telemetry, excluded from stats equality),
        // and every pending node's state is replayed from the root through
        // the *current* intern tables, because intern ids are internal to a
        // process lifetime and digests hash content, never ids.
        if snap.seen.binary_search(&root_fp).is_err() {
            return Err(snapshot_sim_err(&SnapshotError::IdentityMismatch {
                detail: "root fingerprint absent from the snapshot's seen set".to_string(),
            }));
        }
        for &fp in &snap.seen {
            let fresh = admit.admit(fp)?;
            debug_assert!(fresh, "snapshot seen set carries duplicates");
        }
        configs = snap.seen.len();
        links.clone_from(&snap.links);
        complete = snap.complete;
        frontier_peak = snap.frontier_peak;
        depth_reached = snap.depth_reached;
        next_commit = snap.next_commit;
        // Per-node (parent link, depth) and the layer counters are pure
        // functions of the link list: node `j + 1`'s link is `j`, its depth
        // is one past its parent's, and layers admit index-contiguously.
        meta.push((NO_LINK, 0));
        for (j, &(parent, _)) in links.iter().enumerate() {
            let parent_index = if parent == NO_LINK { 0 } else { parent + 1 };
            let depth = meta[parent_index].1 + 1;
            meta.push((j, depth));
            if layer_total.len() <= depth {
                layer_total.push(0);
                layer_done.push(0);
            }
            layer_total[depth] += 1;
        }
        for &(_, depth) in &meta[..next_commit] {
            layer_done[depth] += 1;
        }
        // Snapshots land at admission boundaries, so the pending frontier is
        // exactly the uncommitted index suffix; re-dispatch it in admission
        // order (the order `take` will ask for it back in).
        for (index, &(link, d)) in meta.iter().enumerate().skip(next_commit) {
            let mut state = root.clone();
            for pid in schedule_of(&links, link) {
                ctx.step_cached(&mut cache, &mut state, pid).map_err(|source| {
                    SimError::Model {
                        pid,
                        step: state.steps(),
                        source,
                    }
                })?;
            }
            let fp = ctx.digest_cached(&mut cache, &state, symmetric);
            let expand = d < limits.depth;
            if expand || solo {
                source.dispatch(Node { index, state, fp, expand })?;
            } else {
                inline_active.insert(index, ctx.has_active(&state));
            }
        }
    } else {
        let _root_new = admit.admit(root_fp)?;
        debug_assert!(_root_new, "fresh run: the root cannot be pre-admitted");
        configs += 1;
        if let Some(violation) = packed_violation(ctx, &mut cache, &root, inputs, NO_LINK, &links) {
            return Ok((violation, stats!()));
        }
        meta.push((NO_LINK, 0));
        if limits.depth > 0 || solo {
            source.dispatch(Node {
                index: 0,
                state: root,
                fp: root_fp,
                expand: limits.depth > 0,
            })?;
        } else {
            inline_active.insert(0, ctx.has_active(&root));
        }
    }

    let mut next_ckpt_at = ckpt.map(|ck| configs as u64 + ck.every);
    while next_commit < meta.len() {
        // Fold intern-table growth (the committer's own and every worker's)
        // into the shared resident total before the admissions below consult
        // the budget. The tables only grow, so this is a one-way delta.
        let interned = ctx.intern_resident_bytes();
        if interned > interned_charged {
            mem.tracker().add_resident(interned - interned_charged);
            interned_charged = interned;
        }
        // The evictable stores keep themselves within the budget (plus a
        // bounded slack), but the intern tables just charged are append-only:
        // once they push the total past the envelope nothing can shrink it
        // back, so stop with the typed error instead of silently overrunning
        // the cap the caller asked for.
        if let Some(budget) = limits.memory_budget {
            let resident = mem.tracker().resident_bytes();
            if resident > budget.saturating_add(BUDGET_OVERRUN_SLACK) {
                return Err(SimError::Budget {
                    needed: resident,
                    budget,
                });
            }
        }
        // Periodic snapshot, taken strictly at an admission boundary: the
        // node at `next_commit` is not yet expanded, so the admitted set,
        // links and counters are exactly the reference order's prefix.
        if let (Some(ck), Some(at)) = (ckpt, next_ckpt_at.as_mut()) {
            if configs as u64 >= *at {
                let started = Instant::now();
                // Queued spill-arena writes drain and fsync first, so the
                // on-disk arena is never staler than the snapshot beside it.
                mem.sync()?;
                let mut seen = admit.collect_fps()?;
                seen.sort_unstable();
                debug_assert_eq!(seen.len(), configs, "admissions track configs 1:1");
                let snap = Snapshot {
                    protocol: ck.protocol.clone(),
                    n,
                    inputs: inputs.to_vec(),
                    depth: limits.depth,
                    max_configs: limits.max_configs,
                    solo_check_budget: limits.solo_check_budget,
                    symmetric,
                    links: links.clone(),
                    seen,
                    next_commit,
                    frontier_peak,
                    depth_reached,
                    complete,
                };
                let written = snap.write(&ck.path).map_err(|e| snapshot_sim_err(&e))?;
                if ck.retain {
                    let numbered = PathBuf::from(format!("{}.ck{ckpt_seq}", ck.path.display()));
                    std::fs::copy(&ck.path, &numbered).map_err(|e| SimError::Spill {
                        detail: format!("checkpoint: retaining copy failed: {}", e.kind()),
                    })?;
                }
                ckpt_seq += 1;
                ckpt_bytes += written;
                ckpt_ms += started.elapsed().as_millis() as u64;
                *at = configs as u64 + ck.every;
            }
        }
        if let Some(cap) = cache_cap {
            cache.evict_if_over(cap);
        }
        let (parent_link, d) = meta[next_commit];
        let (expansion, parent_state) = match inline_active.remove(&next_commit) {
            Some(has_active) => (
                Expansion {
                    solo_failure: None,
                    has_active,
                    edges: Vec::new(),
                },
                None,
            ),
            None => {
                let result = source.take(next_commit)?;
                (result.out?, Some(result.state))
            }
        };
        if let Some(pid) = expansion.solo_failure {
            return Ok((
                ExploreOutcome::ObstructionFailure {
                    pid,
                    schedule: schedule_of(&links, parent_link),
                },
                stats!(),
            ));
        }
        // A horizon node with moves left is what the depth cutoff hides.
        if d >= limits.depth && expansion.has_active {
            complete = false;
        }
        for Edge { pid, fp, child } in expansion.edges {
            if !admit.admit(fp)? {
                continue;
            }
            configs += 1;
            if configs > limits.max_configs {
                // Mirror of the reference: the over-cap configuration stays
                // counted, nothing else of the partial layer does.
                complete = false;
                return Ok((
                    ExploreOutcome::Clean { configs, complete },
                    stats!(),
                ));
            }
            let child_state = match child {
                Some(state) => state,
                // The claim raced to another edge (or this is the
                // sequential path): derive the child from the parent. Edges
                // only come from dispatched nodes, so the state is present.
                None => ctx
                    .branch_step_cached(
                        &mut cache,
                        parent_state.as_ref().expect("expanded node state"),
                        pid,
                    )
                    .expect("previewed edge steps"),
            };
            debug_assert_eq!(
                fp,
                ctx.digest(&child_state, symmetric),
                "incremental digest out of sync with full scan"
            );
            let link = links.len();
            links.push((parent_link, pid));
            if let Some(violation) =
                packed_violation(ctx, &mut cache, &child_state, inputs, link, &links)
            {
                return Ok((violation, stats!()));
            }
            let child_depth = d + 1;
            let index = meta.len();
            meta.push((link, child_depth));
            if layer_total.len() <= child_depth {
                layer_total.push(0);
                layer_done.push(0);
            }
            layer_total[child_depth] += 1;
            let expand = child_depth < limits.depth;
            if expand || solo {
                source.dispatch(Node {
                    index,
                    state: child_state,
                    fp,
                    expand,
                })?;
            } else {
                inline_active.insert(index, ctx.has_active(&child_state));
            }
        }
        next_commit += 1;
        layer_done[d] += 1;
        // Commits run in index order and layers are index-contiguous, so
        // this fires exactly when layer `d`'s last node commits.
        if layer_done[d] == layer_total[d] {
            // Layer `d` fully expanded...
            if d < limits.depth {
                depth_reached = d + 1;
            }
            // ...and layer `d+1`'s admissions are closed — it is exactly the
            // breadth-first frontier the reference would hold live next.
            if let Some(&next_layer) = layer_total.get(d + 1) {
                if next_layer > 0 {
                    frontier_peak = frontier_peak.max(next_layer);
                }
            }
        }
    }
    Ok((
        ExploreOutcome::Clean { configs, complete },
        stats!(),
    ))
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Sequential packed exploration (no thread bounds on the process type).
pub(crate) fn explore_packed_seq<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    symmetric: bool,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    explore_packed_seq_ckpt(protocol, inputs, limits, symmetric, None, None)
}

/// [`explore_packed_seq`] with optional periodic checkpoints and an optional
/// snapshot to resume from.
pub(crate) fn explore_packed_seq_ckpt<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    symmetric: bool,
    ckpt: Option<CheckpointCfg>,
    resume: Option<&Snapshot>,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    if let Some(snap) = resume {
        snap.check_identity(protocol, inputs, &limits, symmetric)
            .map_err(|e| snapshot_sim_err(&e))?;
    }
    let machine = Machine::start(protocol, inputs)?;
    let ctx = machine.packed_ctx();
    let root = machine.pack(&ctx);
    let cfg = RunCfg {
        solo_budget: limits.solo_check_budget,
        symmetric,
        cache_cap: cache_cap_of(limits.memory_budget),
    };
    let mem = SpillContext::new(limits.memory_budget);
    let mut source = SeqSource {
        ctx: &ctx,
        cfg,
        queue: FrontierStore::new(NodeCodec, mem.clone()),
        cache: PackedCache::new(),
    };
    // Unbudgeted: a plain seen-HashSet (charged to the tracker so unbounded
    // peaks tell the truth). Budgeted: the tiered fingerprint store, which
    // evicts cold fingerprints to sorted runs instead of growing.
    let mut admit = SeenBackend::new(limits.max_configs, &mem);
    drive(
        &ctx,
        root,
        inputs,
        limits,
        symmetric,
        &mut source,
        &mut admit,
        &mem,
        ckpt.as_ref(),
        resume,
    )
}

/// Parallel packed exploration with a persistent work-stealing pool.
/// (The checkpoint-aware variant below is the production entry; this
/// shorthand serves the conformance tests' worker sweeps.)
#[cfg(test)]
pub(crate) fn explore_packed_par<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    symmetric: bool,
    workers: usize,
) -> Result<(ExploreOutcome, ExploreStats), SimError>
where
    P::Proc: Send + Sync,
{
    explore_packed_par_ckpt(protocol, inputs, limits, symmetric, workers, None, None)
}

/// [`explore_packed_par`] with optional periodic checkpoints and an optional
/// snapshot to resume from.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_packed_par_ckpt<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    symmetric: bool,
    workers: usize,
    ckpt: Option<CheckpointCfg>,
    resume: Option<&Snapshot>,
) -> Result<(ExploreOutcome, ExploreStats), SimError>
where
    P::Proc: Send + Sync,
{
    if let Some(snap) = resume {
        snap.check_identity(protocol, inputs, &limits, symmetric)
            .map_err(|e| snapshot_sim_err(&e))?;
    }
    // Below this many configurations the pool's thread spawns and batch
    // hand-offs dominate real work; the sequential path is bit-identical by
    // construction, so serving small spaces from it is unobservable.
    const MIN_PARALLEL_CONFIGS: usize = 1024;
    if workers <= 1 || limits.max_configs <= MIN_PARALLEL_CONFIGS {
        return explore_packed_seq_ckpt(protocol, inputs, limits, symmetric, ckpt, resume);
    }
    // Probe: run sequentially with the cap clamped to the threshold. The
    // cap fires only at `configs == cap + 1`, so a probe that comes back at
    // or under the threshold never hit it — its outcome (clean, violating,
    // depth-cut or obstruction) is exactly what the uncapped run would
    // produce, and no thread was ever spawned for a small space. Only when
    // the probe overflows (the space is genuinely big) do we pay the pool,
    // re-exploring the ≤`MIN_PARALLEL_CONFIGS`-node prefix — noise at that
    // size. Resumed runs skip the probe (they already hold a snapshot of a
    // big space), as do checkpointing ones (a probe must never write a
    // clamped-limits snapshot over the real one); both fallbacks above and
    // below stay bit-identical, so skipping is unobservable in outcomes.
    if ckpt.is_none() && resume.is_none() {
        let probe_limits = ExploreLimits {
            max_configs: MIN_PARALLEL_CONFIGS,
            ..limits
        };
        let probe = explore_packed_seq(protocol, inputs, probe_limits, symmetric)?;
        if probe.1.configs <= MIN_PARALLEL_CONFIGS {
            return Ok(probe);
        }
    }
    let machine = Machine::start(protocol, inputs)?;
    let ctx = machine.packed_ctx();
    let root = machine.pack(&ctx);
    let cfg = RunCfg {
        solo_budget: limits.solo_check_budget,
        symmetric,
        cache_cap: cache_cap_of(limits.memory_budget),
    };
    let mem = SpillContext::new(limits.memory_budget);
    let pool = Pool {
        deques: (0..workers)
            .map(|_| Mutex::new(FrontierStore::new(BatchCodec, mem.clone())))
            .collect(),
        results: Mutex::new(ReorderBuffer::new(ResultCodec, mem.clone())),
        results_ready: Condvar::new(),
        idle: Mutex::new(()),
        work_ready: Condvar::new(),
        stop: AtomicBool::new(false),
        // Unbudgeted: sized for the run's admission cap and doubling as the
        // authoritative seen set (the committer's root admission below lands
        // before any dispatch, so workers can never win a claim on the
        // root's fingerprint). Budgeted: a fixed-size *advisory* table —
        // claims it cannot hold are dropped, which only costs a duplicate
        // derivation at the committer — while authoritative admission moves
        // to the tiered fingerprint store.
        claims: match limits.memory_budget {
            Some(budget) => {
                // The advisory table is a real allocation of this run, so
                // size it against what is *left* of the budget after the
                // stores built above took their shares — including the
                // 4 KiB floor, which on a sub-16-KiB budget would otherwise
                // exceed the whole cap by itself.
                let remaining = budget.saturating_sub(mem.tracker().resident_bytes());
                ClaimTable::advisory((budget / 4).max(4096).min(remaining.max(1024)))
            }
            None => ClaimTable::new(limits.max_configs),
        },
        io_error: Mutex::new(None),
    };
    // The claim table is a real, budget-relevant allocation of the parallel
    // run; charge it for as long as the pool lives.
    let claim_bytes = pool.claims.resident_bytes();
    mem.tracker().add_resident(claim_bytes);
    let outcome = std::thread::scope(|scope| {
        for home in 0..workers {
            let pool = &pool;
            let ctx = &ctx;
            scope.spawn(move || pool.worker_loop(ctx, cfg, home));
        }
        let mut source = PoolSource {
            pool: &pool,
            ctx: &ctx,
            cfg,
            cache: PackedCache::new(),
            workers,
            next_deque: 0,
            pending: Vec::new(),
            outstanding: 0,
        };
        // The guard (not explicit code) stops the pool, so the workers are
        // released even if `drive` panics mid-commit — otherwise the scope's
        // implicit join would turn the panic into a deadlock.
        let _stop = StopGuard(&pool);
        if limits.memory_budget.is_some() {
            let mut admit = SeenBackend::new(limits.max_configs, &mem);
            drive(
                &ctx,
                root,
                inputs,
                limits,
                symmetric,
                &mut source,
                &mut admit,
                &mem,
                ckpt.as_ref(),
                resume,
            )
        } else {
            let mut admit = &pool.claims;
            drive(
                &ctx,
                root,
                inputs,
                limits,
                symmetric,
                &mut source,
                &mut admit,
                &mem,
                ckpt.as_ref(),
                resume,
            )
        }
    });
    mem.tracker().sub_resident(claim_bytes);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_explore;
    use crate::strawmen::{OneMaxRegister, OneRegister};
    use cbh_core::cas::CasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;

    fn agree<P: Protocol>(protocol: &P, inputs: &[u64], limits: ExploreLimits)
    where
        P::Proc: Send + Sync,
    {
        let oracle = reference_explore(protocol, inputs, limits).unwrap();
        let seq = explore_packed_seq(protocol, inputs, limits, false).unwrap();
        assert_eq!(seq, oracle, "sequential packed engine vs reference");
        for workers in [2, 4, 8] {
            let par = explore_packed_par(protocol, inputs, limits, false, workers).unwrap();
            assert_eq!(par, oracle, "packed engine at {workers} workers vs reference");
        }
        // A zero memory budget (every push spills, root included) must be
        // unobservable in the outcome — the full budget matrix lives in
        // tests/memory_budget.rs; this pins the local invariant.
        let budgeted = ExploreLimits {
            memory_budget: Some(0),
            ..limits
        };
        let spill = explore_packed_seq(protocol, inputs, budgeted, false).unwrap();
        assert_eq!(spill, oracle, "zero-budget packed engine vs reference");
        // Depth-0 runs without solo checks queue nothing, so only runs that
        // dispatch at least the root are required to have spilled.
        if limits.depth > 0 || limits.solo_check_budget.is_some() {
            assert!(spill.1.bytes_spilled > 0, "zero budget must spill");
        }
    }

    #[test]
    fn packed_engine_matches_reference_on_clean_and_violating_runs() {
        agree(
            &CasConsensus::new(3),
            &[0, 1, 2],
            ExploreLimits {
                depth: 10,
                max_configs: 100_000,
                solo_check_budget: Some(10),
                memory_budget: None,
                checkpoint_every: None,
            },
        );
        agree(&OneMaxRegister::new(), &[0, 1], ExploreLimits::default());
        agree(&OneRegister::new(3), &[0, 1, 1], ExploreLimits::default());
    }

    #[test]
    fn packed_engine_matches_reference_under_caps_and_horizons() {
        // Small caps cover the sequential over-cap path (the parallel entry
        // falls back below MIN_PARALLEL_CONFIGS)...
        for cap in [1, 2, 7, 50, 400] {
            agree(
                &MaxRegConsensus::new(2),
                &[1, 0],
                ExploreLimits {
                    depth: 12,
                    max_configs: cap,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
        // ...so caps above the fallback threshold are needed to exercise the
        // work-stealing committer's over-cap shutdown (early return while
        // workers still speculate) against the reference.
        for cap in [1_200, 2_048] {
            agree(
                &MaxRegConsensus::new(3),
                &[0, 1, 2],
                ExploreLimits {
                    depth: 14,
                    max_configs: cap,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
        for depth in 0..8 {
            agree(
                &MaxRegConsensus::new(3),
                &[0, 1, 2],
                ExploreLimits {
                    depth,
                    max_configs: 100_000,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
    }
}
