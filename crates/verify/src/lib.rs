//! Executable lower-bound artifacts of the space hierarchy.
//!
//! A space *lower* bound is a statement about **all** protocols, so it cannot
//! be "run" the way an algorithm can. What can be run is the executable core
//! of each proof: an **adversary** that, handed any concrete protocol using
//! too few locations, constructs an execution violating agreement. This crate
//! provides:
//!
//! - [`adversary`] — the interleaving adversary of Theorem 4.1 (one
//!   max-register), the fetch-and-increment adversary of Theorem 5.1 (one
//!   `{read, write, fetch-and-increment}` location), and the location-
//!   escalation adversary behind Lemma 9.1/Theorem 9.2 (test-and-set/
//!   write(1) memories need unboundedly many locations);
//! - [`checker`] — a bounded exhaustive model checker over schedules
//!   (agreement/validity violations, valency probes, obstruction-freedom
//!   checks): since the packed-state refactor it runs on the flat
//!   [`cbh_model::packed`] representation with a barrier-free
//!   work-stealing worker pool ([`packed_engine`]) whose outcomes are
//!   deterministic at any worker count, plus an opt-in process-symmetry
//!   reduction;
//! - [`frontier`] — memory-bounded frontier storage: budgeted FIFO queues
//!   and reorder buffers that delta-compress past
//!   [`checker::ExploreLimits::memory_budget`] into a self-deleting
//!   temp-file arena and stream back in admission order, shared by every
//!   engine;
//! - [`legacy`] — the previous barrier-synchronised machine-walking
//!   frontier engine, preserved as the measured baseline of the packed
//!   engine's speedups and as a third independent implementation of the
//!   exploration semantics;
//! - [`packing`] — Lemma 7.1's `k`-packing repair algorithm (the Eulerian
//!   multigraph argument) as a standalone combinatorial routine, plus
//!   `k`-packing construction and the fully-packed-location computation used
//!   by the multi-assignment lower bound (Theorem 7.5);
//! - [`covering`] — Section 6.2's covering-configuration vocabulary (covers,
//!   `k`-covered locations, block writes) computed on live configurations;
//! - [`dist`] — distributed sharded exploration: partitions the fingerprint
//!   space across shard workers (in-process threads or separate processes
//!   over Unix sockets) that exchange delta-framed candidate frontiers
//!   through a coordinator replaying the single-process admission order
//!   exactly, so outcomes stay bit-identical at any shard count;
//! - [`snapshot`] — crash-safe checkpoint/resume: a versioned, CRC-guarded
//!   on-disk capture of the committer's logical state at an admission
//!   boundary, written atomically on the [`checker::ExploreLimits::checkpoint_every`]
//!   cadence so a killed run resumes bit-identically at any worker count and
//!   memory budget;
//! - [`reference`] — a clone-everything BFS with independently implemented
//!   hashing and traversal, mirroring the frontier engine's semantics
//!   bit-for-bit: the differential-testing oracle the conformance fuzzer
//!   diffs the fast engine against;
//! - [`strawmen`] — deliberately undersized protocols (one max-register, one
//!   fetch-and-increment word, one plain register) for the adversaries and
//!   checker to defeat, witnessing each lower bound's claim *on code*.

pub mod adversary;
pub mod checker;
pub mod claim;
pub mod covering;
pub mod dist;
pub mod fpset;
pub mod frontier;
pub mod legacy;
pub mod packed_engine;
pub mod packing;
pub mod reference;
pub mod snapshot;
pub mod strawmen;
