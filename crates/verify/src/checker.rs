//! Bounded exhaustive model checking over schedules.
//!
//! For small numbers of processes and short horizons, *every* interleaving of
//! a protocol can be explored. The checker walks the schedule tree of a
//! [`Protocol`], memoising configurations (process states + memory, which are
//! `Hash + Eq` by construction), and reports:
//!
//! - agreement/validity violations, with the schedule that produced them;
//! - valency information ("can value `v` still be decided from here?") — the
//!   `can decide` relation the paper's covering arguments are built on;
//! - obstruction-freedom failures (a reachable configuration from which some
//!   process's solo run does not decide).

use cbh_model::{Process, Protocol};
use cbh_sim::{Machine, SimError};
use std::collections::HashSet;

/// What the exhaustive exploration found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// No violation within the horizon; `complete` tells whether the whole
    /// reachable space was covered (no depth/size cutoff was hit).
    Clean {
        /// Configurations visited.
        configs: usize,
        /// `true` if exploration exhausted all reachable configurations.
        complete: bool,
    },
    /// Two processes decided differently; the schedule (pid sequence) leads
    /// there from the initial configuration.
    AgreementViolation {
        /// Conflicting decisions.
        decisions: (u64, u64),
        /// The offending schedule.
        schedule: Vec<usize>,
    },
    /// A process decided a value nobody proposed.
    ValidityViolation {
        /// The invalid decision.
        decided: u64,
        /// The offending schedule.
        schedule: Vec<usize>,
    },
    /// A reachable configuration from which `pid`'s solo run failed to decide
    /// within the solo budget.
    ObstructionFailure {
        /// The starved process.
        pid: usize,
        /// Schedule reaching the bad configuration.
        schedule: Vec<usize>,
    },
}

impl ExploreOutcome {
    /// `true` if no violation was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, ExploreOutcome::Clean { .. })
    }
}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum schedule length explored.
    pub depth: usize,
    /// Maximum distinct configurations visited before giving up.
    pub max_configs: usize,
    /// If set, every visited configuration is also checked for solo
    /// termination within this many steps (expensive).
    pub solo_check_budget: Option<u64>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            depth: 40,
            max_configs: 200_000,
            solo_check_budget: None,
        }
    }
}

/// Exhaustively explores all schedules of `protocol` on `inputs`.
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
pub fn explore<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
) -> Result<ExploreOutcome, SimError> {
    let machine = Machine::start(protocol, inputs)?;
    let mut seen: HashSet<Machine<P::Proc>> = HashSet::new();
    let mut schedule = Vec::new();
    let mut complete = true;
    let outcome = explore_rec(
        &machine,
        inputs,
        &limits,
        &mut seen,
        &mut schedule,
        &mut complete,
    )?;
    Ok(match outcome {
        Some(v) => v,
        None => ExploreOutcome::Clean {
            configs: seen.len(),
            complete,
        },
    })
}

fn explore_rec<Proc: Process>(
    machine: &Machine<Proc>,
    inputs: &[u64],
    limits: &ExploreLimits,
    seen: &mut HashSet<Machine<Proc>>,
    schedule: &mut Vec<usize>,
    complete: &mut bool,
) -> Result<Option<ExploreOutcome>, SimError> {
    if !seen.insert(machine.clone()) {
        return Ok(None);
    }
    if seen.len() > limits.max_configs {
        *complete = false;
        return Ok(None);
    }

    // Check decided values at this configuration.
    let decisions: Vec<(usize, u64)> = (0..machine.n())
        .filter_map(|p| machine.decision(p).map(|d| (p, d)))
        .collect();
    for &(_, d) in &decisions {
        if !inputs.contains(&d) {
            return Ok(Some(ExploreOutcome::ValidityViolation {
                decided: d,
                schedule: schedule.clone(),
            }));
        }
    }
    if let Some((&(_, a), &(_, b))) = decisions
        .iter()
        .zip(decisions.iter().skip(1))
        .find(|((_, a), (_, b))| a != b)
    {
        return Ok(Some(ExploreOutcome::AgreementViolation {
            decisions: (a, b),
            schedule: schedule.clone(),
        }));
    }

    if let Some(budget) = limits.solo_check_budget {
        for pid in machine.active() {
            let mut probe = machine.clone();
            if probe.run_solo(pid, budget)?.is_none() {
                return Ok(Some(ExploreOutcome::ObstructionFailure {
                    pid,
                    schedule: schedule.clone(),
                }));
            }
        }
    }

    if schedule.len() >= limits.depth {
        *complete = false;
        return Ok(None);
    }

    for pid in machine.active() {
        let mut next = machine.clone();
        next.step(pid)?;
        schedule.push(pid);
        let out = explore_rec(&next, inputs, limits, seen, schedule, complete)?;
        schedule.pop();
        if out.is_some() {
            return Ok(out);
        }
    }
    Ok(None)
}

/// Valency probe: can the set of all processes still decide `v` from this
/// configuration within `depth` further steps?
///
/// This is the "`P` can decide `v` from `C`" relation of Section 6's covering
/// argument, made executable for small horizons.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn can_decide<Proc: Process>(
    machine: &Machine<Proc>,
    v: u64,
    depth: usize,
) -> Result<bool, SimError> {
    let mut seen = HashSet::new();
    can_decide_rec(machine, v, depth, &mut seen)
}

fn can_decide_rec<Proc: Process>(
    machine: &Machine<Proc>,
    v: u64,
    depth: usize,
    seen: &mut HashSet<Machine<Proc>>,
) -> Result<bool, SimError> {
    if (0..machine.n()).any(|p| machine.decision(p) == Some(v)) {
        return Ok(true);
    }
    if depth == 0 || !seen.insert(machine.clone()) {
        return Ok(false);
    }
    for pid in machine.active() {
        let mut next = machine.clone();
        next.step(pid)?;
        if can_decide_rec(&next, v, depth - 1, seen)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Bivalence probe: can both 0 and 1 still be decided from this
/// configuration? (Within `depth` steps; binary-consensus configurations.)
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn bivalent<Proc: Process>(
    machine: &Machine<Proc>,
    depth: usize,
) -> Result<bool, SimError> {
    Ok(can_decide(machine, 0, depth)? && can_decide(machine, 1, depth)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strawmen::{OneMaxRegister, OneRegister};
    use cbh_core::cas::CasConsensus;
    use cbh_core::intro::{DecMulConsensus, FaaTasConsensus};
    use cbh_core::maxreg::MaxRegConsensus;

    #[test]
    fn cas_is_exhaustively_clean() {
        // CAS consensus terminates in one step per process: the whole space
        // is tiny and completely clean.
        for inputs in [[0u64, 1], [1, 0], [1, 1]] {
            let out = explore(
                &CasConsensus::new(2),
                &inputs,
                ExploreLimits {
                    depth: 10,
                    max_configs: 10_000,
                    solo_check_budget: Some(10),
                },
            )
            .unwrap();
            assert!(matches!(out, ExploreOutcome::Clean { complete: true, .. }), "{out:?}");
        }
    }

    #[test]
    fn faa_tas_is_exhaustively_clean_for_three_processes() {
        for mask in 0..8u64 {
            let inputs: Vec<u64> = (0..3).map(|i| (mask >> i) & 1).collect();
            let out = explore(
                &FaaTasConsensus::new(3),
                &inputs,
                ExploreLimits {
                    depth: 12,
                    max_configs: 100_000,
                    solo_check_budget: Some(12),
                },
            )
            .unwrap();
            assert!(matches!(out, ExploreOutcome::Clean { complete: true, .. }), "{out:?}");
        }
    }

    #[test]
    fn dec_mul_is_exhaustively_clean() {
        for inputs in [[0u64, 1], [1, 0], [0, 0], [1, 1]] {
            let out = explore(
                &DecMulConsensus::new(2),
                &inputs,
                ExploreLimits {
                    depth: 10,
                    max_configs: 10_000,
                    solo_check_budget: Some(10),
                },
            )
            .unwrap();
            assert!(out.is_clean(), "{out:?}");
        }
    }

    #[test]
    fn max_register_protocol_clean_to_depth() {
        // Not complete (the protocol loops under contention) but no violation
        // exists within the horizon.
        let out = explore(
            &MaxRegConsensus::new(2),
            &[0, 1],
            ExploreLimits {
                depth: 18,
                max_configs: 400_000,
                solo_check_budget: None,
            },
        )
        .unwrap();
        assert!(out.is_clean(), "{out:?}");
    }

    #[test]
    fn checker_finds_the_one_max_register_violation() {
        // The exhaustive checker independently rediscovers what the
        // Theorem 4.1 adversary constructs.
        let out = explore(
            &OneMaxRegister::new(),
            &[0, 1],
            ExploreLimits::default(),
        )
        .unwrap();
        match out {
            ExploreOutcome::AgreementViolation { decisions, schedule } => {
                assert_ne!(decisions.0, decisions.1);
                assert!(!schedule.is_empty());
            }
            other => panic!("expected agreement violation, got {other:?}"),
        }
    }

    #[test]
    fn checker_finds_the_one_register_violation() {
        let out = explore(&OneRegister::new(2), &[0, 1], ExploreLimits::default()).unwrap();
        assert!(
            matches!(out, ExploreOutcome::AgreementViolation { .. }),
            "one plain register cannot do 2-process consensus: {out:?}"
        );
    }

    #[test]
    fn valency_probes() {
        // Initially, a 2-process CAS consensus with inputs {0,1} is bivalent.
        let protocol = CasConsensus::new(2);
        let machine = Machine::start(&protocol, &[0, 1]).unwrap();
        assert!(bivalent(&machine, 5).unwrap());
        // After p0's CAS, only 0 can be decided: the configuration is
        // univalent.
        let mut after = machine.clone();
        after.step(0).unwrap();
        assert!(can_decide(&after, 0, 5).unwrap());
        assert!(!can_decide(&after, 1, 5).unwrap());
    }
}
