//! Bounded exhaustive model checking over schedules.
//!
//! For small numbers of processes and bounded horizons, *every* interleaving
//! of a protocol can be explored. The checker walks the configuration graph
//! of a [`Protocol`] breadth-first with an iterative frontier, memoises
//! configurations by their stable 128-bit [fingerprint](Machine::fingerprint)
//! (16 bytes per visited state instead of a deep-cloned `Machine`), and
//! reports:
//!
//! - agreement/validity violations, with a shortest-in-steps schedule (pid
//!   sequence) reconstructed from parent links;
//! - valency information ("can value `v` still be decided from here?") — the
//!   `can decide` relation the paper's covering arguments are built on;
//! - obstruction-freedom failures (a reachable configuration from which some
//!   process's solo run does not decide).
//!
//! The engine is exposed twice: [`explore`] is the plain sequential entry
//! point, and [`Explorer`] adds worker-thread fan-out and an optional
//! process-symmetry reduction. Both produce **identical** outcomes — every
//! order-sensitive decision is made by a sequential committer consuming
//! results in admission order, so the verdict and any counterexample
//! schedule are bit-for-bit the same at any worker count.
//!
//! Since the packed-state refactor, exploration runs on the flat
//! [`cbh_model::PackedState`] representation (see
//! [`crate::packed_engine`]'s module docs for the work-stealing
//! architecture); [`Machine`]s appear only at the edges — the root, solo
//! probes, and counterexample reconstruction. The barrier-synchronised
//! predecessor engine survives as [`crate::legacy`], and the clone-based
//! [`crate::reference`] BFS remains the conformance oracle's ground truth;
//! all three implementations must agree bit for bit.

use crate::packed_engine;
use crate::packed_engine::CheckpointCfg;
use crate::snapshot::{Snapshot, SnapshotError};
use cbh_model::{Action, Fp128Hasher, Process, Protocol};
use cbh_sim::{Machine, SimError, StepUndo};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

/// What the exhaustive exploration found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// No violation within the horizon; `complete` tells whether the whole
    /// reachable space was covered (no depth/size cutoff was hit).
    Clean {
        /// Configurations visited.
        configs: usize,
        /// `true` if exploration exhausted all reachable configurations.
        complete: bool,
    },
    /// Two processes decided differently; the schedule (pid sequence) leads
    /// there from the initial configuration.
    AgreementViolation {
        /// Conflicting decisions.
        decisions: (u64, u64),
        /// The offending schedule.
        schedule: Vec<usize>,
    },
    /// A process decided a value nobody proposed.
    ValidityViolation {
        /// The invalid decision.
        decided: u64,
        /// The offending schedule.
        schedule: Vec<usize>,
    },
    /// A reachable configuration from which `pid`'s solo run failed to decide
    /// within the solo budget.
    ObstructionFailure {
        /// The starved process.
        pid: usize,
        /// Schedule reaching the bad configuration.
        schedule: Vec<usize>,
    },
}

impl ExploreOutcome {
    /// `true` if no violation was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, ExploreOutcome::Clean { .. })
    }

    /// The witness schedule, when the outcome carries one (violations and
    /// obstruction failures do; clean outcomes don't).
    pub fn schedule(&self) -> Option<&[usize]> {
        match self {
            ExploreOutcome::Clean { .. } => None,
            ExploreOutcome::AgreementViolation { schedule, .. }
            | ExploreOutcome::ValidityViolation { schedule, .. }
            | ExploreOutcome::ObstructionFailure { schedule, .. } => Some(schedule),
        }
    }
}

/// Comparable exploration counters, reported for **every** outcome (the
/// `configs` inside [`ExploreOutcome::Clean`] exists only on clean runs).
///
/// The first three fields are the numbers the conformance oracle diffs
/// across independent engines: two backends exploring the same protocol
/// under the same limits must agree on them bit for bit — at any worker
/// count and under any [`ExploreLimits::memory_budget`].
///
/// The remaining fields are **resource telemetry**: they describe how this
/// engine happened to hold the frontier and the seen set (RAM vs spill
/// runs), not the explored space, so they vary across engines, budgets and
/// worker interleavings. They are deliberately **excluded from
/// `PartialEq`/`Eq`** — that is what lets a budgeted run compare
/// bit-identical to an unbounded one while still reporting that it spilled.
#[derive(Debug, Clone, Copy)]
pub struct ExploreStats {
    /// Distinct configurations fingerprinted (including the root, and
    /// including a final over-cap configuration if `max_configs` was hit).
    pub configs: usize,
    /// Largest breadth-first layer held live at once.
    pub frontier_peak: usize,
    /// Breadth-first layers fully expanded before the run ended.
    pub depth_reached: usize,
    /// Encoded bytes the frontier stores and the tiered fingerprint set
    /// wrote to the spill arena (telemetry; `0` on unbounded runs and for
    /// the clone-based reference).
    pub bytes_spilled: u64,
    /// High-water mark of tracked resident bytes — frontier queues, deques,
    /// reorder buffer, seen set and intern tables (telemetry; the figure to
    /// derive a [`ExploreLimits::memory_budget`] from).
    pub peak_resident_bytes: usize,
    /// Resident bytes of the seen set (exact `HashSet` estimate, or the
    /// tiered store's hot table + Bloom + run indexes) when the run ended
    /// (telemetry).
    pub seen_resident_bytes: usize,
    /// Resident bytes of the shared intern tables when the run ended
    /// (telemetry; `0` for the clone-based engines, which intern nothing).
    pub intern_resident_bytes: usize,
    /// Live bytes of evicted fingerprint runs on disk when the run ended
    /// (telemetry; non-zero only when a budget forced the tiered store to
    /// evict).
    pub fpset_disk_bytes: u64,
    /// Total bytes written by checkpoint snapshots during the run
    /// (telemetry; `0` unless checkpointing was enabled).
    pub checkpoint_bytes: u64,
    /// Cumulative wall-clock milliseconds spent writing checkpoint
    /// snapshots (telemetry; the committer is paused while writing, so this
    /// is the run-time cost of the chosen [`ExploreLimits::checkpoint_every`]
    /// cadence).
    pub checkpoint_ms: u64,
    /// Wire frames the distributed coordinator sent plus received
    /// (telemetry; `0` for every single-process engine).
    pub frames_exchanged: u64,
    /// Total encoded bytes of those frames, headers and CRC trailers
    /// included (telemetry; `0` for every single-process engine).
    pub frame_bytes: u64,
}

/// Semantic counters only: the byte-telemetry fields are engine-strategy
/// details and never part of backend conformance.
impl PartialEq for ExploreStats {
    fn eq(&self, other: &Self) -> bool {
        self.configs == other.configs
            && self.frontier_peak == other.frontier_peak
            && self.depth_reached == other.depth_reached
    }
}

impl Eq for ExploreStats {}

/// Exploration limits.
///
/// # Picking limits
///
/// The engine visits each *semantically distinct* configuration once (step
/// counters are excluded from the fingerprint), so the costs to budget for
/// are:
///
/// - **`max_configs`** bounds memory: 16 bytes of fingerprint per visited
///   configuration, plus one live `Machine` per *frontier* entry (the
///   current breadth-first layer only, not the whole history). The default
///   of one million configurations is a few hundred megabytes in the worst
///   frontier-heavy case and explores in seconds.
/// - **`depth`** bounds the schedule length. Terminating protocols stop
///   growing the frontier on their own — a generous depth costs nothing
///   extra once the space is exhausted (`complete: true`). For protocols
///   that loop under contention (max-register rounds, swap laps), reachable
///   states grow with depth, so `depth` is the knob that actually decides
///   runtime; raise it until `max_configs` becomes the binding cutoff.
/// - **`solo_check_budget`** multiplies the per-configuration cost by
///   `n × budget` in the worst case; enable it on small horizons only.
/// - **`memory_budget`** caps the bytes the engines keep resident: the
///   frontier (queued configurations awaiting expansion or in-order
///   commit), the **seen set** (admitted fingerprints route through the
///   tiered store in [`crate::fpset`], which evicts cold fingerprints to
///   sorted on-disk runs once the budget is hit) and the shared intern
///   tables are all charged to one tracker. Past the budget, frontier
///   entries are delta-compressed and spilled to a temp-file arena and
///   streamed back in admission order, and cold fingerprints move to runs
///   probed through a Bloom front — outcomes and the semantic stats are
///   bit-identical at any budget, only wall-clock and
///   `ExploreStats::bytes_spilled` change. The default `None` never spills.
///   To pick a value: run once unbounded, read
///   [`ExploreStats::peak_resident_bytes`], and budget the fraction of it
///   you can afford to keep in RAM (the stress suite runs at 10%); the
///   budget is near-hard — tracked resident bytes stay within it plus a
///   small fixed slack (in-flight double-buffered spill writes, one
///   streamed-back run, bounded merge buffers).
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum schedule length explored.
    pub depth: usize,
    /// Maximum distinct configurations visited before giving up.
    pub max_configs: usize,
    /// If set, every visited configuration is also checked for solo
    /// termination within this many steps (expensive).
    pub solo_check_budget: Option<u64>,
    /// If set, frontier bytes beyond this budget spill to disk (see the
    /// struct docs for how to size it).
    pub memory_budget: Option<usize>,
    /// Admissions between checkpoint snapshots, for runs with a checkpoint
    /// path configured ([`Explorer::checkpoint_to`] or [`explore_resumable`]).
    /// `None` uses [`DEFAULT_CHECKPOINT_EVERY`]. Without a checkpoint path
    /// the cadence is inert — setting it alone never writes anything.
    ///
    /// # Picking a cadence
    ///
    /// A snapshot costs one atomic file write of roughly
    /// `17 × configs-so-far` bytes (16-byte fingerprint plus ~1–3 link bytes
    /// per admitted configuration) plus an fsync, taken while the committer
    /// is paused — so the total checkpoint overhead grows quadratically in
    /// the number of checkpoints taken over a run. The default (65 536
    /// admissions) keeps overhead under a few percent on million-config
    /// explorations while bounding lost work to under a second of re-run;
    /// lower it for expensive-per-step protocols (solo checks enabled),
    /// raise it for raw-throughput deep horizons. Snapshots land only at
    /// admission boundaries, so the cadence never affects outcomes — a
    /// resumed run is bit-identical to an uninterrupted one at any value.
    pub checkpoint_every: Option<u64>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        // Sized for the fingerprint-based frontier engine: the legacy
        // recursive checker defaulted to depth 40 / 200k configurations of
        // deep-cloned machines; fingerprints and inline integer words push
        // the same memory budget past a million configurations. Frontier
        // memory is unbounded by default: spilling is strictly opt-in.
        ExploreLimits {
            depth: 64,
            max_configs: 1_000_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        }
    }
}

/// Checkpoint cadence (in admissions) used when a checkpoint path is
/// configured but [`ExploreLimits::checkpoint_every`] is `None`.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 65_536;

/// Sentinel for "no parent": the initial configuration's link.
pub(crate) const NO_LINK: usize = usize::MAX;

/// One admitted configuration's provenance: (parent link index, pid stepped).
pub(crate) type Link = (usize, usize);

// ---------------------------------------------------------------------------
// Incremental configuration fingerprints.
//
// The explored fingerprint is a Zobrist-style wrapping sum of independent
// 128-bit FNV components: one per (pid, process state, recorded decision),
// one per (location, cell), one for the touched-location count. A step
// changes one process and the cells its op targets, so a successor's
// fingerprint is the parent's, minus the old components, plus the new ones —
// O(step footprint) instead of a full-state hash per edge. In symmetric mode
// the process components drop the pid tag, making the sum invariant under
// process permutation (the multiset of process states is what's hashed).
// ---------------------------------------------------------------------------

fn comp_proc<Proc: Process>(machine: &Machine<Proc>, pid: usize, symmetric: bool) -> u128 {
    let mut h = Fp128Hasher::new();
    h.write_u8(b'p');
    if !symmetric {
        h.write_usize(pid);
    }
    machine.process(pid).hash(&mut h);
    machine.recorded_decision(pid).hash(&mut h);
    h.finish128()
}

fn comp_cell(loc: usize, cell: &cbh_model::CellState) -> u128 {
    let mut h = Fp128Hasher::new();
    h.write_u8(b'c');
    h.write_usize(loc);
    cell.hash(&mut h);
    h.finish128()
}

fn comp_touched(touched: usize) -> u128 {
    let mut h = Fp128Hasher::new();
    h.write_u8(b't');
    h.write_usize(touched);
    h.finish128()
}

/// Full-scan Zobrist digest of a configuration — the engine computes this
/// once for the root and maintains it incrementally along every edge.
///
/// Public so conformance tests can pin the incremental maintenance
/// ([`zobrist_step`]) against a from-scratch re-hash after arbitrary
/// step/undo sequences. Distinct from [`Machine::fingerprint`], which hashes
/// the same semantic state through a different (non-incremental)
/// construction; the reference oracle keys on that one, precisely so the two
/// engines share no hashing code.
pub fn zobrist_fingerprint<Proc: Process>(machine: &Machine<Proc>, symmetric: bool) -> u128 {
    let mut fp = comp_touched(machine.memory().touched());
    for pid in 0..machine.n() {
        fp = fp.wrapping_add(comp_proc(machine, pid, symmetric));
    }
    for loc in 0..machine.memory().len() {
        let cell = machine.memory().cell(loc).expect("loc < len");
        fp = fp.wrapping_add(comp_cell(loc, cell));
    }
    fp
}

/// Steps `machine` by `pid` and returns the successor's Zobrist digest,
/// derived **incrementally** from the parent's `base_fp` (which must be
/// `zobrist_fingerprint(machine, symmetric)` before the call): the parent's
/// per-process and per-cell components for everything the step touches are
/// subtracted and the successor's added, O(step footprint) instead of a full
/// re-hash.
///
/// The returned [`StepUndo`] token reverts the step (after which `base_fp`
/// is the machine's digest again), so callers can walk edges without cloning.
///
/// # Errors
///
/// Exactly those of [`Machine::step_undoable`]; the machine is unchanged on
/// error.
pub fn zobrist_step<Proc: Process>(
    machine: &mut Machine<Proc>,
    pid: usize,
    base_fp: u128,
    symmetric: bool,
) -> Result<(u128, StepUndo<Proc>), SimError> {
    let mut fp = base_fp.wrapping_sub(comp_proc(machine, pid, symmetric));
    let touched_locs = match machine.action(pid) {
        Action::Invoke(op) => op.touches(),
        Action::Decide(_) => Vec::new(),
    };
    let old_len = machine.memory().len();
    let old_touched = machine.memory().touched();
    for &loc in &touched_locs {
        if let Some(cell) = machine.memory().cell(loc) {
            fp = fp.wrapping_sub(comp_cell(loc, cell));
        }
    }
    let (_, undo) = machine.step_undoable(pid)?;
    fp = fp.wrapping_add(comp_proc(machine, pid, symmetric));
    for &loc in &touched_locs {
        if loc < old_len {
            let cell = machine.memory().cell(loc).expect("touched loc exists");
            fp = fp.wrapping_add(comp_cell(loc, cell));
        }
    }
    // Cells the step grew into (unbounded memories) are pure additions.
    for loc in old_len..machine.memory().len() {
        let cell = machine.memory().cell(loc).expect("grown loc exists");
        fp = fp.wrapping_add(comp_cell(loc, cell));
    }
    let new_touched = machine.memory().touched();
    if new_touched != old_touched {
        fp = fp
            .wrapping_sub(comp_touched(old_touched))
            .wrapping_add(comp_touched(new_touched));
    }
    Ok((fp, undo))
}

/// Walks the schedule back through the parent links.
pub(crate) fn schedule_of(links: &[Link], mut link: usize) -> Vec<usize> {
    let mut out = Vec::new();
    while link != NO_LINK {
        let (parent, pid) = links[link];
        out.push(pid);
        link = parent;
    }
    out.reverse();
    out
}

/// A consensus defect detected on one configuration's decision vector,
/// before a counterexample schedule is attached. The distributed explorer
/// classifies defects shard-side (shards hold the states) and lets the
/// coordinator — who holds the provenance links — build the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Defect {
    /// Some process decided a value no process proposed.
    Validity {
        /// The out-of-domain decision.
        decided: u64,
    },
    /// Two processes decided different values.
    Agreement {
        /// The first adjacent disagreeing pair, in pid order.
        a: u64,
        /// Second member of that pair.
        b: u64,
    },
}

impl Defect {
    /// Attaches a counterexample schedule, producing the outcome every
    /// engine reports for this defect.
    pub(crate) fn into_outcome(self, schedule: Vec<usize>) -> ExploreOutcome {
        match self {
            Defect::Validity { decided } => ExploreOutcome::ValidityViolation { decided, schedule },
            Defect::Agreement { a, b } => {
                ExploreOutcome::AgreementViolation { decisions: (a, b), schedule }
            }
        }
    }
}

/// Validity/agreement check on a collected decision vector, mirroring the
/// paper's order: all decisions validated against the inputs first, then
/// pairwise agreement. Shared by every engine (packed, legacy, reference,
/// distributed), so violation selection cannot drift between the backends
/// the conformance oracle diffs.
pub(crate) fn decision_defect(decisions: &[u64], inputs: &[u64]) -> Option<Defect> {
    for &d in decisions {
        if !inputs.contains(&d) {
            return Some(Defect::Validity { decided: d });
        }
    }
    decisions
        .iter()
        .zip(decisions.iter().skip(1))
        .find(|(a, b)| a != b)
        .map(|(&a, &b)| Defect::Agreement { a, b })
}

/// [`decision_defect`] with the counterexample schedule attached from the
/// caller's provenance links.
pub(crate) fn violation_from_decisions(
    decisions: &[u64],
    inputs: &[u64],
    link: usize,
    links: &[Link],
) -> Option<ExploreOutcome> {
    decision_defect(decisions, inputs).map(|d| d.into_outcome(schedule_of(links, link)))
}

/// [`violation_from_decisions`] on a machine's semantic decision vector.
pub(crate) fn decision_violation<Proc: Process>(
    machine: &Machine<Proc>,
    inputs: &[u64],
    link: usize,
    links: &[Link],
) -> Option<ExploreOutcome> {
    let decisions: Vec<u64> = (0..machine.n()).filter_map(|p| machine.decision(p)).collect();
    violation_from_decisions(&decisions, inputs, link, links)
}

/// Exhaustively explores all schedules of `protocol` on `inputs`,
/// single-threaded.
///
/// Equivalent to [`Explorer::new().explore(..)`](Explorer::explore) with one
/// worker and no symmetry reduction, but without the `Send + Sync` bounds on
/// the process type.
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
pub fn explore<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
) -> Result<ExploreOutcome, SimError> {
    explore_stats(protocol, inputs, limits).map(|(outcome, _)| outcome)
}

/// [`explore`], additionally reporting the engine's [`ExploreStats`] — the
/// comparable counters the conformance oracle diffs against independent
/// backends (the stats arrive for violating outcomes too, which the
/// `configs` field of [`ExploreOutcome::Clean`] cannot).
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
pub fn explore_stats<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    packed_engine::explore_packed_seq(protocol, inputs, limits, false)
}

/// Configurable frontier exploration: worker-thread fan-out and optional
/// process-symmetry reduction on top of [`explore`]'s engine.
///
/// Outcomes are **identical at any worker count**, including counterexample
/// schedules: workers only expand configurations speculatively (read-only
/// digest previews plus claimed successor materialisation), and a
/// sequential committer consumes their results in admission order before
/// any stateful decision is made. See [`crate::packed_engine`] for the
/// work-stealing architecture and the determinism argument.
///
/// # Examples
///
/// ```
/// use cbh_verify::checker::{ExploreLimits, Explorer};
/// use cbh_verify::strawmen::OneMaxRegister;
///
/// let explorer = Explorer::new().workers(4);
/// let outcome = explorer.explore(&OneMaxRegister::new(), &[0, 1]).unwrap();
/// assert!(!outcome.is_clean()); // Theorem 4.1: one max-register fails
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    limits: ExploreLimits,
    workers: usize,
    symmetry: bool,
    checkpoint: Option<PathBuf>,
    retain_checkpoints: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            limits: ExploreLimits::default(),
            workers: 1,
            symmetry: false,
            checkpoint: None,
            retain_checkpoints: false,
        }
    }
}

impl Explorer {
    /// Default limits, one worker, no symmetry reduction.
    pub fn new() -> Self {
        Explorer::default()
    }

    /// Replaces the exploration limits.
    pub fn limits(mut self, limits: ExploreLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Caps frontier-resident memory at `budget` bytes (`None`, the default,
    /// never spills). Shorthand for setting
    /// [`ExploreLimits::memory_budget`]; outcomes and semantic stats are
    /// bit-identical at any budget — only wall-clock and the
    /// [`ExploreStats`] spill telemetry change.
    pub fn memory_budget(mut self, budget: Option<usize>) -> Self {
        self.limits.memory_budget = budget;
        self
    }

    /// Number of worker threads expanding each frontier layer. `1` (the
    /// default) stays on the calling thread; the outcome is the same either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Enables the process-symmetry reduction: configurations differing only
    /// by a permutation of process identities are merged. (The engine's
    /// incremental fingerprint drops the pid tag from its per-process
    /// components, making the digest permutation-invariant — the same
    /// quotient [`Machine::fingerprint_symmetric`] computes one-shot.)
    ///
    /// Sound **only for anonymous protocols** — ones whose processes never
    /// consult their pid, such as the paper's Section 8 swap protocol. For
    /// such protocols it cuts the explored space by up to `n!` while
    /// preserving verdicts; counterexample schedules remain genuine
    /// executions of the unreduced machine.
    pub fn symmetry_reduction(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Enables periodic crash-safe checkpoints: every
    /// [`ExploreLimits::checkpoint_every`] admissions (default
    /// [`DEFAULT_CHECKPOINT_EVERY`]) the engine atomically writes a
    /// [`Snapshot`] of its complete logical state to `path`, always at an
    /// admission boundary so the snapshot is a prefix of the deterministic
    /// reference order. A run killed at any point resumes from the last
    /// snapshot ([`Explorer::explore_resumable`]) bit-identically to an
    /// uninterrupted run — at any worker count and memory budget.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Additionally keeps a numbered copy (`<path>.ck0`, `<path>.ck1`, …) of
    /// every snapshot written, instead of each overwriting the last. A test
    /// hook: the kill-at-every-checkpoint matrix resumes from each retained
    /// snapshot in turn. Off by default.
    pub fn retain_checkpoints(mut self, on: bool) -> Self {
        self.retain_checkpoints = on;
        self
    }

    fn checkpoint_cfg<P: Protocol>(&self, protocol: &P) -> Option<CheckpointCfg> {
        self.checkpoint.as_ref().map(|path| CheckpointCfg {
            path: path.clone(),
            every: self.limits.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1),
            retain: self.retain_checkpoints,
            protocol: protocol.name(),
        })
    }

    /// Runs the exhaustive exploration.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] if the protocol steps outside the model.
    pub fn explore<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
    ) -> Result<ExploreOutcome, SimError>
    where
        P::Proc: Send + Sync,
    {
        self.explore_stats(protocol, inputs)
            .map(|(outcome, _)| outcome)
    }

    /// [`Explorer::explore`], additionally reporting [`ExploreStats`]. Like
    /// the outcome, the stats are bit-identical at any worker count.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] if the protocol steps outside the model.
    pub fn explore_stats<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
    ) -> Result<(ExploreOutcome, ExploreStats), SimError>
    where
        P::Proc: Send + Sync,
    {
        packed_engine::explore_packed_par_ckpt(
            protocol,
            inputs,
            self.limits,
            self.symmetry,
            self.workers,
            self.checkpoint_cfg(protocol),
            None,
        )
    }

    /// Resumes an exploration from a previously written [`Snapshot`] and
    /// runs it to its end. The snapshot's identity (protocol, inputs,
    /// semantic limits, symmetry flag) must match this call; the worker
    /// count and memory budget may differ freely — the final
    /// `(ExploreOutcome, ExploreStats)` is bit-identical to an
    /// uninterrupted run either way. Checkpointing continues if a path is
    /// configured.
    ///
    /// # Errors
    ///
    /// [`SimError::Spill`] wrapping the typed [`SnapshotError`] on identity
    /// mismatch, plus everything [`Explorer::explore_stats`] can return.
    pub fn resume_stats<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        snapshot: &Snapshot,
    ) -> Result<(ExploreOutcome, ExploreStats), SimError>
    where
        P::Proc: Send + Sync,
    {
        packed_engine::explore_packed_par_ckpt(
            protocol,
            inputs,
            self.limits,
            self.symmetry,
            self.workers,
            self.checkpoint_cfg(protocol),
            Some(snapshot),
        )
    }

    /// Crash-safe exploration against the configured checkpoint path: if a
    /// valid snapshot exists there, resume from it; otherwise start fresh.
    /// Either way, snapshots keep landing on the
    /// [`ExploreLimits::checkpoint_every`] cadence, so the call can be
    /// killed and re-issued any number of times and still produce the
    /// bit-identical `(ExploreOutcome, ExploreStats)` of one uninterrupted
    /// run.
    ///
    /// A snapshot that exists but is corrupt or belongs to a different
    /// exploration is an **error**, not a silent fresh start — crashes
    /// cannot corrupt a snapshot (writes are atomic), so damage means
    /// something external happened and deserves a decision, not a
    /// multi-hour re-run.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint path was configured
    /// ([`Explorer::checkpoint_to`]) — resuming without one is builder
    /// misuse, like `workers(0)`.
    ///
    /// # Errors
    ///
    /// Everything [`Explorer::explore_stats`] can return, plus
    /// [`SimError::Spill`] wrapping the typed [`SnapshotError`] for an
    /// unusable existing snapshot.
    pub fn explore_resumable<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
    ) -> Result<(ExploreOutcome, ExploreStats), SimError>
    where
        P::Proc: Send + Sync,
    {
        let path = self
            .checkpoint
            .as_ref()
            .expect("explore_resumable requires a checkpoint path (Explorer::checkpoint_to)");
        match Snapshot::read(path) {
            Ok(snapshot) => self.resume_stats(protocol, inputs, &snapshot),
            Err(SnapshotError::Io { kind: std::io::ErrorKind::NotFound, .. }) => {
                self.explore_stats(protocol, inputs)
            }
            Err(e) => Err(packed_engine::snapshot_sim_err(&e)),
        }
    }
}

/// Crash-safe single-threaded exploration: [`Explorer::explore_resumable`]
/// without the `Send + Sync` bounds on the process type — resumes from a
/// valid snapshot at `path` if one exists, starts fresh (checkpointing to
/// `path`) otherwise.
///
/// # Errors
///
/// As [`Explorer::explore_resumable`].
pub fn explore_resumable<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    path: &Path,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    let ckpt = CheckpointCfg {
        path: path.to_path_buf(),
        every: limits.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1),
        retain: false,
        protocol: protocol.name(),
    };
    match Snapshot::read(path) {
        Ok(snapshot) => packed_engine::explore_packed_seq_ckpt(
            protocol,
            inputs,
            limits,
            false,
            Some(ckpt),
            Some(&snapshot),
        ),
        Err(SnapshotError::Io { kind: std::io::ErrorKind::NotFound, .. }) => {
            packed_engine::explore_packed_seq_ckpt(protocol, inputs, limits, false, Some(ckpt), None)
        }
        Err(e) => Err(packed_engine::snapshot_sim_err(&e)),
    }
}

/// Valency probe: can the set of all processes still decide `v` from this
/// configuration within `depth` further steps?
///
/// This is the "`P` can decide `v` from `C`" relation of Section 6's covering
/// argument, made executable for small horizons. Breadth-first with a
/// fingerprint seen-set: each semantically distinct configuration is visited
/// once, at its minimal distance — so unlike a depth-budgeted DFS, a state
/// first reached on a long path can't shadow a short path through it.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn can_decide<Proc: Process>(
    machine: &Machine<Proc>,
    v: u64,
    depth: usize,
) -> Result<bool, SimError> {
    can_decide_stats(machine, v, depth).map(|(decidable, _)| decidable)
}

/// [`can_decide`], additionally reporting how many distinct configurations
/// the probe visited before answering — the comparable counter a conformance
/// oracle diffs against an independent implementation of the same relation.
///
/// The count includes the starting configuration; a `true` answer reports the
/// configurations visited up to (not including) the deciding successor, so
/// equal-probe comparisons must compare counts only alongside equal answers.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn can_decide_stats<Proc: Process>(
    machine: &Machine<Proc>,
    v: u64,
    depth: usize,
) -> Result<(bool, usize), SimError> {
    // Packed BFS: the probe branches at every edge, so the flat clone is
    // where the packed representation pays off hardest. The seen-set keys on
    // the packed digest, which partitions configurations exactly like
    // `Machine::fingerprint` — so the visited counts the conformance oracle
    // compares are unchanged by the representation swap.
    let ctx = machine.packed_ctx();
    let root = machine.pack(&ctx);
    // A probe-local intern cache: the branch-at-every-edge loop below reads
    // the same entries over and over, and this context is private to the
    // probe, so the shard locks are pure overhead.
    let mut cache = cbh_model::PackedCache::new();
    let decides = |cache: &mut cbh_model::PackedCache<Proc>, s: &cbh_model::PackedState| {
        (0..s.n()).any(|p| ctx.decision_cached(cache, s, p) == Some(v))
    };
    if decides(&mut cache, &root) {
        return Ok((true, 1));
    }
    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(ctx.digest_cached(&mut cache, &root, false));
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::new();
        for s in &frontier {
            for pid in (0..s.n()).filter(|&p| ctx.is_active(s, p)) {
                let child = ctx.branch_step_cached(&mut cache, s, pid).map_err(|source| {
                    SimError::Model {
                        pid,
                        step: s.steps(),
                        source,
                    }
                })?;
                if decides(&mut cache, &child) {
                    return Ok((true, seen.len()));
                }
                if seen.insert(ctx.digest_cached(&mut cache, &child, false)) {
                    next.push(child);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok((false, seen.len()))
}

/// Bivalence probe: can both 0 and 1 still be decided from this
/// configuration? (Within `depth` steps; binary-consensus configurations.)
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn bivalent<Proc: Process>(
    machine: &Machine<Proc>,
    depth: usize,
) -> Result<bool, SimError> {
    Ok(can_decide(machine, 0, depth)? && can_decide(machine, 1, depth)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strawmen::{OneMaxRegister, OneRegister};
    use cbh_core::cas::CasConsensus;
    use cbh_core::intro::{DecMulConsensus, FaaTasConsensus};
    use cbh_core::maxreg::MaxRegConsensus;

    #[test]
    fn cas_is_exhaustively_clean() {
        // CAS consensus terminates in one step per process: the whole space
        // is tiny and completely clean.
        for inputs in [[0u64, 1], [1, 0], [1, 1]] {
            let out = explore(
                &CasConsensus::new(2),
                &inputs,
                ExploreLimits {
                    depth: 10,
                    max_configs: 10_000,
                    solo_check_budget: Some(10),
                    memory_budget: None,
                    checkpoint_every: None,
                },
            )
            .unwrap();
            assert!(matches!(out, ExploreOutcome::Clean { complete: true, .. }), "{out:?}");
        }
    }

    #[test]
    fn faa_tas_is_exhaustively_clean_for_three_processes() {
        for mask in 0..8u64 {
            let inputs: Vec<u64> = (0..3).map(|i| (mask >> i) & 1).collect();
            let out = explore(
                &FaaTasConsensus::new(3),
                &inputs,
                ExploreLimits {
                    depth: 12,
                    max_configs: 100_000,
                    solo_check_budget: Some(12),
                    memory_budget: None,
                    checkpoint_every: None,
                },
            )
            .unwrap();
            assert!(matches!(out, ExploreOutcome::Clean { complete: true, .. }), "{out:?}");
        }
    }

    #[test]
    fn dec_mul_is_exhaustively_clean() {
        for inputs in [[0u64, 1], [1, 0], [0, 0], [1, 1]] {
            let out = explore(
                &DecMulConsensus::new(2),
                &inputs,
                ExploreLimits {
                    depth: 10,
                    max_configs: 10_000,
                    solo_check_budget: Some(10),
                    memory_budget: None,
                    checkpoint_every: None,
                },
            )
            .unwrap();
            assert!(out.is_clean(), "{out:?}");
        }
    }

    #[test]
    fn max_register_protocol_clean_to_depth() {
        // Not complete (the protocol loops under contention) but no violation
        // exists within the horizon.
        let out = explore(
            &MaxRegConsensus::new(2),
            &[0, 1],
            ExploreLimits {
                depth: 18,
                max_configs: 400_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        )
        .unwrap();
        assert!(out.is_clean(), "{out:?}");
    }

    #[test]
    fn checker_finds_the_one_max_register_violation() {
        // The exhaustive checker independently rediscovers what the
        // Theorem 4.1 adversary constructs.
        let out = explore(
            &OneMaxRegister::new(),
            &[0, 1],
            ExploreLimits::default(),
        )
        .unwrap();
        match out {
            ExploreOutcome::AgreementViolation { decisions, schedule } => {
                assert_ne!(decisions.0, decisions.1);
                assert!(!schedule.is_empty());
            }
            other => panic!("expected agreement violation, got {other:?}"),
        }
    }

    #[test]
    fn checker_finds_the_one_register_violation() {
        let out = explore(&OneRegister::new(2), &[0, 1], ExploreLimits::default()).unwrap();
        assert!(
            matches!(out, ExploreOutcome::AgreementViolation { .. }),
            "one plain register cannot do 2-process consensus: {out:?}"
        );
    }

    #[test]
    fn counterexample_schedules_replay_to_the_violation() {
        // The reconstructed parent-link schedule is a genuine execution: replay
        // it step by step and watch the disagreement appear.
        let out = explore(&OneRegister::new(2), &[0, 1], ExploreLimits::default()).unwrap();
        let ExploreOutcome::AgreementViolation { decisions, schedule } = out else {
            panic!("expected agreement violation");
        };
        let mut machine = Machine::start(&OneRegister::new(2), &[0, 1]).unwrap();
        for &pid in &schedule {
            machine.step(pid).unwrap();
        }
        let seen: Vec<u64> = (0..machine.n()).filter_map(|p| machine.decision(p)).collect();
        assert!(seen.contains(&decisions.0) && seen.contains(&decisions.1), "{seen:?}");
    }

    #[test]
    fn explorer_outcome_is_invariant_under_worker_count() {
        for (clean, limits) in [
            (false, ExploreLimits::default()),
            (
                true,
                ExploreLimits {
                    depth: 12,
                    max_configs: 100_000,
                    solo_check_budget: Some(12),
                    memory_budget: None,
                    checkpoint_every: None,
                },
            ),
        ] {
            let run = |workers| {
                let explorer = Explorer::new().workers(workers).limits(limits);
                if clean {
                    explorer.explore(&CasConsensus::new(3), &[0, 1, 2]).unwrap()
                } else {
                    explorer.explore(&OneMaxRegister::new(), &[0, 1]).unwrap()
                }
            };
            let reference = run(1);
            assert_eq!(reference.is_clean(), clean);
            for workers in [2, 3, 8] {
                assert_eq!(run(workers), reference, "workers={workers}");
            }
        }
    }

    #[test]
    fn symmetry_reduction_shrinks_anonymous_state_spaces() {
        // MaxRegConsensus processes never consult their pid, so with
        // duplicated inputs the state graph has genuine process-permutation
        // orbits: the quotiented space must be strictly smaller and reach
        // the same verdict.
        let limits = ExploreLimits {
            depth: 10,
            max_configs: 500_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        };
        let protocol = MaxRegConsensus::new(3);
        let inputs = [0, 0, 1];
        let plain = Explorer::new().limits(limits).explore(&protocol, &inputs).unwrap();
        let reduced = Explorer::new()
            .limits(limits)
            .symmetry_reduction(true)
            .explore(&protocol, &inputs)
            .unwrap();
        let (ExploreOutcome::Clean { configs: full, .. }, ExploreOutcome::Clean { configs: quotiented, .. }) =
            (&plain, &reduced)
        else {
            panic!("expected clean outcomes, got {plain:?} / {reduced:?}");
        };
        assert!(quotiented < full, "symmetry reduction must merge states: {quotiented} vs {full}");
    }

    #[test]
    fn engine_counts_match_a_reference_clone_based_search() {
        // Ground truth: a naive BFS that stores whole machines keyed by
        // semantic state. The incremental-fingerprint engine must visit
        // exactly the same number of distinct configurations — this is the
        // guard against both fingerprint aliasing (undercount) and stale
        // incremental updates (over- or undercount).
        use std::collections::HashMap;
        let protocol = MaxRegConsensus::new(3);
        let inputs = [0u64, 1, 2];
        let depth = 8;
        let root = Machine::start(&protocol, &inputs).unwrap();
        let mut seen: HashMap<u128, Machine<_>> = HashMap::new();
        seen.insert(root.fingerprint(), root.clone());
        let mut frontier = vec![root];
        for _ in 0..depth {
            let mut next = Vec::new();
            for m in &frontier {
                for pid in m.active() {
                    let child = m.branch_step(pid).unwrap();
                    if let Some(prev) = seen.get(&child.fingerprint()) {
                        assert_eq!(prev.memory(), child.memory(), "fingerprint collision");
                    } else {
                        seen.insert(child.fingerprint(), child.clone());
                        next.push(child);
                    }
                }
            }
            frontier = next;
        }
        let out = explore(
            &protocol,
            &inputs,
            ExploreLimits {
                depth,
                max_configs: 1_000_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        )
        .unwrap();
        let ExploreOutcome::Clean { configs, .. } = out else {
            panic!("expected clean, got {out:?}");
        };
        assert_eq!(configs, seen.len());
    }

    #[test]
    fn valency_probes() {
        // Initially, a 2-process CAS consensus with inputs {0,1} is bivalent.
        let protocol = CasConsensus::new(2);
        let machine = Machine::start(&protocol, &[0, 1]).unwrap();
        assert!(bivalent(&machine, 5).unwrap());
        // After p0's CAS, only 0 can be decided: the configuration is
        // univalent.
        let mut after = machine.clone();
        after.step(0).unwrap();
        assert!(can_decide(&after, 0, 5).unwrap());
        assert!(!can_decide(&after, 1, 5).unwrap());
    }
}
