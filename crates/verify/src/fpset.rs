//! Tiered fingerprint store: the budgeted replacement for the unbounded
//! seen-`HashSet`.
//!
//! A [`FpSet`] answers exactly one question — "has this 128-bit fingerprint
//! been admitted before?" — with **exact** membership semantics, while
//! keeping its RAM footprint inside the run's shared
//! [`memory budget`](crate::ExploreLimits::memory_budget). Three tiers:
//!
//! 1. A **Bloom front** sized from the expected config count. A miss proves
//!    the fingerprint is new (no bits can un-set), so the common case on the
//!    admission path — a genuinely new configuration — costs four bit
//!    probes and never touches the lower tiers.
//! 2. A **hot table** of open-addressed `u128` slots with per-entry
//!    insertion generations (the [`crate::claim::ClaimTable`] slot layout,
//!    minus the atomics — the committer owns admission). It grows by
//!    doubling while the shared tracker has budget headroom; once the
//!    budget is hit it stays fixed and **evicts its oldest generations** to
//!    disk instead. BFS duplicate edges overwhelmingly point at recent
//!    layers, so the recency window keeps most duplicate probes in RAM.
//! 3. Immutable **sorted runs** of raw little-endian `u128`s in the
//!    self-deleting [`SpillArena`](crate::frontier), each with a sparse
//!    in-RAM index (one fingerprint per 4 KiB block). A probe binary-searches
//!    the index, reads one block — through a small LRU block cache — and
//!    binary-searches the block. When [`MAX_RUNS`] pile up they are k-way
//!    merged into one run with bounded buffers.
//!
//! A Bloom false positive therefore costs at most one hot probe plus one
//! disk block read; it can never flip an admission decision, so the
//! committer's answer sequence — and with it the admission order and the
//! whole bit-identical-to-`reference_explore` argument — is byte-for-byte
//! the sequence the plain `HashSet` would have produced.
//!
//! # Run wire format
//!
//! A run is `count` fingerprints as raw 16-byte little-endian words,
//! strictly increasing. No header: the in-RAM [`Run`] record carries the
//! segment offsets and count, and [`decode_run`] validates length and
//! ordering when bytes are read back. Compacted runs are written in 4096-
//! fingerprint segments (64 KiB appends) so merge output interleaves with
//! the double-buffered writer without ever buffering the merged run in RAM.

use std::collections::HashSet;
use std::sync::Mutex;

use crate::claim::ClaimTable;
use crate::frontier::{MemTracker, SpillContext, SpillError};

/// Fingerprints per sparse-index block: 256 × 16 bytes = one 4 KiB read.
const BLOCK_FPS: usize = 256;
/// Fingerprints per compaction output segment (one 64 KiB append). A
/// multiple of [`BLOCK_FPS`], so no index block straddles two segments.
const SEG_FPS: usize = 4096;
/// Compact when this many runs accumulate.
const MAX_RUNS: usize = 8;
/// Largest *starting* hot-table allocation: 512 slots ≈ 10 KiB. Budgeted
/// stores start at their share (never below 64 slots) and grow from there;
/// unbudgeted stores start here and double freely.
const MIN_SLOTS: usize = 512;
/// Hot-table fill limit, in tenths (6 = grow/evict beyond 60% occupancy).
const FILL_TENTHS: usize = 6;
/// Most generations one eviction moves to a single run: bounds both the
/// sort buffer (1 MiB) and the write handed to the double-buffered arena.
const EVICT_MAX: usize = 1 << 16;
/// Most cached run blocks (LRU): 8 × 4 KiB. Budgeted stores keep far fewer
/// (an eighth of their share, at least 1). Duplicate probes into evicted
/// territory cluster heavily (BFS diamonds), so a handful of blocks absorbs
/// most repeat reads.
const CACHE_BLOCKS: usize = 8;
/// Estimated resident bytes per `HashSet<u128>` entry (payload + table
/// slack at typical load factors) — the exact backend's accounting rate.
pub(crate) const SEEN_ENTRY_EST: usize = 24;

/// Decodes one run (or run block) back from its wire bytes, validating the
/// format: a whole number of 16-byte little-endian fingerprints in strictly
/// increasing order.
///
/// # Errors
///
/// [`SpillError::Corrupt`] on a truncated (non-multiple-of-16) length or an
/// ordering violation — the typed error surface for damaged spill files.
pub fn decode_run(bytes: &[u8]) -> Result<Vec<u128>, SpillError> {
    if !bytes.len().is_multiple_of(16) {
        return Err(SpillError::Corrupt {
            detail: format!("run length {} is not a multiple of 16", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        out.push(u128::from_le_bytes(chunk.try_into().expect("16-byte chunk")));
    }
    if !out.windows(2).all(|w| w[0] < w[1]) {
        return Err(SpillError::Corrupt {
            detail: "fingerprint run is not strictly increasing".into(),
        });
    }
    Ok(out)
}

fn encode_run(fps: &[u128]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(fps.len() * 16);
    for fp in fps {
        bytes.extend_from_slice(&fp.to_le_bytes());
    }
    bytes
}

/// Folds a 128-bit fingerprint to the hot table's home-slot hash.
/// Fingerprints are already avalanched, so xor-folding the halves is enough.
fn fold(fp: u128) -> usize {
    ((fp >> 64) as u64 ^ fp as u64) as usize
}

// ---------------------------------------------------------------------------
// Sorted runs
// ---------------------------------------------------------------------------

/// One contiguous byte range of a run: fingerprints
/// `[start_fp, start_fp + count)` live at `offset` in the arena.
struct Segment {
    offset: u64,
    start_fp: usize,
    count: usize,
}

/// One immutable sorted run on disk plus its in-RAM sparse index.
struct Run {
    segments: Vec<Segment>,
    count: usize,
    /// `fps[0]`, `fps[256]`, `fps[512]`, … — one per block.
    index: Vec<u128>,
    last: u128,
}

impl Run {
    /// The block (index position) that could contain `fp`, or `None` if the
    /// run's range excludes it.
    fn block_of(&self, fp: u128) -> Option<usize> {
        if self.index.first().is_none_or(|&first| fp < first) || fp > self.last {
            return None;
        }
        Some(self.index.partition_point(|&b| b <= fp) - 1)
    }

    /// Arena offset and fingerprint count of block `block`.
    fn block_span(&self, block: usize) -> (u64, usize) {
        let start = block * BLOCK_FPS;
        let count = BLOCK_FPS.min(self.count - start);
        let seg_at = self.segments.partition_point(|s| s.start_fp <= start) - 1;
        let seg = &self.segments[seg_at];
        debug_assert!(start - seg.start_fp + count <= seg.count, "block straddles segments");
        (seg.offset + ((start - seg.start_fp) * 16) as u64, count)
    }

    fn resident_bytes(&self) -> usize {
        self.index.len() * 16 + self.segments.len() * std::mem::size_of::<Segment>() + 64
    }

    fn disk_bytes(&self) -> u64 {
        (self.count * 16) as u64
    }
}

/// Builds a [`Run`] record from sorted fingerprint positions as a writer
/// streams them out.
struct RunBuilder {
    segments: Vec<Segment>,
    index: Vec<u128>,
    count: usize,
    last: u128,
}

impl RunBuilder {
    fn new() -> Self {
        RunBuilder {
            segments: Vec::new(),
            index: Vec::new(),
            count: 0,
            last: 0,
        }
    }

    /// Records `fps` written at `offset` as the run's next segment.
    fn push_segment(&mut self, offset: u64, fps: &[u128]) {
        self.segments.push(Segment {
            offset,
            start_fp: self.count,
            count: fps.len(),
        });
        for &fp in fps {
            if self.count.is_multiple_of(BLOCK_FPS) {
                self.index.push(fp);
            }
            self.count += 1;
            self.last = fp;
        }
    }

    fn finish(self) -> Run {
        Run {
            segments: self.segments,
            count: self.count,
            index: self.index,
            last: self.last,
        }
    }
}

/// Streams one existing run back during compaction, one block-sized refill
/// at a time (bounded memory regardless of run size).
struct RunReader {
    run: Run,
    pos: usize,
    buf: Vec<u128>,
    buf_at: usize,
}

impl RunReader {
    fn new(run: Run) -> Self {
        RunReader {
            run,
            pos: 0,
            buf: Vec::new(),
            buf_at: 0,
        }
    }

    /// The reader's current head fingerprint, refilling from disk as needed.
    fn head(&mut self, ctx: &SpillContext) -> Result<Option<u128>, SpillError> {
        if self.buf_at == self.buf.len() {
            if self.pos == self.run.count {
                return Ok(None);
            }
            let block = self.pos / BLOCK_FPS;
            let (offset, count) = self.run.block_span(block);
            self.buf = decode_run(&ctx.arena().read(offset, count * 16)?)?;
            self.buf_at = 0;
        }
        Ok(Some(self.buf[self.buf_at]))
    }

    fn advance(&mut self) {
        self.buf_at += 1;
        self.pos += 1;
    }
}

// ---------------------------------------------------------------------------
// Block cache
// ---------------------------------------------------------------------------

/// A tiny LRU of decoded run blocks keyed by arena offset. Duplicate
/// admissions that fall into evicted territory re-probe the same few blocks
/// (sibling edges land near each other), so even [`CACHE_BLOCKS`] entries
/// turn most disk probes into RAM probes.
struct BlockCache {
    entries: Vec<(u64, u64, Vec<u128>)>,
    tick: u64,
    bytes: usize,
    /// Cached-block limit, derived from the store's budget share.
    max_blocks: usize,
}

impl BlockCache {
    fn new(max_blocks: usize) -> Self {
        BlockCache {
            entries: Vec::new(),
            tick: 0,
            bytes: 0,
            max_blocks,
        }
    }

    fn get(&mut self, key: u64) -> Option<&[u128]> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|(k, _, _)| *k == key).map(
            |(_, last_used, fps)| {
                *last_used = tick;
                fps.as_slice()
            },
        )
    }

    fn insert(&mut self, key: u64, fps: Vec<u128>) {
        self.tick += 1;
        self.bytes += fps.len() * 16;
        if self.entries.len() >= self.max_blocks {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t, _))| *t)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            let (_, _, evicted) = self.entries.swap_remove(oldest);
            self.bytes -= evicted.len() * 16;
        }
        self.entries.push((key, self.tick, fps));
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

// ---------------------------------------------------------------------------
// FpSet
// ---------------------------------------------------------------------------

struct Inner {
    /// This store's own budget share in bytes (`usize::MAX` when
    /// unbudgeted): the local cap its Bloom front, hot table and caches are
    /// sized against. Local, not global: the frontier's transient pressure
    /// must not be able to pin the hot table at its floor.
    cap_bytes: usize,
    /// Compact when this many runs accumulate — smaller for small shares,
    /// where per-probe run fan-out costs more than re-merging tiny runs.
    runs_max: usize,
    /// Bloom front: bit i set ⇒ some admitted fp hashed to i.
    bloom: Vec<u64>,
    /// Mask over the Bloom *bit* count (a power of two).
    bloom_mask: usize,
    /// Hot table slots; 0 = empty (the fingerprint 0 itself is tracked by
    /// `zero_seen`).
    slots: Vec<u128>,
    /// Insertion generation of each occupied slot. Generations are assigned
    /// densely, and evictions always take the oldest contiguous window, so
    /// the resident generations are exactly `[oldest_gen, next_gen)`.
    gens: Vec<u32>,
    occupied: usize,
    next_gen: u32,
    oldest_gen: u32,
    zero_seen: bool,
    len: usize,
    runs: Vec<Run>,
    cache: BlockCache,
    /// Bytes currently charged to the shared tracker for this set.
    charged: usize,
}

impl Inner {
    fn resident_estimate(&self) -> usize {
        self.slots.len() * 16
            + self.gens.len() * 4
            + self.bloom.len() * 8
            + self.runs.iter().map(Run::resident_bytes).sum::<usize>()
            + self.cache.bytes
    }

    /// Re-syncs the shared tracker with this set's current footprint.
    fn recharge(&mut self, tracker: &MemTracker) {
        let now = self.resident_estimate();
        if now > self.charged {
            tracker.add_resident(now - self.charged);
        } else {
            tracker.sub_resident(self.charged - now);
        }
        self.charged = now;
    }

    fn bloom_indices(&self, fp: u128) -> [usize; 4] {
        // Four independent 32-bit lanes of an already-avalanched hash.
        [
            (fp as u32) as usize & self.bloom_mask,
            ((fp >> 32) as u32) as usize & self.bloom_mask,
            ((fp >> 64) as u32) as usize & self.bloom_mask,
            ((fp >> 96) as u32) as usize & self.bloom_mask,
        ]
    }

    fn bloom_set(&mut self, fp: u128) {
        for i in self.bloom_indices(fp) {
            self.bloom[i / 64] |= 1 << (i % 64);
        }
    }

    fn bloom_maybe(&self, fp: u128) -> bool {
        self.bloom_indices(fp)
            .iter()
            .all(|&i| self.bloom[i / 64] & (1 << (i % 64)) != 0)
    }

    fn hot_contains(&self, fp: u128) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = fold(fp) & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                return false;
            }
            if slot == fp {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a fingerprint known to be absent. The caller has ensured
    /// occupancy headroom.
    fn hot_insert(&mut self, fp: u128) {
        let mask = self.slots.len() - 1;
        let mut i = fold(fp) & mask;
        while self.slots[i] != 0 {
            debug_assert_ne!(self.slots[i], fp, "insert of a present fingerprint");
            i = (i + 1) & mask;
        }
        self.slots[i] = fp;
        self.gens[i] = self.next_gen;
        self.next_gen += 1;
        self.occupied += 1;
    }

    /// Removes the entry at slot `i` with backward-shift deletion, keeping
    /// linear-probe chains intact without tombstones or a rebuild.
    fn hot_remove_slot(&mut self, mut i: usize) {
        let mask = self.slots.len() - 1;
        loop {
            self.slots[i] = 0;
            let mut j = i;
            loop {
                j = (j + 1) & mask;
                if self.slots[j] == 0 {
                    self.occupied -= 1;
                    return;
                }
                let home = fold(self.slots[j]) & mask;
                // `j`'s entry may fill the hole iff its home lies outside
                // the cyclic range (i, j] — otherwise moving it would break
                // its own probe chain.
                let in_range = if i < j {
                    home > i && home <= j
                } else {
                    home > i || home <= j
                };
                if !in_range {
                    self.slots[i] = self.slots[j];
                    self.gens[i] = self.gens[j];
                    break;
                }
            }
            i = j;
        }
    }

    fn hot_remove(&mut self, fp: u128) {
        let mask = self.slots.len() - 1;
        let mut i = fold(fp) & mask;
        while self.slots[i] != fp {
            debug_assert_ne!(self.slots[i], 0, "remove of an absent fingerprint");
            i = (i + 1) & mask;
        }
        self.hot_remove_slot(i);
    }

    /// `true` if doubling the hot table keeps this store inside its own
    /// budget share (growth is checked before it happens, so the tracked
    /// peak never overshoots by the new allocation). The block cache is
    /// excluded: it is bounded on its own and recycles hot probe blocks —
    /// letting its transient contents veto table growth would trade exact
    /// capacity for cache of what that capacity would have kept exact.
    fn can_grow(&self) -> bool {
        // Doubling adds `slots.len()` new slots (16 B) + gens (4 B).
        self.cap_bytes == usize::MAX
            || self.resident_estimate() - self.cache.bytes + self.slots.len() * 20
                <= self.cap_bytes
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_len]);
        let old_gens = std::mem::replace(&mut self.gens, vec![0; new_len]);
        let mask = new_len - 1;
        for (fp, gen) in old_slots.into_iter().zip(old_gens) {
            if fp == 0 {
                continue;
            }
            let mut i = fold(fp) & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = fp;
            self.gens[i] = gen;
        }
    }

    /// Moves the oldest generation window out of the hot table into a fresh
    /// sorted run.
    fn evict_window(&mut self, ctx: &SpillContext) -> Result<(), SpillError> {
        if self.occupied == 0 {
            return Ok(());
        }
        let window = (self.occupied / 2).clamp(1, EVICT_MAX) as u32;
        let hi = self.oldest_gen + window;
        let mut fps: Vec<u128> = self
            .slots
            .iter()
            .zip(&self.gens)
            .filter(|&(&fp, &gen)| fp != 0 && gen < hi)
            .map(|(&fp, _)| fp)
            .collect();
        debug_assert_eq!(fps.len(), window as usize, "generations must be dense");
        for &fp in &fps {
            self.hot_remove(fp);
        }
        self.oldest_gen = hi;
        fps.sort_unstable();
        let bytes = encode_run(&fps);
        let byte_len = bytes.len() as u64;
        let offset = ctx.arena().append(bytes)?;
        ctx.tracker().add_spilled(byte_len);
        let mut builder = RunBuilder::new();
        builder.push_segment(offset, &fps);
        self.runs.push(builder.finish());
        Ok(())
    }

    /// Probes the sorted runs for `fp` (newest first: recently evicted
    /// fingerprints are the likeliest duplicate targets).
    fn runs_contain(&mut self, fp: u128, ctx: &SpillContext) -> Result<bool, SpillError> {
        for at in (0..self.runs.len()).rev() {
            let Some(block) = self.runs[at].block_of(fp) else {
                continue;
            };
            let (offset, count) = self.runs[at].block_span(block);
            if let Some(fps) = self.cache.get(offset) {
                if fps.binary_search(&fp).is_ok() {
                    return Ok(true);
                }
                continue;
            }
            let fps = decode_run(&ctx.arena().read(offset, count * 16)?)?;
            let hit = fps.binary_search(&fp).is_ok();
            self.cache.insert(offset, fps);
            if hit {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// K-way merges every run into one, streaming with bounded buffers.
    /// Admitted fingerprints appear in exactly one tier, so the inputs are
    /// disjoint and the merge is a pure interleave.
    fn compact(&mut self, ctx: &SpillContext) -> Result<(), SpillError> {
        if self.runs.len() < 2 {
            return Ok(());
        }
        let mut readers: Vec<RunReader> =
            self.runs.drain(..).map(RunReader::new).collect();
        // The old runs' blocks die with the merge; their cached copies too.
        self.cache.clear();
        let mut builder = RunBuilder::new();
        let mut out: Vec<u128> = Vec::with_capacity(SEG_FPS);
        loop {
            let mut min: Option<(usize, u128)> = None;
            for (at, reader) in readers.iter_mut().enumerate() {
                if let Some(head) = reader.head(ctx)? {
                    if min.is_none_or(|(_, m)| head < m) {
                        min = Some((at, head));
                    }
                }
            }
            let Some((at, fp)) = min else { break };
            readers[at].advance();
            out.push(fp);
            if out.len() == SEG_FPS {
                let bytes = encode_run(&out);
                let byte_len = bytes.len() as u64;
                let offset = ctx.arena().append(bytes)?;
                ctx.tracker().add_spilled(byte_len);
                builder.push_segment(offset, &out);
                out.clear();
            }
        }
        if !out.is_empty() {
            let bytes = encode_run(&out);
            let byte_len = bytes.len() as u64;
            let offset = ctx.arena().append(bytes)?;
            ctx.tracker().add_spilled(byte_len);
            builder.push_segment(offset, &out);
        }
        if builder.count > 0 {
            self.runs.push(builder.finish());
        }
        Ok(())
    }
}

/// The tiered fingerprint store (see the module docs).
///
/// Interior-mutable behind one mutex: the committer is the only admission
/// writer so the lock is uncontended on the hot path, and shared `&FpSet`
/// probes from racing threads (the property tests) linearize safely.
pub struct FpSet {
    ctx: SpillContext,
    inner: Mutex<Inner>,
}

impl FpSet {
    /// An empty store expecting up to `expected` distinct fingerprints,
    /// drawing budget, accounting and spill space from `ctx`.
    pub fn new(expected: usize, ctx: SpillContext) -> Self {
        // The store's budget share: a quarter of the run-wide budget (the
        // frontier needs the rest), floored at 16 KiB — a hot table too
        // small to hold the working BFS layers turns every duplicate edge
        // into a disk probe, so the floor (covered by the documented budget
        // slack) keeps pathologically tiny budgets functional.
        let cap_bytes = match ctx.budget() {
            None => usize::MAX,
            Some(b) => (b / 4).max(16 * 1024),
        };
        // Bloom target: ~10 bits per expected fingerprint (≈1% false
        // positives at full load), a power of two, at most a quarter of the
        // budget share in bytes (`cap × 2` bits, rounded *down* to a power
        // of two) — the hot table repays those bytes better than a sharper
        // front does, since every hot hit skips the run tiers entirely.
        let want_bits = (expected.max(1024).saturating_mul(10)).next_power_of_two();
        let max_bits = match cap_bytes.checked_mul(2) {
            Some(b) => (1usize << (usize::BITS - 1 - b.leading_zeros())).max(2048),
            None => want_bits,
        };
        let bits = want_bits.clamp(2048, max_bits);
        // Hot table start: half the remaining share at 20 B/slot, within
        // [64, MIN_SLOTS]; `can_grow` takes it up from there while the share
        // lasts.
        let slots = if cap_bytes == usize::MAX {
            MIN_SLOTS
        } else {
            (cap_bytes / 40).next_power_of_two().clamp(64, MIN_SLOTS)
        };
        let runs_max = if cap_bytes == usize::MAX {
            MAX_RUNS
        } else {
            (cap_bytes / 8192).clamp(2, MAX_RUNS)
        };
        let mut inner = Inner {
            cap_bytes,
            runs_max,
            bloom: vec![0; bits / 64],
            bloom_mask: bits - 1,
            slots: vec![0; slots],
            gens: vec![0; slots],
            occupied: 0,
            next_gen: 0,
            oldest_gen: 0,
            zero_seen: false,
            len: 0,
            runs: Vec::new(),
            // The cache is charged to the run's tracker (it *is* resident
            // memory), so every block it holds is frontier headroom lost —
            // and repeat probes cluster so tightly that a block or two
            // absorbs nearly all of them. Size it stingily: an eighth of the
            // share at most, not the frontier's spill budget.
            cache: BlockCache::new(if cap_bytes == usize::MAX {
                CACHE_BLOCKS
            } else {
                (cap_bytes / 16384).clamp(1, CACHE_BLOCKS)
            }),
            charged: 0,
        };
        inner.recharge(ctx.tracker());
        FpSet {
            ctx,
            inner: Mutex::new(inner),
        }
    }

    /// Admits `fp`: returns `true` (and records it) if it was never admitted
    /// before — exactly `HashSet::insert`.
    ///
    /// # Errors
    ///
    /// Propagates typed [`SpillError`]s from eviction, compaction or run
    /// probes. No admission decision is ever derived from a failed IO path.
    pub fn admit(&self, fp: u128) -> Result<bool, SpillError> {
        let mut inner = self.inner.lock().unwrap();
        if fp == 0 {
            let new = !inner.zero_seen;
            inner.zero_seen = true;
            inner.len += new as usize;
            return Ok(new);
        }
        if inner.bloom_maybe(fp) {
            // Possible duplicate: confirm against the exact tiers.
            if inner.hot_contains(fp) {
                return Ok(false);
            }
            if !inner.runs.is_empty() {
                let dup = inner.runs_contain(fp, &self.ctx)?;
                // The probe may have pulled blocks into the cache.
                inner.recharge(self.ctx.tracker());
                if dup {
                    return Ok(false);
                }
            }
        }
        inner.bloom_set(fp);
        if (inner.occupied + 1) * 10 > inner.slots.len() * FILL_TENTHS {
            if inner.can_grow() {
                inner.grow();
            } else {
                inner.evict_window(&self.ctx)?;
                if inner.runs.len() >= inner.runs_max {
                    inner.compact(&self.ctx)?;
                }
            }
            inner.recharge(self.ctx.tracker());
        }
        // A plain insert lands in preallocated slots: the resident estimate
        // is unchanged, so the tracker re-sync above only runs on the paths
        // that actually move bytes (growth, eviction, compaction, cache
        // fills) instead of on every admission.
        inner.hot_insert(fp);
        inner.len += 1;
        Ok(true)
    }

    /// Exact membership probe without admission.
    ///
    /// # Errors
    ///
    /// Propagates typed [`SpillError`]s from run probes.
    pub fn contains(&self, fp: u128) -> Result<bool, SpillError> {
        let mut inner = self.inner.lock().unwrap();
        if fp == 0 {
            return Ok(inner.zero_seen);
        }
        if !inner.bloom_maybe(fp) {
            return Ok(false);
        }
        if inner.hot_contains(fp) {
            return Ok(true);
        }
        let hit = inner.runs_contain(fp, &self.ctx)?;
        // The probe may have pulled blocks into the cache.
        inner.recharge(self.ctx.tracker());
        Ok(hit)
    }

    /// Total distinct fingerprints admitted.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// `true` if nothing has been admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current sorted runs on disk.
    pub fn run_count(&self) -> usize {
        self.inner.lock().unwrap().runs.len()
    }

    /// Estimated resident bytes (hot table + Bloom + run indexes + cache).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().charged
    }

    /// Live bytes of sorted runs on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .runs
            .iter()
            .map(Run::disk_bytes)
            .sum()
    }

    /// Every admitted fingerprint across all tiers (hot table, zero slot,
    /// on-disk runs), in unspecified order. The tiers are disjoint by
    /// construction — `admit` probes the runs before a hot insert and
    /// eviction windows never re-write run-resident fingerprints — so the
    /// result has exactly [`FpSet::len`] entries. Used by checkpointing,
    /// which needs the seen *membership* (its physical tiering is rebuilt
    /// fresh on resume).
    ///
    /// # Errors
    ///
    /// Propagates typed [`SpillError`]s from run reads.
    pub fn collect_fps(&self) -> Result<Vec<u128>, SpillError> {
        let inner = self.inner.lock().unwrap();
        let mut fps = Vec::with_capacity(inner.len);
        if inner.zero_seen {
            fps.push(0);
        }
        fps.extend(inner.slots.iter().copied().filter(|&fp| fp != 0));
        for run in &inner.runs {
            for seg in &run.segments {
                let bytes = self.ctx.arena().read(seg.offset, seg.count * 16)?;
                fps.extend(decode_run(&bytes)?);
            }
        }
        debug_assert_eq!(fps.len(), inner.len, "tiers overlap or lost entries");
        Ok(fps)
    }

    /// Forces the oldest generation window out to a run regardless of
    /// budget pressure (test hook for the eviction/compaction machinery).
    ///
    /// # Errors
    ///
    /// Propagates typed [`SpillError`]s from the run write.
    pub fn force_evict(&self) -> Result<(), SpillError> {
        let mut inner = self.inner.lock().unwrap();
        inner.evict_window(&self.ctx)?;
        inner.recharge(self.ctx.tracker());
        Ok(())
    }

    /// Forces a full k-way merge of the current runs (test hook).
    ///
    /// # Errors
    ///
    /// Propagates typed [`SpillError`]s from the merge IO.
    pub fn force_compact(&self) -> Result<(), SpillError> {
        let mut inner = self.inner.lock().unwrap();
        inner.compact(&self.ctx)?;
        inner.recharge(self.ctx.tracker());
        Ok(())
    }
}

impl Drop for FpSet {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        self.ctx.tracker().sub_resident(inner.charged);
        inner.charged = 0;
    }
}

// ---------------------------------------------------------------------------
// AdmitSet
// ---------------------------------------------------------------------------

/// How an exploration engine answers "is this configuration new?".
///
/// `admit` must behave exactly like `HashSet::insert` on the fingerprint
/// stream — the committer's admission order (and thus every engine's
/// bit-identical-to-reference guarantee) rides on the answer sequence.
pub(crate) trait AdmitSet {
    /// Records `fp`; `true` iff it was not already present.
    fn admit(&mut self, fp: u128) -> Result<bool, SpillError>;

    /// Estimated resident bytes of the seen set.
    fn seen_resident_bytes(&self) -> usize;

    /// Live bytes of evicted fingerprints on disk (tiered backend only).
    fn fpset_disk_bytes(&self) -> u64 {
        0
    }

    /// Every admitted fingerprint, in unspecified order (checkpoint hook:
    /// the snapshot stores sorted membership, not the physical tiering).
    fn collect_fps(&self) -> Result<Vec<u128>, SpillError>;
}

/// The sequential engines' seen set: exact `HashSet` while unbudgeted (no
/// behaviour or perf change), tiered [`FpSet`] under a memory budget.
pub(crate) enum SeenBackend {
    Exact { set: HashSet<u128>, ctx: SpillContext },
    Tiered(FpSet),
}

impl SeenBackend {
    /// Picks the backend for `ctx`'s budget, expecting up to `expected`
    /// distinct fingerprints.
    pub(crate) fn new(expected: usize, ctx: &SpillContext) -> Self {
        match ctx.budget() {
            Some(_) => SeenBackend::Tiered(FpSet::new(expected, ctx.clone())),
            None => SeenBackend::Exact {
                set: HashSet::new(),
                ctx: ctx.clone(),
            },
        }
    }
}

impl AdmitSet for SeenBackend {
    fn admit(&mut self, fp: u128) -> Result<bool, SpillError> {
        match self {
            SeenBackend::Exact { set, ctx } => {
                let new = set.insert(fp);
                if new {
                    ctx.tracker().add_resident(SEEN_ENTRY_EST);
                }
                Ok(new)
            }
            SeenBackend::Tiered(fpset) => fpset.admit(fp),
        }
    }

    fn seen_resident_bytes(&self) -> usize {
        match self {
            SeenBackend::Exact { set, .. } => set.len() * SEEN_ENTRY_EST,
            SeenBackend::Tiered(fpset) => fpset.resident_bytes(),
        }
    }

    fn fpset_disk_bytes(&self) -> u64 {
        match self {
            SeenBackend::Exact { .. } => 0,
            SeenBackend::Tiered(fpset) => fpset.disk_bytes(),
        }
    }

    fn collect_fps(&self) -> Result<Vec<u128>, SpillError> {
        match self {
            SeenBackend::Exact { set, .. } => Ok(set.iter().copied().collect()),
            SeenBackend::Tiered(fpset) => fpset.collect_fps(),
        }
    }
}

impl Drop for SeenBackend {
    fn drop(&mut self) {
        if let SeenBackend::Exact { set, ctx } = self {
            ctx.tracker().sub_resident(set.len() * SEEN_ENTRY_EST);
        }
    }
}

impl AdmitSet for &ClaimTable {
    fn admit(&mut self, fp: u128) -> Result<bool, SpillError> {
        Ok(ClaimTable::admit(self, fp))
    }

    fn seen_resident_bytes(&self) -> usize {
        self.resident_bytes()
    }

    fn collect_fps(&self) -> Result<Vec<u128>, SpillError> {
        Ok(self.committed_fps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx(budget: usize) -> SpillContext {
        SpillContext::new(Some(budget))
    }

    #[test]
    fn admit_is_hashset_insert_without_budget_pressure() {
        let set = FpSet::new(1 << 12, SpillContext::new(None));
        let mut reference = HashSet::new();
        for i in 0..4000u128 {
            let fp = i.wrapping_mul(0x9e3779b97f4a7c15_9e3779b97f4a7c15);
            assert_eq!(set.admit(fp).unwrap(), reference.insert(fp), "fp {fp:x}");
        }
        for i in 0..4000u128 {
            let fp = i.wrapping_mul(0x9e3779b97f4a7c15_9e3779b97f4a7c15);
            assert!(set.contains(fp).unwrap());
            assert!(!set.admit(fp).unwrap());
        }
        assert_eq!(set.len(), reference.len());
        assert_eq!(set.run_count(), 0, "unbudgeted set must not spill");
    }

    #[test]
    fn tiny_budget_evicts_to_runs_and_stays_exact() {
        let ctx = tiny_ctx(0);
        let set = FpSet::new(1 << 12, ctx.clone());
        let mut reference = HashSet::new();
        // Interleave fresh admissions with duplicate probes of earlier fps
        // so hot hits, run probes and the Bloom front all participate.
        for i in 0..3000u128 {
            let fp = (i + 1).wrapping_mul(0xdeadbeef_deadbeef_deadbeef_deadbeefu128);
            assert_eq!(set.admit(fp).unwrap(), reference.insert(fp));
            let back = ((i / 2) + 1).wrapping_mul(0xdeadbeef_deadbeef_deadbeef_deadbeefu128);
            assert_eq!(set.admit(back).unwrap(), reference.insert(back));
        }
        assert!(set.run_count() > 0, "zero budget must evict");
        assert!(set.disk_bytes() > 0);
        assert_eq!(set.len(), reference.len());
        for &fp in &reference {
            assert!(set.contains(fp).unwrap());
        }
    }

    #[test]
    fn compaction_merges_runs_and_preserves_membership() {
        let ctx = tiny_ctx(0);
        let set = FpSet::new(1 << 12, ctx.clone());
        let mut all = Vec::new();
        for i in 0..2000u128 {
            let fp = (i + 1) << 64 | (i * 7 + 3);
            set.admit(fp).unwrap();
            all.push(fp);
        }
        while set.run_count() < 3 {
            set.force_evict().unwrap();
        }
        let before = set.run_count();
        set.force_compact().unwrap();
        assert_eq!(set.run_count(), 1, "compaction must leave one run, had {before}");
        for fp in all {
            assert!(set.contains(fp).unwrap());
            assert!(!set.admit(fp).unwrap());
        }
    }

    #[test]
    fn zero_fingerprint_is_tracked_exactly() {
        let set = FpSet::new(16, tiny_ctx(0));
        assert!(!set.contains(0).unwrap());
        assert!(set.admit(0).unwrap());
        assert!(!set.admit(0).unwrap());
        assert!(set.contains(0).unwrap());
    }

    #[test]
    fn decode_run_rejects_truncated_and_unsorted_bytes() {
        let good = encode_run(&[1, 2, 3]);
        assert_eq!(decode_run(&good).unwrap(), vec![1, 2, 3]);
        let truncated = &good[..good.len() - 5];
        assert!(matches!(
            decode_run(truncated),
            Err(SpillError::Corrupt { .. })
        ));
        let unsorted = encode_run(&[3, 2, 1]);
        assert!(matches!(
            decode_run(&unsorted),
            Err(SpillError::Corrupt { .. })
        ));
    }

    #[test]
    fn dropping_the_set_releases_its_accounting() {
        let ctx = tiny_ctx(4096);
        {
            let set = FpSet::new(1 << 10, ctx.clone());
            for i in 1..500u128 {
                set.admit(i << 32).unwrap();
            }
            assert!(ctx.tracker().resident_bytes() > 0);
        }
        assert_eq!(ctx.tracker().resident_bytes(), 0);
    }
}
