//! Adversaries extracted from the paper's impossibility proofs.

use cbh_model::{Action, Instruction, InstructionKind, InstructionSet, Protocol, Value};
use cbh_sim::{Machine, SimError};
use std::fmt;

/// What an adversary produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryOutcome {
    /// Agreement was violated: the two decisions.
    AgreementViolation {
        /// First process's decision.
        p: u64,
        /// Second process's decision.
        q: u64,
    },
    /// The protocol survived — it is not of the shape the theorem covers (or
    /// a step/budget limit was hit first).
    Survived {
        /// Why the adversary gave up.
        reason: String,
    },
}

impl AdversaryOutcome {
    /// Returns `true` if a violation was found.
    pub fn violated(&self) -> bool {
        matches!(self, AdversaryOutcome::AgreementViolation { .. })
    }
}

impl fmt::Display for AdversaryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryOutcome::AgreementViolation { p, q } => {
                write!(f, "agreement violated: decisions {p} and {q}")
            }
            AdversaryOutcome::Survived { reason } => write!(f, "adversary gave up: {reason}"),
        }
    }
}

/// An error from an adversary run.
#[derive(Debug)]
pub enum AdversaryError {
    /// The protocol does not have the shape the theorem requires.
    WrongShape(&'static str),
    /// The underlying machine failed.
    Sim(SimError),
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::WrongShape(s) => write!(f, "protocol shape mismatch: {s}"),
            AdversaryError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for AdversaryError {}

impl From<SimError> for AdversaryError {
    fn from(e: SimError) -> Self {
        AdversaryError::Sim(e)
    }
}

fn poised_kind<P: Protocol>(machine: &Machine<P::Proc>, pid: usize) -> Option<InstructionKind> {
    match machine.action(pid) {
        Action::Invoke(op) => match op {
            cbh_model::Op::Single { instr, .. } => Some(instr.kind()),
            cbh_model::Op::MultiAssign(_) => None,
        },
        Action::Decide(_) => None,
    }
}

fn poised_write_max_arg<P: Protocol>(machine: &Machine<P::Proc>, pid: usize) -> Option<Value> {
    match machine.action(pid) {
        Action::Invoke(cbh_model::Op::Single {
            instr: Instruction::WriteMax(v),
            ..
        }) => Some(v),
        _ => None,
    }
}

/// Theorem 4.1: defeats any 2-process binary consensus protocol that uses a
/// **single max-register**.
///
/// Interleaves the two solo executions so that whenever a process runs, every
/// write by the other process so far is dominated by its own writes — making
/// the interleaving indistinguishable from each solo run, so both solo
/// decisions happen in one execution.
///
/// # Errors
///
/// [`AdversaryError::WrongShape`] unless the protocol has `n = 2` on one
/// max-register location. [`AdversaryError::Sim`] if the machine rejects a
/// step.
///
/// # Examples
///
/// ```
/// use cbh_verify::adversary::max_register_interleave;
/// use cbh_verify::strawmen::OneMaxRegister;
///
/// let outcome = max_register_interleave(&OneMaxRegister::new()).unwrap();
/// assert!(outcome.violated(), "Theorem 4.1 in action: {outcome}");
/// ```
pub fn max_register_interleave<P: Protocol>(
    protocol: &P,
) -> Result<AdversaryOutcome, AdversaryError> {
    if protocol.n() != 2 {
        return Err(AdversaryError::WrongShape("need exactly 2 processes"));
    }
    let spec = protocol.memory_spec();
    if spec.iset() != InstructionSet::MaxRegister || spec.bounded_len() != Some(1) {
        return Err(AdversaryError::WrongShape("need one max-register location"));
    }

    const BUDGET: u64 = 100_000;
    let mut machine = Machine::start(protocol, &[0, 1])?;

    // Advance `pid` until it is poised to write-max or has decided.
    fn advance<Pr: Protocol>(
        m: &mut Machine<Pr::Proc>,
        pid: usize,
        budget: &mut u64,
    ) -> Result<(), AdversaryError> {
        while *budget > 0
            && m.decision(pid).is_none()
            && poised_write_max_arg::<Pr>(m, pid).is_none()
        {
            m.step(pid)?;
            *budget -= 1;
        }
        Ok(())
    }

    let mut budget = BUDGET;
    advance::<P>(&mut machine, 0, &mut budget)?;
    advance::<P>(&mut machine, 1, &mut budget)?;

    while budget > 0 {
        match (machine.decision(0), machine.decision(1)) {
            (Some(p), Some(q)) => {
                return Ok(if p != q {
                    AdversaryOutcome::AgreementViolation { p, q }
                } else {
                    AdversaryOutcome::Survived {
                        reason: format!("both decided {p}"),
                    }
                });
            }
            (Some(_), None) => {
                machine.step(1)?;
                budget -= 1;
                advance::<P>(&mut machine, 1, &mut budget)?;
            }
            (None, Some(_)) => {
                machine.step(0)?;
                budget -= 1;
                advance::<P>(&mut machine, 0, &mut budget)?;
            }
            (None, None) => {
                let a = poised_write_max_arg::<P>(&machine, 0)
                    .expect("undecided process past advance is poised to write-max");
                let b = poised_write_max_arg::<P>(&machine, 1)
                    .expect("undecided process past advance is poised to write-max");
                // The proof's rule: let the smaller pending write go first.
                let runner = if a <= b { 0 } else { 1 };
                machine.step(runner)?;
                budget -= 1;
                advance::<P>(&mut machine, runner, &mut budget)?;
            }
        }
    }
    Ok(AdversaryOutcome::Survived {
        reason: "step budget exhausted before both processes decided".into(),
    })
}

/// Theorem 5.1: defeats any 2-process binary consensus protocol that uses a
/// **single `{read, write(x), fetch-and-increment}` location**.
///
/// Reproduces the proof: compare `p`'s two solo executions (inputs 0 and 1)
/// up to their first `write`; run the input whose write-free prefix does
/// fewer fetch-and-increments, let `q` decide solo from the resulting
/// configuration (which `q` cannot distinguish from a unanimous one), then
/// let `p`'s pending write obliterate the location and finish its solo run.
///
/// # Errors
///
/// [`AdversaryError::WrongShape`] unless the protocol has `n = 2` on one
/// `{read, write, fetch-and-increment}` location.
///
/// # Examples
///
/// ```
/// use cbh_verify::adversary::fetch_inc_adversary;
/// use cbh_verify::strawmen::OneFetchIncWord;
///
/// let outcome = fetch_inc_adversary(&OneFetchIncWord::new()).unwrap();
/// assert!(outcome.violated(), "Theorem 5.1 in action: {outcome}");
/// ```
pub fn fetch_inc_adversary<P: Protocol>(
    protocol: &P,
) -> Result<AdversaryOutcome, AdversaryError> {
    if protocol.n() != 2 {
        return Err(AdversaryError::WrongShape("need exactly 2 processes"));
    }
    let spec = protocol.memory_spec();
    if spec.iset() != InstructionSet::ReadWriteFetchIncrement || spec.bounded_len() != Some(1) {
        return Err(AdversaryError::WrongShape(
            "need one {read, write, fetch-and-increment} location",
        ));
    }

    const BUDGET: u64 = 100_000;

    // Count fetch-and-increments in p's solo write-free prefix with `input`.
    let fi_count = |input: u64| -> Result<u64, AdversaryError> {
        let mut m = Machine::start(protocol, &[input, 1 - input])?;
        let mut count = 0;
        for _ in 0..BUDGET {
            if m.decision(0).is_some() {
                break;
            }
            match poised_kind::<P>(&m, 0) {
                Some(InstructionKind::Write) | None => break,
                Some(InstructionKind::FetchAndIncrement) => count += 1,
                _ => {}
            }
            m.step(0)?;
        }
        Ok(count)
    };

    // WLOG (proof): run the input with the *smaller or equal* write-free
    // fetch-and-increment count as p's real input.
    let (fi0, fi1) = (fi_count(0)?, fi_count(1)?);
    let p_input = if fi0 <= fi1 { 0 } else { 1 };
    let q_input = 1 - p_input;

    // Build configuration C: p runs its write-free prefix α′.
    let mut machine = Machine::start(protocol, &[p_input, q_input])?;
    for _ in 0..BUDGET {
        if machine.decision(0).is_some() {
            break;
        }
        match poised_kind::<P>(&machine, 0) {
            Some(InstructionKind::Write) | None => break,
            _ => {}
        }
        machine.step(0)?;
    }

    // q decides solo from C — it cannot distinguish C from the configuration
    // C′ in which both processes started with its own input.
    let q_decision = machine
        .run_solo(1, BUDGET)?
        .ok_or(AdversaryError::WrongShape(
            "q did not decide solo (protocol is not obstruction-free)",
        ))?;

    // If p already decided in C it decided solo — p_input.
    let p_decision = match machine.decision(0) {
        Some(v) => v,
        None => {
            // p's pending write makes C·γ and C indistinguishable to p.
            machine.step(0)?;
            machine
                .run_solo(0, BUDGET)?
                .ok_or(AdversaryError::WrongShape(
                    "p did not decide solo (protocol is not obstruction-free)",
                ))?
        }
    };

    Ok(if p_decision != q_decision {
        AdversaryOutcome::AgreementViolation {
            p: p_decision,
            q: q_decision,
        }
    } else {
        AdversaryOutcome::Survived {
            reason: format!("both decided {p_decision}"),
        }
    })
}

/// The escalation adversary behind Lemma 9.1 / Theorem 9.2: on
/// `{read, test-and-set}` or `{read, write(1)}` memory, keeps the system
/// bivalent while forcing it to touch ever more locations.
///
/// Strategy (greedy form of the lemma's construction): repeatedly find two
/// processes whose solo runs decide differently — the configuration is
/// bivalent — and take one step of a process whose step *keeps* it bivalent
/// (checked by cloning the configuration and probing solo decisions). Every
/// obstruction-free protocol on such memory admits arbitrarily long bivalent
/// executions, and bivalent executions must keep setting fresh locations.
///
/// Returns the number of locations touched once `target_locations` is reached
/// or the step budget runs out, together with whether the final configuration
/// is still bivalent.
///
/// # Errors
///
/// Propagates machine errors.
pub fn tas_escalation<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    target_locations: usize,
    budget: u64,
) -> Result<EscalationReport, AdversaryError> {
    let mut machine = Machine::start(protocol, inputs)?;
    let solo_budget = 1_000_000;

    let bivalent = |m: &Machine<P::Proc>| -> Result<bool, AdversaryError> {
        let mut seen = None;
        for pid in 0..m.n() {
            let mut probe = m.clone();
            let Some(d) = probe.run_solo(pid, solo_budget)? else {
                continue;
            };
            match seen {
                None => seen = Some(d),
                Some(prev) if prev != d => return Ok(true),
                _ => {}
            }
        }
        Ok(false)
    };

    let mut steps = 0;
    while steps < budget && machine.memory().touched() < target_locations {
        if !bivalent(&machine)? {
            return Ok(EscalationReport {
                locations_touched: machine.memory().touched(),
                steps,
                still_bivalent: false,
            });
        }
        // Greedy: take any step that preserves bivalence (the lemma guarantees
        // one exists for ≥ 3 processes on this memory).
        let mut advanced = false;
        for pid in machine.active() {
            let mut trial = machine.clone();
            trial.step(pid)?;
            if bivalent(&trial)? {
                machine = trial;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Ok(EscalationReport {
                locations_touched: machine.memory().touched(),
                steps,
                still_bivalent: true,
            });
        }
    }

    let still = bivalent(&machine)?;
    Ok(EscalationReport {
        locations_touched: machine.memory().touched(),
        steps,
        still_bivalent: still,
    })
}

/// Result of [`tas_escalation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationReport {
    /// Locations the bivalent execution has touched.
    pub locations_touched: usize,
    /// Steps the adversary spent.
    pub steps: u64,
    /// Whether the final configuration is still bivalent (it should be —
    /// that is Theorem 9.2's content).
    pub still_bivalent: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strawmen::{OneFetchIncWord, OneMaxRegister};
    use cbh_core::maxreg::MaxRegConsensus;
    use cbh_core::tracks::track_consensus;
    use cbh_core::util::BitWrite;

    #[test]
    fn theorem_4_1_defeats_one_max_register() {
        let outcome = max_register_interleave(&OneMaxRegister::new()).unwrap();
        assert!(outcome.violated(), "{outcome}");
    }

    #[test]
    fn theorem_4_1_shape_check_rejects_two_registers() {
        let err = max_register_interleave(&MaxRegConsensus::new(2)).unwrap_err();
        assert!(matches!(err, AdversaryError::WrongShape(_)));
    }

    #[test]
    fn theorem_5_1_defeats_one_fetch_inc_word() {
        let outcome = fetch_inc_adversary(&OneFetchIncWord::new()).unwrap();
        assert!(outcome.violated(), "{outcome}");
    }

    #[test]
    fn theorem_9_2_escalation_grows_space_on_tracks() {
        // Theorem 9.2 concretely: on {read, write(1)} memory, the adversary
        // drives our track protocol through a bivalent execution touching
        // ever more locations.
        let protocol = track_consensus(3, BitWrite::Write1);
        let report = tas_escalation(&protocol, &[0, 1, 2], 12, 4_000).unwrap();
        assert!(
            report.locations_touched >= 12,
            "expected ≥ 12 locations, got {report:?}"
        );
        assert!(report.still_bivalent, "{report:?}");
    }

    #[test]
    fn escalation_with_tas_writes_too() {
        let protocol = track_consensus(3, BitWrite::TestAndSet);
        let report = tas_escalation(&protocol, &[0, 1, 1], 9, 4_000).unwrap();
        assert!(report.locations_touched >= 9, "{report:?}");
    }
}
