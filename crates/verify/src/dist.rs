//! Distributed sharded exploration: fingerprint-partitioned shards with
//! delta-framed frontier exchange.
//!
//! # Architecture
//!
//! The configuration space is partitioned by fingerprint: shard
//! [`shard_of`]`(fp, shards)` *owns* every configuration whose digest lands
//! in its slice, holds the only seen-set entry for it, and is the only
//! place its frontier node is ever expanded. A **coordinator** drives the
//! shards through bulk-synchronous rounds — one breadth-first layer per
//! round — over Unix-domain sockets carrying the CRC-guarded frames of
//! [`cbh_model::packed::frame`]:
//!
//! ```text
//!   coordinator                                shard 0 .. shard S-1
//!       | ROUND{expand}  ------------------------->  |
//!       |                 expand owned frontier      |
//!       | <- SUCC{dest, candidates}  (routed on) ->  |   speculative
//!       | <- DONE{any_active, events}                |
//!       | FLUSH  ----------------------------------> |
//!       |                 sort, dedup, classify      |
//!       | <- VERDICTS{fresh candidates + defects}    |
//!       |        merge sweep (sequential,            |
//!       |        reference admission order)          |   deterministic
//!       | COMMIT{indices, links} ------------------> |
//! ```
//!
//! # Determinism argument
//!
//! The run's outcome is decided entirely by the coordinator's **merge
//! sweep**, which replays the single-process reference admission order:
//!
//! - **Dedup is owner-exclusive.** A fingerprint's owner is a pure function
//!   of its bits, so every candidate for the same configuration reaches the
//!   same shard. Local dedup against that shard's seen set is therefore
//!   *identical* to global dedup — no other shard ever votes on that
//!   fingerprint.
//! - **Per-shard verdict order is the global order restricted to the
//!   shard.** Owners sort their round's candidates by `(parent index,
//!   pid)` before admitting — exactly the reference's frontier-order-then-
//!   pid-order within a layer. The coordinator merges all shards' verdict
//!   lists (plus the round's solo-failure/error events) back into one
//!   totally ordered stream keyed `(node, stage, pid)` and sweeps it
//!   sequentially: `max_configs` accounting, link construction, violation
//!   selection and completeness all happen there, single-threaded, exactly
//!   as [`crate::reference::reference_explore`] would.
//! - **Every cut is run-terminating.** A violation, a solo-check failure,
//!   a step error or the config cap ends the run immediately, so shard
//!   seen-sets that speculatively admitted candidates *past* the cut never
//!   need rollback — their extra entries are unobservable.
//!
//! Hence `(ExploreOutcome, ExploreStats)` — verdict, counterexample
//! schedule, configuration count, frontier peak, depth — are bit-identical
//! to the single-process engines at any shard count × worker count ×
//! memory budget. The conformance oracle and `tests/dist_explore.rs`
//! enforce exactly this.
//!
//! # Two modes, one protocol
//!
//! - [`explore_sharded`] runs shards as threads of one process sharing one
//!   [`PackedCtx`]; cross-shard candidates ship their [`PackedState`]s
//!   delta-chained inside the frame ([`cbh_model::StateChainEncoder`] —
//!   the spill-run discipline applied to the wire).
//! - [`coordinate`] / [`shard_serve`] run shards as separate processes.
//!   Intern ids are process-local (see [`cbh_model::packed::delta`]), so
//!   frames carry fingerprints and provenance only; an owner reconstructs
//!   an *admitted* remote candidate by replaying its pid path from the
//!   root through its own intern tables — digests hash content, never ids,
//!   so the replica's fingerprint provably matches the producer's.
//!
//! # Budgets
//!
//! [`ExploreLimits::memory_budget`] is interpreted **per shard**: each
//! shard owns a private [`SpillContext`], seen backend and frontier store,
//! so an `S`-shard run holds up to `S ×` the budget resident in aggregate
//! (that is the point — sharding multiplies the memory ceiling). The
//! single-process engines' intern-table budget charging and typed
//! budget-overrun error are not replicated here: shard interners are
//! per-process and reported as telemetry only.

use crate::checker::{
    decision_defect, decision_violation, schedule_of, Defect, ExploreLimits, ExploreOutcome,
    ExploreStats, Link, NO_LINK,
};
use crate::fpset::{AdmitSet, SeenBackend};
use crate::frontier::{FrontierStore, SpillContext, SpillError};
use crate::packed_engine::{cache_cap_of, expand_node, Edge, Node, NodeCodec, RunCfg};
use cbh_model::packed::delta::{read_varint, write_varint};
use cbh_model::packed::frame::frame_len;
use cbh_model::{
    encode_frame, FrameReader, PackedCache, PackedCtx, PackedState, Process, Protocol,
    StateChainDecoder, StateChainEncoder,
};
use cbh_sim::{Machine, SimError};
use std::collections::HashMap;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{mpsc, Mutex};

// ---------------------------------------------------------------------------
// Wire vocabulary
// ---------------------------------------------------------------------------

/// Shard-to-coordinator greeting carrying the shard id; sent only by
/// process shards ([`shard_serve`]) and consumed by [`accept_shards`]
/// before the round protocol starts.
const K_HELLO: u8 = 1;
/// Coordinator → shards: start a round; payload `[expand: u8]`.
const K_ROUND: u8 = 2;
/// Successor candidates routed to their owner shard via the coordinator;
/// payload `dest, count, {parent_idx, pid, fp, has_state, [state chain]}*`.
const K_SUCC: u8 = 3;
/// Shard → coordinator: expansion phase over; payload
/// `any_active, event_count, events*`.
const K_DONE: u8 = 4;
/// Coordinator → shards: all candidates routed; sort, dedup, classify.
const K_FLUSH: u8 = 5;
/// Shard → coordinator: the round's fresh admissions in `(parent_idx,
/// pid)` order, each with its defect classification.
const K_VERDICTS: u8 = 6;
/// Coordinator → shards: payload `[halt]` or
/// `[0, my_count, my_indices*, link_count, (parent_idx, pid)*]`.
const K_COMMIT: u8 = 7;
/// Shard → coordinator, after a halting COMMIT: five telemetry varints.
const K_STATS: u8 = 8;
/// Shard → coordinator: fatal shard-local failure, payload is the rendered
/// error message; the shard exits right after sending.
const K_ERROR: u8 = 0x7F;

/// Candidates per [`K_SUCC`] frame: bounds frame size (and the delta
/// chain's error blast radius) while amortising the header + CRC.
const SUCC_BATCH: usize = 512;

/// The owner shard of fingerprint `fp` among `shards` shards: the high
/// 64 bits modulo the shard count. The engines' digests mix every state
/// component into both halves, so the high half alone spreads evenly.
pub fn shard_of(fp: u128, shards: usize) -> usize {
    ((fp >> 64) as u64 % shards as u64) as usize
}

/// Topology and mode knobs for one distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Fingerprint-space partitions (≥ 1); also the process/thread count.
    pub shards: usize,
    /// Expansion worker threads *per shard* (≥ 1).
    pub workers: usize,
    /// Process-symmetry reduction, as in
    /// [`crate::checker::Explorer::symmetry_reduction`].
    pub symmetric: bool,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 2,
            workers: 1,
            symmetric: false,
        }
    }
}

/// Wire-protocol failures surface through the engines' existing error
/// type, like spill-arena and checkpoint failures before them.
fn wire_err(detail: impl std::fmt::Display) -> SimError {
    SimError::Spill {
        detail: format!("dist wire: {detail}"),
    }
}

// ---------------------------------------------------------------------------
// Side channel: exact error values for the in-process mode
// ---------------------------------------------------------------------------

/// In-process error fidelity: the wire renders [`SimError`]s to strings
/// (fine for cross-process diagnostics), but when shards are threads the
/// caller deserves the exact typed value. Shards deposit errors here keyed
/// by the node they occurred on; the coordinator prefers a deposit over
/// the wire rendering.
#[derive(Debug, Default)]
pub(crate) struct SideChannel {
    /// Expansion errors by global node index.
    errors: Mutex<HashMap<u64, SimError>>,
    /// First fatal shard-local failure (spill IO, commit application).
    fatal: Mutex<Option<SimError>>,
}

impl SideChannel {
    fn new() -> Self {
        SideChannel::default()
    }

    fn put(&self, idx: u64, err: SimError) {
        self.errors.lock().unwrap().entry(idx).or_insert(err);
    }

    fn take(&self, idx: u64) -> Option<SimError> {
        self.errors.lock().unwrap().remove(&idx)
    }

    fn put_fatal(&self, err: SimError) {
        self.fatal.lock().unwrap().get_or_insert(err);
    }

    fn take_fatal(&self) -> Option<SimError> {
        self.fatal.lock().unwrap().take()
    }
}

// ---------------------------------------------------------------------------
// Shard side
// ---------------------------------------------------------------------------

/// Why a shard stopped serving.
enum ShardExit {
    /// The coordinator vanished or spoke garbage: exit without ceremony —
    /// there is nobody left to report to.
    Silent,
    /// A shard-local failure worth a [`K_ERROR`] frame before exiting.
    Fatal(SimError),
}

impl From<SpillError> for ShardExit {
    fn from(e: SpillError) -> Self {
        ShardExit::Fatal(e.into())
    }
}

/// Per-shard constants, fixed for the whole run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardCfg {
    /// This shard's id in `0..shards`.
    pub(crate) shard: usize,
    /// Total shard count (the fingerprint-partition modulus).
    pub(crate) shards: usize,
    /// Expansion worker threads within this shard.
    pub(crate) workers: usize,
    /// `true` when all shards share one [`PackedCtx`] (thread mode):
    /// cross-shard candidates carry their packed states delta-chained in
    /// the frame. `false` across processes: frames carry fingerprint +
    /// provenance only and owners replay admitted states from the root.
    pub(crate) ship_states: bool,
    /// Process-symmetry reduction flag (digest mode).
    pub(crate) symmetric: bool,
}

/// A successor candidate awaiting its owner's dedup verdict.
struct Cand {
    /// Global index of the expanded parent node.
    parent_idx: u64,
    /// The pid stepped to produce this candidate.
    pid: u64,
    /// The candidate's digest — the routing and dedup key.
    fp: u128,
    /// The candidate's state, when this side can build it (always in
    /// ship-states mode; owner-local candidates in replay mode).
    state: Option<PackedState>,
}

/// One per-node incident from the expansion phase, reported in DONE.
enum RoundEvent {
    /// `pid`'s solo run from node `idx` failed to decide within budget.
    SoloFail { idx: u64, pid: u64 },
    /// Expanding node `idx` stepped outside the model (or a solo probe
    /// did). The exact value also goes to the side channel when present.
    Failed { idx: u64, err: SimError },
}

/// What one shard's expansion of its slice of a layer produced.
struct LayerOut {
    any_active: bool,
    events: Vec<RoundEvent>,
    cands: Vec<Cand>,
}

/// Expands a contiguous chunk of the shard's frontier slice. Per-node
/// failures become [`RoundEvent`]s rather than aborting the chunk: the
/// coordinator's sweep cuts at the first event in *global* order, which
/// this shard cannot know locally.
fn expand_chunk<P: Process>(
    ctx: &PackedCtx<P>,
    chunk: &[Node],
    run: RunCfg,
    cfg: ShardCfg,
    cache: &mut PackedCache<P>,
) -> LayerOut {
    let mut out = LayerOut {
        any_active: false,
        events: Vec::new(),
        cands: Vec::new(),
    };
    for node in chunk {
        match expand_node(ctx, node, run, None, cache) {
            Err(err) => out.events.push(RoundEvent::Failed {
                idx: node.index as u64,
                err,
            }),
            Ok(exp) => {
                out.any_active |= exp.has_active;
                if let Some(pid) = exp.solo_failure {
                    out.events.push(RoundEvent::SoloFail {
                        idx: node.index as u64,
                        pid: pid as u64,
                    });
                    continue;
                }
                for Edge { pid, fp, child } in exp.edges {
                    debug_assert!(child.is_none(), "no claim table was handed in");
                    let dest = shard_of(fp, cfg.shards);
                    // Ship mode: every candidate crosses with its state.
                    // Replay mode: only candidates we will own ourselves
                    // are materialised; remote ones replay owner-side.
                    let state = (cfg.ship_states || dest == cfg.shard).then(|| {
                        ctx.branch_step_cached(cache, &node.state, pid)
                            .expect("previewed edge steps")
                    });
                    out.cands.push(Cand {
                        parent_idx: node.index as u64,
                        pid: pid as u64,
                        fp,
                        state,
                    });
                }
            }
        }
    }
    if let Some(cap) = run.cache_cap {
        cache.evict_if_over(cap);
    }
    out
}

/// Expands the shard's whole slice of the current layer, fanning out over
/// `cfg.workers` scoped threads in contiguous chunks (results concatenate
/// in chunk order; ordering is re-established downstream anyway — owners
/// sort candidates, the coordinator sorts events).
fn expand_layer<P: Process + Send + Sync>(
    ctx: &PackedCtx<P>,
    nodes: &[Node],
    run: RunCfg,
    cfg: ShardCfg,
    cache: &mut PackedCache<P>,
) -> LayerOut {
    let workers = cfg.workers.min(nodes.len()).max(1);
    if workers <= 1 {
        return expand_chunk(ctx, nodes, run, cfg, cache);
    }
    let chunk_len = nodes.len().div_ceil(workers);
    let outs: Vec<LayerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut cache = PackedCache::new();
                    expand_chunk(ctx, chunk, run, cfg, &mut cache)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard expansion worker panicked"))
            .collect()
    });
    let mut merged = LayerOut {
        any_active: false,
        events: Vec::new(),
        cands: Vec::new(),
    };
    for out in outs {
        merged.any_active |= out.any_active;
        merged.events.extend(out.events);
        merged.cands.extend(out.cands);
    }
    merged
}

// ---------------------------------------------------------------------------
// Shard wire helpers
// ---------------------------------------------------------------------------

/// Varint field read, shard side: wire garbage means the coordinator (or
/// the kernel) is broken — exit silently.
fn rv(p: &mut &[u8]) -> Result<u64, ShardExit> {
    read_varint(p).map_err(|_| ShardExit::Silent)
}

/// 16-byte little-endian fingerprint read.
fn take_fp(p: &mut &[u8]) -> Result<u128, ShardExit> {
    if p.len() < 16 {
        return Err(ShardExit::Silent);
    }
    let (fp, rest) = p.split_at(16);
    *p = rest;
    Ok(u128::from_le_bytes(fp.try_into().expect("16 bytes")))
}

fn take_u8(p: &mut &[u8]) -> Result<u8, ShardExit> {
    let (&b, rest) = p.split_first().ok_or(ShardExit::Silent)?;
    *p = rest;
    Ok(b)
}

/// Encodes and writes one frame; a failed write means the peer is gone.
fn send_frame(sock: &mut UnixStream, kind: u8, payload: &[u8]) -> Result<(), ShardExit> {
    let mut wire = Vec::with_capacity(frame_len(payload.len()));
    encode_frame(kind, payload, &mut wire);
    sock.write_all(&wire).map_err(|_| ShardExit::Silent)
}

/// Blocking frame read: refills the reassembly buffer from the socket
/// until one complete frame is available. `None` on EOF, IO failure or a
/// typed frame corruption — all equally terminal for a shard.
fn read_frame(reader: &mut FrameReader, sock: &mut UnixStream) -> Option<(u8, Vec<u8>)> {
    loop {
        match reader.next_frame() {
            Ok(Some(frame)) => return Some(frame),
            Ok(None) => {}
            Err(_) => return None,
        }
        match reader.fill_from(sock) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {}
        }
    }
}

/// Rebuilds an admitted remote candidate's state by replaying its pid
/// path from the root through this shard's own intern tables (replay
/// mode). `meta` maps every admitted global index to `(parent global
/// index, pid)`; the walk is O(depth) packed steps. Digests hash content,
/// never intern ids, so the replica's fingerprint matches the producer's.
fn replay_state<P: Process>(
    ctx: &PackedCtx<P>,
    root: &PackedState,
    meta: &[(u64, u64)],
    parent_idx: u64,
    pid: u64,
    cache: &mut PackedCache<P>,
) -> Result<PackedState, ShardExit> {
    let mut sched = vec![pid as usize];
    let mut idx = parent_idx;
    while idx != 0 {
        let Some(&(parent, stepped)) = meta.get(idx as usize) else {
            // A candidate for a parent we were never told about: protocol
            // corruption, not a local failure.
            return Err(ShardExit::Silent);
        };
        sched.push(stepped as usize);
        idx = parent;
    }
    sched.reverse();
    let mut state = root.clone();
    for pid in sched {
        // Every step of this path succeeded on the shard that admitted it,
        // so a failure here is a genuine model error worth reporting.
        ctx.step_cached(cache, &mut state, pid)
            .map_err(|source| {
                ShardExit::Fatal(SimError::Model {
                    pid,
                    step: state.steps(),
                    source,
                })
            })?;
    }
    Ok(state)
}

// ---------------------------------------------------------------------------
// The shard serving loop
// ---------------------------------------------------------------------------

/// Runs one shard to completion: a thin wrapper over [`shard_run`] that
/// reports fatal failures upstream (side channel + [`K_ERROR`] frame)
/// before exiting.
pub(crate) fn shard_loop<P: Process + Send + Sync>(
    ctx: &PackedCtx<P>,
    root: PackedState,
    inputs: &[u64],
    limits: ExploreLimits,
    cfg: ShardCfg,
    mut sock: UnixStream,
    side: Option<&SideChannel>,
) {
    match shard_run(ctx, root, inputs, limits, cfg, &mut sock, side) {
        Ok(()) | Err(ShardExit::Silent) => {}
        Err(ShardExit::Fatal(err)) => {
            if let Some(side) = side {
                side.put_fatal(err.clone());
            }
            let mut wire = Vec::new();
            encode_frame(K_ERROR, err.to_string().as_bytes(), &mut wire);
            let _ = sock.write_all(&wire);
        }
    }
}

/// The shard's kind-dispatched protocol loop. Owns the shard's quarter of
/// the engine state: a budgeted seen backend over its fingerprint slice, a
/// budgeted frontier store of its owned nodes, the provenance mirror
/// (`meta`) and the round's pending candidates.
#[allow(clippy::too_many_lines)]
fn shard_run<P: Process + Send + Sync>(
    ctx: &PackedCtx<P>,
    root: PackedState,
    inputs: &[u64],
    limits: ExploreLimits,
    cfg: ShardCfg,
    sock: &mut UnixStream,
    side: Option<&SideChannel>,
) -> Result<(), ShardExit> {
    let run = RunCfg {
        solo_budget: limits.solo_check_budget,
        symmetric: cfg.symmetric,
        cache_cap: cache_cap_of(limits.memory_budget),
    };
    let mem = SpillContext::new(limits.memory_budget);
    let mut seen = SeenBackend::new((limits.max_configs / cfg.shards).max(64), &mem);
    let mut frontier = FrontierStore::new(NodeCodec, mem.clone());
    let mut cache: PackedCache<P> = PackedCache::new();
    // Global node index -> (parent global index, pid): the coordinator's
    // link list mirrored shard-side, extended by every COMMIT. Index 0 is
    // the root; its entry is never dereferenced.
    let mut meta: Vec<(u64, u64)> = vec![(u64::MAX, 0)];
    let mut pending: Vec<Cand> = Vec::new();
    // This round's fresh admissions, in verdict order, awaiting indices.
    let mut fresh: Vec<Node> = Vec::new();
    let mut reader = FrameReader::new();

    let root_fp = ctx.digest_cached(&mut cache, &root, cfg.symmetric);
    if shard_of(root_fp, cfg.shards) == cfg.shard {
        let fresh_root = seen.admit(root_fp)?;
        debug_assert!(fresh_root, "fresh seen set: the root cannot be pre-admitted");
        frontier.push(Node {
            index: 0,
            state: root.clone(),
            fp: root_fp,
            expand: true,
        })?;
    }

    loop {
        let Some((kind, payload)) = read_frame(&mut reader, sock) else {
            return Err(ShardExit::Silent);
        };
        match kind {
            K_ROUND => {
                let expand = payload.first().copied().unwrap_or(0) != 0;
                let mut nodes: Vec<Node> = Vec::new();
                while let Some(mut node) = frontier.pop()? {
                    node.expand = expand;
                    nodes.push(node);
                }
                let out = expand_layer(ctx, &nodes, run, cfg, &mut cache);
                // Route candidates: owned ones go straight to pending,
                // remote ones to their owner in batched SUCC frames.
                let mut by_dest: Vec<Vec<Cand>> = (0..cfg.shards).map(|_| Vec::new()).collect();
                for cand in out.cands {
                    let dest = shard_of(cand.fp, cfg.shards);
                    if dest == cfg.shard {
                        pending.push(cand);
                    } else {
                        by_dest[dest].push(cand);
                    }
                }
                for (dest, cands) in by_dest.iter().enumerate() {
                    for batch in cands.chunks(SUCC_BATCH) {
                        let mut p = Vec::new();
                        write_varint(&mut p, dest as u64);
                        write_varint(&mut p, batch.len() as u64);
                        let mut chain = StateChainEncoder::new();
                        for cand in batch {
                            write_varint(&mut p, cand.parent_idx);
                            write_varint(&mut p, cand.pid);
                            p.extend_from_slice(&cand.fp.to_le_bytes());
                            match (&cand.state, cfg.ship_states) {
                                (Some(state), true) => {
                                    p.push(1);
                                    chain.push(state, &mut p);
                                }
                                _ => p.push(0),
                            }
                        }
                        send_frame(sock, K_SUCC, &p)?;
                    }
                }
                // Events: exact values to the side channel, renderings to
                // the wire.
                let mut p = Vec::new();
                p.push(u8::from(out.any_active));
                write_varint(&mut p, out.events.len() as u64);
                for event in &out.events {
                    match event {
                        RoundEvent::SoloFail { idx, pid } => {
                            p.push(0);
                            write_varint(&mut p, *idx);
                            write_varint(&mut p, *pid);
                        }
                        RoundEvent::Failed { idx, err } => {
                            if let Some(side) = side {
                                side.put(*idx, err.clone());
                            }
                            p.push(1);
                            write_varint(&mut p, *idx);
                            let msg = err.to_string();
                            write_varint(&mut p, msg.len() as u64);
                            p.extend_from_slice(msg.as_bytes());
                        }
                    }
                }
                send_frame(sock, K_DONE, &p)?;
            }
            K_SUCC => {
                let mut p = payload.as_slice();
                let dest = rv(&mut p)?;
                if dest as usize != cfg.shard {
                    return Err(ShardExit::Silent); // misrouted: protocol dead
                }
                let count = rv(&mut p)?;
                let mut chain = StateChainDecoder::new();
                for _ in 0..count {
                    let parent_idx = rv(&mut p)?;
                    let pid = rv(&mut p)?;
                    let fp = take_fp(&mut p)?;
                    let state = match take_u8(&mut p)? {
                        0 => None,
                        1 => Some(chain.next(&mut p).map_err(|_| ShardExit::Silent)?),
                        _ => return Err(ShardExit::Silent),
                    };
                    pending.push(Cand {
                        parent_idx,
                        pid,
                        fp,
                        state,
                    });
                }
            }
            K_FLUSH => {
                // The shard-global admission order: the reference's layer
                // order restricted to this shard's owned fingerprints.
                pending.sort_unstable_by_key(|c| (c.parent_idx, c.pid));
                fresh.clear();
                let mut records = Vec::new();
                for cand in pending.drain(..) {
                    if !seen.admit(cand.fp)? {
                        continue;
                    }
                    let state = match cand.state {
                        Some(state) => state,
                        None => replay_state(ctx, &root, &meta, cand.parent_idx, cand.pid, &mut cache)?,
                    };
                    debug_assert_eq!(
                        cand.fp,
                        ctx.digest(&state, cfg.symmetric),
                        "candidate digest out of sync with its state"
                    );
                    let decisions: Vec<u64> = (0..state.n())
                        .filter_map(|p| ctx.decision_cached(&mut cache, &state, p))
                        .collect();
                    let defect = decision_defect(&decisions, inputs);
                    write_varint(&mut records, cand.parent_idx);
                    write_varint(&mut records, cand.pid);
                    match defect {
                        None => records.push(0),
                        Some(Defect::Validity { decided }) => {
                            records.push(1);
                            write_varint(&mut records, decided);
                        }
                        Some(Defect::Agreement { a, b }) => {
                            records.push(2);
                            write_varint(&mut records, a);
                            write_varint(&mut records, b);
                        }
                    }
                    fresh.push(Node {
                        index: 0, // assigned by the COMMIT that follows
                        state,
                        fp: cand.fp,
                        expand: true,
                    });
                }
                let mut p = Vec::new();
                write_varint(&mut p, fresh.len() as u64);
                p.extend_from_slice(&records);
                send_frame(sock, K_VERDICTS, &p)?;
            }
            K_COMMIT => {
                let mut p = payload.as_slice();
                if take_u8(&mut p)? != 0 {
                    // Halt: report telemetry and exit.
                    let mut sp = Vec::new();
                    write_varint(&mut sp, mem.tracker().bytes_spilled());
                    write_varint(&mut sp, mem.tracker().peak_resident_bytes() as u64);
                    write_varint(&mut sp, seen.seen_resident_bytes() as u64);
                    write_varint(&mut sp, ctx.intern_resident_bytes() as u64);
                    write_varint(&mut sp, seen.fpset_disk_bytes());
                    let _ = send_frame(sock, K_STATS, &sp);
                    return Ok(());
                }
                let mine = rv(&mut p)? as usize;
                if mine != fresh.len() {
                    return Err(ShardExit::Silent);
                }
                let mut indices = Vec::with_capacity(mine);
                for _ in 0..mine {
                    indices.push(rv(&mut p)?);
                }
                let link_count = rv(&mut p)? as usize;
                meta.reserve(link_count);
                for _ in 0..link_count {
                    let parent = rv(&mut p)?;
                    let pid = rv(&mut p)?;
                    meta.push((parent, pid));
                }
                for (mut node, idx) in fresh.drain(..).zip(indices) {
                    debug_assert!((idx as usize) < meta.len(), "index past the link mirror");
                    node.index = idx as usize;
                    frontier.push(node)?;
                }
            }
            _ => return Err(ShardExit::Silent),
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// What a hub reader thread delivers for its shard.
enum Inbound {
    /// One reassembled, CRC-verified frame.
    Frame(u8, Vec<u8>),
    /// The shard's stream ended (EOF, IO failure or frame corruption).
    Gone,
}

/// The coordinator's socket fan: one writer per shard on the calling
/// thread, one detached reader thread per shard draining frames into a
/// single channel. Readers *always* drain — that is the deadlock-freedom
/// argument: a shard's writes complete regardless of what the coordinator
/// is doing, so a shard busy expanding eventually returns to its read
/// loop and unblocks any coordinator forward stuck on its socket.
struct Hub {
    writers: Vec<UnixStream>,
    rx: mpsc::Receiver<(usize, Inbound)>,
    gone: Vec<bool>,
    /// Frames this hub sent plus received ([`ExploreStats::frames_exchanged`]).
    frames_exchanged: u64,
    /// Encoded bytes of those frames, headers and CRCs included.
    frame_bytes: u64,
    halted: bool,
}

impl Hub {
    fn new(streams: Vec<UnixStream>) -> std::io::Result<Hub> {
        let shards = streams.len();
        let (tx, rx) = mpsc::channel();
        let mut writers = Vec::with_capacity(shards);
        for (id, stream) in streams.into_iter().enumerate() {
            let mut rd = stream.try_clone()?;
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut reader = FrameReader::new();
                loop {
                    loop {
                        match reader.next_frame() {
                            Ok(Some((kind, payload))) => {
                                if tx.send((id, Inbound::Frame(kind, payload))).is_err() {
                                    return; // hub dropped: nobody is listening
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                let _ = tx.send((id, Inbound::Gone));
                                return;
                            }
                        }
                    }
                    match reader.fill_from(&mut rd) {
                        Ok(0) | Err(_) => {
                            let _ = tx.send((id, Inbound::Gone));
                            return;
                        }
                        Ok(_) => {}
                    }
                }
            });
            writers.push(stream);
        }
        Ok(Hub {
            writers,
            rx,
            gone: vec![false; shards],
            frames_exchanged: 0,
            frame_bytes: 0,
            halted: false,
        })
    }

    fn send(&mut self, shard: usize, kind: u8, payload: &[u8]) -> Result<(), SimError> {
        let mut wire = Vec::with_capacity(frame_len(payload.len()));
        encode_frame(kind, payload, &mut wire);
        self.frames_exchanged += 1;
        self.frame_bytes += wire.len() as u64;
        self.writers[shard]
            .write_all(&wire)
            .map_err(|e| wire_err(format_args!("send to shard {shard}: {e}")))
    }

    fn broadcast(&mut self, kind: u8, payload: &[u8]) -> Result<(), SimError> {
        for shard in 0..self.writers.len() {
            self.send(shard, kind, payload)?;
        }
        Ok(())
    }

    /// The next inbound message from any shard; `None` once every reader
    /// thread has exited and drained.
    fn recv(&mut self) -> Option<(usize, Inbound)> {
        match self.rx.recv().ok()? {
            (shard, Inbound::Gone) => {
                self.gone[shard] = true;
                Some((shard, Inbound::Gone))
            }
            (shard, Inbound::Frame(kind, payload)) => {
                self.frames_exchanged += 1;
                self.frame_bytes += frame_len(payload.len()) as u64;
                Some((shard, Inbound::Frame(kind, payload)))
            }
        }
    }

    /// Best-effort halting COMMIT to every shard; idempotent. Shards that
    /// already exited fail the write, which is fine — they are where we
    /// are sending them.
    fn halt_all(&mut self) {
        if self.halted {
            return;
        }
        self.halted = true;
        let mut wire = Vec::new();
        encode_frame(K_COMMIT, &[1], &mut wire);
        self.frames_exchanged += self.writers.len() as u64;
        self.frame_bytes += (wire.len() * self.writers.len()) as u64;
        for writer in &mut self.writers {
            let _ = writer.write_all(&wire);
        }
    }
}

/// A halt reaches the shards on **every** exit path — normal, error or
/// unwinding — or thread-mode shards would block forever on a socket the
/// reader threads keep open, deadlocking the caller's `thread::scope`.
impl Drop for Hub {
    fn drop(&mut self) {
        self.halt_all();
    }
}

/// A shard died without a [`K_ERROR`] report: prefer the side channel's
/// exact deposit (thread mode), else a rendered diagnostic.
fn shard_died(shard: usize, side: Option<&SideChannel>) -> SimError {
    side.and_then(SideChannel::take_fatal)
        .unwrap_or_else(|| wire_err(format_args!("shard {shard} terminated unexpectedly")))
}

/// A shard reported a fatal failure before exiting.
fn shard_reported(payload: &[u8], side: Option<&SideChannel>) -> SimError {
    side.and_then(SideChannel::take_fatal).unwrap_or_else(|| SimError::Spill {
        detail: format!("dist shard: {}", String::from_utf8_lossy(payload)),
    })
}

/// Varint field read, coordinator side.
fn rv_c(p: &mut &[u8]) -> Result<u64, SimError> {
    read_varint(p).map_err(|_| wire_err("truncated varint field"))
}

/// One entry of the coordinator's merge sweep: a round's solo failures,
/// expansion errors and fresh admissions, totally ordered by
/// `(node index, stage, pid)` — events attach to the node being expanded
/// (stage 0), verdicts to the parent's outgoing edges (stage 1), exactly
/// the reference's within-layer processing order.
enum SweepItem {
    Solo { idx: u64, pid: u64 },
    Failed { idx: u64, msg: String },
    Fresh {
        shard: usize,
        parent_idx: u64,
        pid: u64,
        defect: Option<Defect>,
    },
}

impl SweepItem {
    fn key(&self) -> (u64, u8, u64) {
        match *self {
            SweepItem::Solo { idx, pid } => (idx, 0, pid),
            // An expansion aborts the whole node, before any of its edges
            // (and a node has at most one event), so the pid slot is moot.
            SweepItem::Failed { idx, .. } => (idx, 0, 0),
            SweepItem::Fresh { parent_idx, pid, .. } => (parent_idx, 1, pid),
        }
    }
}

/// Gathers the expansion phase: forwards [`K_SUCC`] frames to their owner
/// as they arrive, collects every shard's [`K_DONE`].
fn gather_round(
    hub: &mut Hub,
    shards: usize,
    side: Option<&SideChannel>,
) -> Result<(bool, Vec<SweepItem>), SimError> {
    let mut any_active = false;
    let mut items = Vec::new();
    let mut done = vec![false; shards];
    while done.iter().any(|d| !d) {
        let Some((shard, inbound)) = hub.recv() else {
            return Err(wire_err("every shard reader exited mid-round"));
        };
        match inbound {
            Inbound::Gone => return Err(shard_died(shard, side)),
            Inbound::Frame(K_SUCC, payload) => {
                let mut peek = payload.as_slice();
                let dest = rv_c(&mut peek)? as usize;
                if dest >= shards || dest == shard {
                    return Err(wire_err("candidate routed to an impossible shard"));
                }
                hub.send(dest, K_SUCC, &payload)?;
            }
            Inbound::Frame(K_DONE, payload) => {
                if done[shard] {
                    return Err(wire_err("shard finished the same round twice"));
                }
                let mut p = payload.as_slice();
                let pp = &mut p;
                let active = {
                    let (&b, rest) = pp.split_first().ok_or_else(|| wire_err("empty DONE"))?;
                    *pp = rest;
                    b != 0
                };
                any_active |= active;
                let events = rv_c(pp)?;
                for _ in 0..events {
                    let (&tag, rest) = pp.split_first().ok_or_else(|| wire_err("truncated event"))?;
                    *pp = rest;
                    let idx = rv_c(pp)?;
                    match tag {
                        0 => {
                            let pid = rv_c(pp)?;
                            items.push(SweepItem::Solo { idx, pid });
                        }
                        1 => {
                            let len = rv_c(pp)? as usize;
                            if len > pp.len() {
                                return Err(wire_err("event message past payload end"));
                            }
                            let (msg, rest) = pp.split_at(len);
                            *pp = rest;
                            items.push(SweepItem::Failed {
                                idx,
                                msg: String::from_utf8_lossy(msg).into_owned(),
                            });
                        }
                        _ => return Err(wire_err("unknown event tag")),
                    }
                }
                done[shard] = true;
            }
            Inbound::Frame(K_ERROR, payload) => return Err(shard_reported(&payload, side)),
            Inbound::Frame(..) => return Err(wire_err("unexpected frame kind during a round")),
        }
    }
    Ok((any_active, items))
}

/// Gathers one [`K_VERDICTS`] frame per shard after the flush barrier.
fn gather_verdicts(
    hub: &mut Hub,
    shards: usize,
    side: Option<&SideChannel>,
    items: &mut Vec<SweepItem>,
) -> Result<(), SimError> {
    let mut got = vec![false; shards];
    while got.iter().any(|g| !g) {
        let Some((shard, inbound)) = hub.recv() else {
            return Err(wire_err("every shard reader exited mid-flush"));
        };
        match inbound {
            Inbound::Gone => return Err(shard_died(shard, side)),
            Inbound::Frame(K_VERDICTS, payload) => {
                if got[shard] {
                    return Err(wire_err("shard flushed the same round twice"));
                }
                let mut p = payload.as_slice();
                let count = rv_c(&mut p)?;
                for _ in 0..count {
                    let parent_idx = rv_c(&mut p)?;
                    let pid = rv_c(&mut p)?;
                    let (&tag, rest) =
                        p.split_first().ok_or_else(|| wire_err("truncated verdict"))?;
                    p = rest;
                    let defect = match tag {
                        0 => None,
                        1 => Some(Defect::Validity {
                            decided: rv_c(&mut p)?,
                        }),
                        2 => Some(Defect::Agreement {
                            a: rv_c(&mut p)?,
                            b: rv_c(&mut p)?,
                        }),
                        _ => return Err(wire_err("unknown defect tag")),
                    };
                    items.push(SweepItem::Fresh {
                        shard,
                        parent_idx,
                        pid,
                        defect,
                    });
                }
                got[shard] = true;
            }
            Inbound::Frame(K_ERROR, payload) => return Err(shard_reported(&payload, side)),
            Inbound::Frame(..) => return Err(wire_err("unexpected frame kind during a flush")),
        }
    }
    Ok(())
}

/// Aggregated shard telemetry.
#[derive(Default)]
struct AggStats {
    bytes_spilled: u64,
    peak_resident: usize,
    seen_resident: usize,
    intern_resident: usize,
    fpset_disk: u64,
}

/// Halts every shard and folds their [`K_STATS`] reports: additive
/// counters sum; residency high-water marks take the max (per-shard
/// budgets bind per shard, and thread-mode shards all report the same
/// shared intern tables).
fn drain_stats(hub: &mut Hub, shards: usize) -> AggStats {
    hub.halt_all();
    let mut agg = AggStats::default();
    let mut got = vec![false; shards];
    while (0..shards).any(|s| !got[s] && !hub.gone[s]) {
        let Some((shard, inbound)) = hub.recv() else { break };
        match inbound {
            Inbound::Frame(kind, payload) if kind == K_STATS && !got[shard] => {
                let mut p = payload.as_slice();
                let rv0 = |p: &mut &[u8]| read_varint(p).unwrap_or(0);
                agg.bytes_spilled += rv0(&mut p);
                agg.peak_resident = agg.peak_resident.max(rv0(&mut p) as usize);
                agg.seen_resident += rv0(&mut p) as usize;
                agg.intern_resident = agg.intern_resident.max(rv0(&mut p) as usize);
                agg.fpset_disk += rv0(&mut p);
                got[shard] = true;
            }
            // Stray in-flight frames from the cut round and duplicate
            // Gones are expected here; skip them.
            Inbound::Frame(..) | Inbound::Gone => {}
        }
    }
    agg
}

/// The parent-link index of global node `idx`: the coordinator's link
/// list has one entry per non-root admission, in admission order, so node
/// `i > 0` owns link `i - 1`.
fn link_of(idx: u64) -> usize {
    if idx == 0 {
        NO_LINK
    } else {
        idx as usize - 1
    }
}

/// The coordinator's round loop: the distributed counterpart of the
/// packed engine's committer. Every stateful decision — admission count,
/// cap, links, violation selection, completeness, layer bookkeeping —
/// happens here, single-threaded, on the merge sweep's totally ordered
/// stream; shards only influence *when* verdicts arrive, never what the
/// sweep does with them.
fn coordinate_loop(
    hub: &mut Hub,
    shards: usize,
    limits: &ExploreLimits,
    root_violation: Option<ExploreOutcome>,
    side: Option<&SideChannel>,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    let mut configs = 1usize; // the root
    let mut links: Vec<Link> = Vec::new();
    let mut complete = true;
    let mut frontier_peak = 1usize;
    let mut depth_reached = 0usize;
    let mut frontier_len = 1usize;
    macro_rules! finish {
        ($outcome:expr) => {{
            let outcome = $outcome;
            let agg = drain_stats(hub, shards);
            return Ok((
                outcome,
                ExploreStats {
                    configs,
                    frontier_peak,
                    depth_reached,
                    bytes_spilled: agg.bytes_spilled,
                    peak_resident_bytes: agg.peak_resident,
                    seen_resident_bytes: agg.seen_resident,
                    intern_resident_bytes: agg.intern_resident,
                    fpset_disk_bytes: agg.fpset_disk,
                    checkpoint_bytes: 0,
                    checkpoint_ms: 0,
                    frames_exchanged: hub.frames_exchanged,
                    frame_bytes: hub.frame_bytes,
                },
            ));
        }};
    }

    if let Some(violation) = root_violation {
        finish!(violation);
    }
    loop {
        if frontier_len == 0 {
            finish!(ExploreOutcome::Clean { configs, complete });
        }
        // The layer is fully admitted by the time the loop comes back
        // around, so this is the reference's at-layer-top peak — partial
        // layers cut mid-sweep never reach here.
        frontier_peak = frontier_peak.max(frontier_len);
        let expand = depth_reached < limits.depth;
        hub.broadcast(K_ROUND, &[u8::from(expand)])?;
        let (any_active, mut items) = gather_round(hub, shards, side)?;
        if !expand && any_active {
            complete = false;
        }
        hub.broadcast(K_FLUSH, &[])?;
        gather_verdicts(hub, shards, side, &mut items)?;
        items.sort_by_key(SweepItem::key);
        let mut per_shard: Vec<Vec<u64>> = (0..shards).map(|_| Vec::new()).collect();
        let mut round_links: Vec<(u64, u64)> = Vec::new();
        for item in items {
            match item {
                SweepItem::Solo { idx, pid } => {
                    finish!(ExploreOutcome::ObstructionFailure {
                        pid: pid as usize,
                        schedule: schedule_of(&links, link_of(idx)),
                    });
                }
                SweepItem::Failed { idx, msg } => {
                    let err = side
                        .and_then(|sc| sc.take(idx))
                        .unwrap_or(SimError::Spill { detail: msg });
                    hub.halt_all();
                    return Err(err);
                }
                SweepItem::Fresh {
                    shard,
                    parent_idx,
                    pid,
                    defect,
                } => {
                    configs += 1;
                    if configs > limits.max_configs {
                        // Mirror of the reference: the over-cap admission
                        // stays counted, nothing else of the layer does —
                        // not even its link or violation check.
                        finish!(ExploreOutcome::Clean {
                            configs,
                            complete: false,
                        });
                    }
                    let child_link = links.len();
                    links.push((link_of(parent_idx), pid as usize));
                    if let Some(defect) = defect {
                        finish!(defect.into_outcome(schedule_of(&links, child_link)));
                    }
                    per_shard[shard].push((child_link + 1) as u64);
                    round_links.push((parent_idx, pid));
                }
            }
        }
        if expand {
            depth_reached += 1;
        }
        frontier_len = round_links.len();
        if frontier_len == 0 {
            continue; // the loop top finishes with the final counters
        }
        for (shard, indices) in per_shard.iter().enumerate() {
            let mut p = vec![0u8];
            write_varint(&mut p, indices.len() as u64);
            for &idx in indices {
                write_varint(&mut p, idx);
            }
            write_varint(&mut p, round_links.len() as u64);
            for &(parent_idx, pid) in &round_links {
                write_varint(&mut p, parent_idx);
                write_varint(&mut p, pid);
            }
            hub.send(shard, K_COMMIT, &p)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Stats for a root-violation exit taken before any shard machinery runs.
fn root_stats() -> ExploreStats {
    ExploreStats {
        configs: 1,
        frontier_peak: 1,
        depth_reached: 0,
        bytes_spilled: 0,
        peak_resident_bytes: 0,
        seen_resident_bytes: 0,
        intern_resident_bytes: 0,
        fpset_disk_bytes: 0,
        checkpoint_bytes: 0,
        checkpoint_ms: 0,
        frames_exchanged: 0,
        frame_bytes: 0,
    }
}

/// Sharded exploration within one process: shard threads partition the
/// fingerprint space and exchange delta-framed candidates over socketpairs
/// with a coordinator on the calling thread. Outcomes and semantic stats
/// are bit-identical to [`crate::checker::explore_stats`] and
/// [`crate::reference::reference_explore`] at any `shards × workers ×
/// memory_budget` — see the module docs for the argument.
///
/// # Errors
///
/// Propagates [`SimError`] exactly as the single-process engines do, plus
/// [`SimError::Spill`]-wrapped wire failures if a shard dies.
///
/// # Panics
///
/// Panics if `cfg.shards == 0`.
pub fn explore_sharded<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    cfg: DistConfig,
) -> Result<(ExploreOutcome, ExploreStats), SimError>
where
    P::Proc: Send + Sync,
{
    assert!(cfg.shards >= 1, "explore_sharded needs at least one shard");
    let machine = Machine::start(protocol, inputs)?;
    let ctx = machine.packed_ctx();
    let root = machine.pack(&ctx);
    if let Some(violation) = decision_violation(&machine, inputs, NO_LINK, &[]) {
        return Ok((violation, root_stats()));
    }
    let side = SideChannel::new();
    let mut coord_ends = Vec::with_capacity(cfg.shards);
    let mut shard_ends = Vec::with_capacity(cfg.shards);
    for _ in 0..cfg.shards {
        let (coord, shard) =
            UnixStream::pair().map_err(|e| wire_err(format_args!("socketpair: {e}")))?;
        coord_ends.push(coord);
        shard_ends.push(shard);
    }
    std::thread::scope(|scope| {
        for (shard, sock) in shard_ends.into_iter().enumerate() {
            let ctx = &ctx;
            let side = &side;
            let root = root.clone();
            let scfg = ShardCfg {
                shard,
                shards: cfg.shards,
                workers: cfg.workers,
                ship_states: true,
                symmetric: cfg.symmetric,
            };
            scope.spawn(move || shard_loop(ctx, root, inputs, limits, scfg, sock, Some(side)));
        }
        let mut hub = Hub::new(coord_ends).map_err(|e| wire_err(format_args!("hub: {e}")))?;
        coordinate_loop(&mut hub, cfg.shards, &limits, None, Some(&side))
    })
}

/// Multi-process coordinator: drives already-connected shard processes
/// (ordered by shard id — see [`accept_shards`]) through the round
/// protocol. The coordinator needs no packed context of its own: root
/// ownership and candidate states are shard-side concerns; it holds only
/// the provenance links and the counters.
///
/// # Errors
///
/// As [`explore_sharded`]; a dead shard process surfaces as
/// [`SimError::Spill`].
///
/// # Panics
///
/// Panics if `shard_streams.len() != cfg.shards` or `cfg.shards == 0`.
pub fn coordinate<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    cfg: DistConfig,
    shard_streams: Vec<UnixStream>,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    assert!(cfg.shards >= 1, "coordinate needs at least one shard");
    assert_eq!(
        shard_streams.len(),
        cfg.shards,
        "one connected stream per shard"
    );
    let machine = Machine::start(protocol, inputs)?;
    let root_violation = decision_violation(&machine, inputs, NO_LINK, &[]);
    let mut hub = Hub::new(shard_streams).map_err(|e| wire_err(format_args!("hub: {e}")))?;
    coordinate_loop(&mut hub, cfg.shards, &limits, root_violation, None)
}

/// Shard-process entry point: builds the protocol's packed context,
/// announces itself with a HELLO frame and serves the round protocol
/// until a halting COMMIT (or the coordinator vanishes). Frames carry
/// fingerprints and provenance only — intern ids are local to this
/// process, so admitted remote candidates are replayed from the root.
///
/// # Errors
///
/// Propagates [`SimError`] from starting the protocol's machine and
/// [`SimError::Spill`] if the coordinator is unreachable at HELLO time.
pub fn shard_serve<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    cfg: DistConfig,
    shard: usize,
    mut sock: UnixStream,
) -> Result<(), SimError>
where
    P::Proc: Send + Sync,
{
    assert!(shard < cfg.shards, "shard id within the partition");
    let machine = Machine::start(protocol, inputs)?;
    let ctx = machine.packed_ctx();
    let root = machine.pack(&ctx);
    let mut hello = Vec::new();
    write_varint(&mut hello, shard as u64);
    let mut wire = Vec::new();
    encode_frame(K_HELLO, &hello, &mut wire);
    sock.write_all(&wire)
        .map_err(|e| wire_err(format_args!("hello: {e}")))?;
    let scfg = ShardCfg {
        shard,
        shards: cfg.shards,
        workers: cfg.workers,
        ship_states: false,
        symmetric: cfg.symmetric,
    };
    shard_loop(&ctx, root, inputs, limits, scfg, sock, None);
    Ok(())
}

/// Accepts `shards` connections on `listener` and orders them by the
/// shard id each announces in its HELLO frame, so [`coordinate`] can
/// address shard `i` at index `i` regardless of connection order.
///
/// # Errors
///
/// IO failures from the listener, plus `InvalidData` for a connection
/// whose first frame is not a well-formed HELLO with a fresh id.
pub fn accept_shards(listener: &UnixListener, shards: usize) -> std::io::Result<Vec<UnixStream>> {
    use std::io::{Error, ErrorKind};
    let invalid = |what: &str| Error::new(ErrorKind::InvalidData, format!("dist hello: {what}"));
    let mut slots: Vec<Option<UnixStream>> = (0..shards).map(|_| None).collect();
    for _ in 0..shards {
        let (mut sock, _) = listener.accept()?;
        let mut reader = FrameReader::new();
        let id = loop {
            match reader.next_frame() {
                Ok(Some((K_HELLO, payload))) => {
                    let mut p = payload.as_slice();
                    break read_varint(&mut p).map_err(|_| invalid("truncated id"))? as usize;
                }
                Ok(Some(_)) => return Err(invalid("expected a HELLO frame")),
                Err(_) => return Err(invalid("corrupt greeting")),
                Ok(None) => {
                    if reader.fill_from(&mut sock)? == 0 {
                        return Err(invalid("connection closed before HELLO"));
                    }
                }
            }
        };
        if id >= shards {
            return Err(invalid("shard id out of range"));
        }
        if slots[id].replace(sock).is_some() {
            return Err(invalid("duplicate shard id"));
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_explore;
    use crate::strawmen::{OneMaxRegister, OneRegister};
    use cbh_core::cas::CasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;

    fn agree<P: Protocol>(protocol: &P, inputs: &[u64], limits: ExploreLimits)
    where
        P::Proc: Send + Sync,
    {
        let oracle = reference_explore(protocol, inputs, limits).unwrap();
        for shards in [1, 2, 3] {
            for workers in [1, 2] {
                let cfg = DistConfig {
                    shards,
                    workers,
                    symmetric: false,
                };
                let dist = explore_sharded(protocol, inputs, limits, cfg).unwrap();
                assert_eq!(
                    dist, oracle,
                    "sharded run diverged at {shards} shards x {workers} workers"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_reference_on_clean_protocols() {
        agree(
            &CasConsensus::new(3),
            &[0, 1, 2],
            ExploreLimits {
                depth: 10,
                max_configs: 100_000,
                solo_check_budget: Some(10),
                memory_budget: None,
                checkpoint_every: None,
            },
        );
    }

    #[test]
    fn sharded_matches_reference_on_violations_including_the_schedule() {
        agree(&OneMaxRegister::new(), &[0, 1], ExploreLimits::default());
        agree(&OneRegister::new(3), &[0, 1, 1], ExploreLimits::default());
    }

    #[test]
    fn sharded_matches_reference_under_the_config_cap() {
        for cap in [1, 2, 7, 50, 400] {
            agree(
                &MaxRegConsensus::new(2),
                &[1, 0],
                ExploreLimits {
                    depth: 12,
                    max_configs: cap,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
    }

    #[test]
    fn sharded_matches_reference_at_shallow_horizons() {
        for depth in 0..8 {
            agree(
                &MaxRegConsensus::new(3),
                &[0, 1, 2],
                ExploreLimits {
                    depth,
                    max_configs: 100_000,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
    }

    #[test]
    fn sharded_matches_reference_under_a_starvation_budget() {
        // memory_budget: Some(0) forces every tier (frontier spill, seen-set
        // disk runs, interner eviction) onto its most hostile path in every
        // shard; the semantic triple must not move.
        agree(
            &MaxRegConsensus::new(2),
            &[0, 1],
            ExploreLimits {
                depth: 9,
                max_configs: 100_000,
                solo_check_budget: None,
                memory_budget: Some(0),
                checkpoint_every: None,
            },
        );
    }

    #[test]
    fn replay_mode_matches_reference_without_shipping_states() {
        // Exercise the multi-process wire discipline (ship_states: false —
        // owners replay admitted remote candidates from the root) without
        // spawning processes: each shard thread builds its own packed
        // context, exactly as a child process would.
        let protocol = MaxRegConsensus::new(2);
        let inputs = [0u64, 1];
        let limits = ExploreLimits {
            depth: 8,
            max_configs: 100_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        };
        let oracle = reference_explore(&protocol, &inputs, limits).unwrap();
        for shards in [1usize, 2, 3] {
            let mut coord_ends = Vec::new();
            let mut shard_ends = Vec::new();
            for _ in 0..shards {
                let (c, s) = UnixStream::pair().unwrap();
                coord_ends.push(c);
                shard_ends.push(s);
            }
            let dist = std::thread::scope(|scope| {
                for (shard, sock) in shard_ends.into_iter().enumerate() {
                    let protocol = &protocol;
                    let inputs = &inputs;
                    scope.spawn(move || {
                        let machine = Machine::start(protocol, inputs).unwrap();
                        let ctx = machine.packed_ctx();
                        let root = machine.pack(&ctx);
                        let scfg = ShardCfg {
                            shard,
                            shards,
                            workers: 1,
                            ship_states: false,
                            symmetric: false,
                        };
                        shard_loop(&ctx, root, inputs, limits, scfg, sock, None);
                    });
                }
                let cfg = DistConfig {
                    shards,
                    workers: 1,
                    symmetric: false,
                };
                coordinate(&protocol, &inputs, limits, cfg, coord_ends)
            })
            .unwrap();
            assert_eq!(dist, oracle, "replay-mode run diverged at {shards} shards");
        }
    }

    #[test]
    fn cross_shard_exchange_is_counted() {
        let protocol = MaxRegConsensus::new(2);
        let limits = ExploreLimits {
            depth: 8,
            max_configs: 100_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        };
        let cfg = DistConfig {
            shards: 2,
            workers: 1,
            symmetric: false,
        };
        let (_, stats) = explore_sharded(&protocol, &[0, 1], limits, cfg).unwrap();
        assert!(stats.frames_exchanged > 0, "round protocol moved no frames");
        assert!(stats.frame_bytes > 0, "round protocol moved no bytes");
    }

    #[test]
    fn shard_of_partitions_the_full_space() {
        for shards in 1..=5 {
            for hi in 0..64u128 {
                let fp = hi << 64 | 0xdead_beef;
                assert!(shard_of(fp, shards) < shards);
            }
        }
        // Partitioning keys on the high half only: the low half never moves
        // a fingerprint across shards.
        assert_eq!(shard_of(7 << 64, 3), shard_of(7 << 64 | u128::MAX >> 64, 3));
    }
}
