//! The previous-generation frontier engine, preserved as a measured baseline
//! and as one more independently implemented backend.
//!
//! This is the machine-walking explorer the packed engine replaced: an
//! iterative breadth-first frontier of live [`Machine`]s that memoises
//! incremental Zobrist digests ([`crate::checker::zobrist_step`]), walks
//! edges with step/undo, and parallelises each layer with a **per-depth
//! barrier** — the frontier is chunked, one scoped thread expands each
//! chunk, and the results are re-concatenated in chunk order before the
//! next layer starts.
//!
//! It is kept (rather than deleted) for two reasons:
//!
//! - the `bench_explore` harness measures the packed work-stealing engine
//!   *against* it, so the claimed speedups stay reproducible from the repo
//!   alone;
//! - it is a third full implementation of the exploration semantics
//!   (alongside the packed engine and the clone-based
//!   [`crate::reference::reference_explore`]), and all three must produce
//!   bit-identical `(ExploreOutcome, ExploreStats)` on every input.

use crate::checker::{
    decision_violation, schedule_of, zobrist_fingerprint, zobrist_step, ExploreLimits,
    ExploreOutcome, ExploreStats, Link, NO_LINK,
};
use crate::fpset::{AdmitSet, SeenBackend};
use crate::frontier::{FrontierStore, SpillCodec, SpillContext};
use cbh_model::packed::delta::{read_varint, write_varint};
use cbh_model::{decode_flat, encode_flat, PackedCtx, Process, Protocol};
use cbh_sim::{Machine, SimError};

/// A frontier entry: a live configuration, its incremental fingerprint, and
/// its link for schedule reconstruction.
#[derive(Clone)]
struct FrontierNode<Proc: Process> {
    machine: Machine<Proc>,
    fp: u128,
    link: usize,
}

/// Spill codec for machine-walking frontier nodes: the machine is packed
/// into the flat [`cbh_model::PackedState`] wire form and rebuilt on the way
/// back in. Storage-only coupling — the engine itself still walks live
/// machines with step/undo; packing is how a budgeted layer leaves RAM.
/// Records are flat (no delta chaining): the machine would have to be packed
/// twice per record to recover a delta base, which costs more than the bytes
/// it saves.
struct MachineCodec<'c, P: Process> {
    ctx: &'c PackedCtx<P>,
}

impl<P: Process> Clone for MachineCodec<'_, P> {
    fn clone(&self) -> Self {
        MachineCodec { ctx: self.ctx }
    }
}

impl<P: Process> SpillCodec for MachineCodec<'_, P> {
    type Item = FrontierNode<P>;

    fn encode(&self, node: &FrontierNode<P>, _prev: Option<&FrontierNode<P>>, out: &mut Vec<u8>) {
        write_varint(out, node.link as u64);
        out.extend_from_slice(&node.fp.to_le_bytes());
        encode_flat(&node.machine.pack(self.ctx), out);
    }

    fn decode(&self, mut bytes: &[u8], _prev: Option<&FrontierNode<P>>) -> FrontierNode<P> {
        let link = read_varint(&mut bytes).expect("legacy record: link") as usize;
        let (fp_bytes, state_bytes) = bytes.split_at(16);
        let fp = u128::from_le_bytes(fp_bytes.try_into().expect("16-byte digest"));
        let state = decode_flat(state_bytes).expect("legacy record: state");
        FrontierNode {
            machine: Machine::from_packed(self.ctx, &state),
            fp,
            link,
        }
    }

    /// Records are flat, so the stream-back chain has no base to maintain:
    /// skip the default's bookkeeping clone of every decoded node.
    fn decode_step(
        &self,
        bytes: &[u8],
        _prev: &mut Option<FrontierNode<P>>,
    ) -> FrontierNode<P> {
        self.decode(bytes, None)
    }

    fn cost(&self, node: &FrontierNode<P>) -> usize {
        // Approximate: inline process states plus a nominal per-cell and
        // per-decision footprint (heap owned by `P` is invisible from here).
        let n = node.machine.n();
        std::mem::size_of::<FrontierNode<P>>()
            + n * (std::mem::size_of::<P>() + std::mem::size_of::<Option<u64>>())
            + node.machine.memory().len() * 24
    }
}

/// What one layer pass must do per node.
#[derive(Clone, Copy)]
struct LayerJob {
    expand: bool,
    solo_budget: Option<u64>,
    symmetric: bool,
}

/// What the expansion phase produced for one frontier node.
struct Expansion {
    /// First active pid whose solo run failed to decide, if solo checks ran.
    solo_failure: Option<usize>,
    /// `(pid, successor fingerprint)` per active process, in pid order.
    edges: Vec<(usize, u128)>,
}

type NodeOut = Result<Expansion, SimError>;

/// Walks every outgoing edge of `node` — step, fingerprint the successor
/// incrementally, undo — without materialising any successor machine.
fn edge_fingerprints<Proc: Process>(
    node: &mut FrontierNode<Proc>,
    symmetric: bool,
) -> Result<Vec<(usize, u128)>, SimError> {
    let active: Vec<usize> = node.machine.active_iter().collect();
    let mut edges = Vec::with_capacity(active.len());
    for pid in active {
        let (fp, undo) = zobrist_step(&mut node.machine, pid, node.fp, symmetric)?;
        node.machine.undo_step(undo);
        edges.push((pid, fp));
    }
    Ok(edges)
}

/// Expansion work for one admitted configuration: optional solo probes, then
/// one fingerprinted edge per active process, in pid order.
fn expand_node<Proc: Process>(node: &mut FrontierNode<Proc>, job: LayerJob) -> NodeOut {
    if let Some(budget) = job.solo_budget {
        for pid in node.machine.active_iter() {
            let mut probe = node.machine.clone();
            if probe.run_solo(pid, budget)?.is_none() {
                return Ok(Expansion {
                    solo_failure: Some(pid),
                    edges: Vec::new(),
                });
            }
        }
    }
    let edges = if job.expand {
        edge_fingerprints(node, job.symmetric)?
    } else {
        Vec::new()
    };
    Ok(Expansion {
        solo_failure: None,
        edges,
    })
}

/// Sequential layer pass: every node in frontier order.
fn expand_sequential<Proc: Process>(
    mut nodes: Vec<FrontierNode<Proc>>,
    job: LayerJob,
) -> (Vec<FrontierNode<Proc>>, Vec<NodeOut>) {
    let outs = nodes.iter_mut().map(|n| expand_node(n, job)).collect();
    (nodes, outs)
}

/// Parallel layer pass: contiguous chunks, one scoped worker thread per
/// chunk, results re-concatenated **in chunk order** — element-for-element
/// identical to [`expand_sequential`]. This per-layer spawn-and-join barrier
/// is exactly what the packed engine's persistent work-stealing pool
/// removes.
fn expand_parallel<Proc>(
    nodes: Vec<FrontierNode<Proc>>,
    job: LayerJob,
    workers: usize,
) -> (Vec<FrontierNode<Proc>>, Vec<NodeOut>)
where
    Proc: Process + Send,
{
    // Below this many nodes per worker, thread spawn overhead dominates.
    const MIN_NODES_PER_WORKER: usize = 16;
    let workers = workers.min(nodes.len() / MIN_NODES_PER_WORKER);
    if workers <= 1 {
        return expand_sequential(nodes, job);
    }
    let chunk_size = nodes.len().div_ceil(workers);
    let mut chunks: Vec<Vec<FrontierNode<Proc>>> = Vec::with_capacity(workers);
    let mut rest = nodes;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let mut nodes = Vec::new();
    let mut outs = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|part| scope.spawn(move || expand_sequential(part, job)))
            .collect();
        for handle in handles {
            let (part_nodes, part_outs) = handle.join().expect("frontier worker panicked");
            nodes.extend(part_nodes);
            outs.extend(part_outs);
        }
    });
    (nodes, outs)
}

/// The barrier-synchronised frontier engine. The per-depth barrier is
/// unchanged from its tour as the production explorer; what changed is where
/// a layer *lives*: both the current and the next layer are budgeted
/// [`FrontierStore`]s, and a layer is materialised for expansion in frontier-
/// order blocks of at most `block_cap` nodes, so a spilling run never holds
/// more than a block of live machines (plus the admissions in flight).
/// Block partitioning preserves frontier order exactly, which keeps the
/// outcome bit-identical to the unbounded whole-layer pass.
fn explore_core<Proc, F>(
    root: Machine<Proc>,
    inputs: &[u64],
    limits: ExploreLimits,
    symmetry: bool,
    block_cap: usize,
    mut expand_layer: F,
) -> Result<(ExploreOutcome, ExploreStats), SimError>
where
    Proc: Process,
    F: FnMut(Vec<FrontierNode<Proc>>, LayerJob) -> (Vec<FrontierNode<Proc>>, Vec<NodeOut>),
{
    let mut links: Vec<Link> = Vec::new();
    let mut complete = true;
    let mut frontier_peak = 1usize;
    let mut depth = 0usize;
    let ctx = root.packed_ctx();
    let mem = SpillContext::new(limits.memory_budget);
    let codec = MachineCodec { ctx: &ctx };
    // The seen set routes through the shared backend: an exact `HashSet`
    // while unbudgeted, the tiered fingerprint store under a budget.
    // `configs` mirrors its admission count one-for-one.
    let mut seen = SeenBackend::new(limits.max_configs, &mem);
    let mut configs = 0usize;
    // Intern-table bytes charged to the tracker so far — the legacy engine
    // only interns while packing spilled nodes, but those bytes are resident
    // and count against the budget like everything else.
    let mut interned_charged = 0usize;
    macro_rules! stats {
        () => {
            ExploreStats {
                configs,
                frontier_peak,
                depth_reached: depth,
                bytes_spilled: mem.tracker().bytes_spilled(),
                peak_resident_bytes: mem.tracker().peak_resident_bytes(),
                seen_resident_bytes: seen.seen_resident_bytes(),
                intern_resident_bytes: ctx.intern_resident_bytes(),
                fpset_disk_bytes: seen.fpset_disk_bytes(),
                checkpoint_bytes: 0,
                checkpoint_ms: 0,
                frames_exchanged: 0,
                frame_bytes: 0,
            }
        };
    }

    let root_fp = zobrist_fingerprint(&root, symmetry);
    let root_new = seen.admit(root_fp)?;
    debug_assert!(root_new, "fresh run: the root cannot be pre-admitted");
    configs += 1;
    if let Some(violation) = decision_violation(&root, inputs, NO_LINK, &links) {
        return Ok((violation, stats!()));
    }
    let mut frontier = FrontierStore::new(codec.clone(), mem.clone());
    frontier.push(FrontierNode {
        machine: root,
        fp: root_fp,
        link: NO_LINK,
    })?;

    'layers: while !frontier.is_empty() {
        frontier_peak = frontier_peak.max(frontier.len());
        let expand = depth < limits.depth;
        if !expand && limits.solo_check_budget.is_none() {
            // Nothing left to check at the horizon: the cutoff hides exactly
            // the nodes with moves remaining.
            while let Some(node) = frontier.pop()? {
                if node.machine.active_iter().next().is_some() {
                    complete = false;
                    break;
                }
            }
            break;
        }
        let job = LayerJob {
            expand,
            solo_budget: limits.solo_check_budget,
            symmetric: symmetry,
        };
        let mut next = FrontierStore::new(codec.clone(), mem.clone());
        while !frontier.is_empty() {
            // Fold intern growth from the spill codec into the shared
            // resident total before the block's admissions consult it.
            let interned = ctx.intern_resident_bytes();
            if interned > interned_charged {
                mem.tracker().add_resident(interned - interned_charged);
                interned_charged = interned;
            }
            let block = frontier.pop_block(block_cap)?;
            if !expand
                && block
                    .iter()
                    .any(|n| n.machine.active_iter().next().is_some())
            {
                complete = false;
            }
            let (nodes, results) = expand_layer(block, job);
            debug_assert_eq!(results.len(), nodes.len());
            for (node, result) in nodes.iter().zip(results) {
                let expansion = result?;
                if let Some(pid) = expansion.solo_failure {
                    return Ok((
                        ExploreOutcome::ObstructionFailure {
                            pid,
                            schedule: schedule_of(&links, node.link),
                        },
                        stats!(),
                    ));
                }
                for (pid, child_fp) in expansion.edges {
                    if !seen.admit(child_fp)? {
                        continue;
                    }
                    configs += 1;
                    if configs > limits.max_configs {
                        complete = false;
                        break 'layers;
                    }
                    let child = node.machine.branch_step(pid)?;
                    debug_assert_eq!(
                        child_fp,
                        zobrist_fingerprint(&child, symmetry),
                        "incremental fingerprint out of sync with full scan"
                    );
                    let link = links.len();
                    links.push((node.link, pid));
                    if let Some(violation) = decision_violation(&child, inputs, link, &links) {
                        return Ok((violation, stats!()));
                    }
                    next.push(FrontierNode {
                        machine: child,
                        fp: child_fp,
                        link,
                    })?;
                }
            }
        }
        frontier = next;
        if expand {
            depth += 1;
        }
    }
    let outcome = ExploreOutcome::Clean { configs, complete };
    Ok((outcome, stats!()))
}

/// Runs the legacy barrier engine: `workers` threads per layer (1 = stay on
/// the calling thread), optional symmetry reduction.
///
/// Outcomes and stats are bit-identical to [`crate::checker::explore_stats`]
/// and to [`crate::reference::reference_explore`] on every input — the
/// conformance suite holds all three engines to that bar.
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
pub fn legacy_explore_stats<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    workers: usize,
    symmetry: bool,
) -> Result<(ExploreOutcome, ExploreStats), SimError>
where
    P::Proc: Send,
{
    // Below this many configurations, per-layer thread fan-out costs more
    // than it saves (the packed engine draws the same line — its
    // MIN_PARALLEL_CONFIGS). Tiny state spaces are served sequentially; for
    // unknown sizes a capped sequential probe decides. The cap only fires at
    // `configs == cap + 1`, so a probe that stays at or under the threshold
    // returned exactly the uncapped outcome and is final.
    const MIN_PARALLEL_CONFIGS: usize = 1024;
    let sequential = |limits: ExploreLimits| -> Result<(ExploreOutcome, ExploreStats), SimError> {
        let machine = Machine::start(protocol, inputs)?;
        let block_cap = if limits.memory_budget.is_some() {
            64
        } else {
            usize::MAX
        };
        explore_core(machine, inputs, limits, symmetry, block_cap, expand_sequential)
    };
    if workers > 1 && limits.max_configs > MIN_PARALLEL_CONFIGS {
        let probe_limits = ExploreLimits {
            max_configs: MIN_PARALLEL_CONFIGS,
            ..limits
        };
        let probe = sequential(probe_limits)?;
        if probe.1.configs <= MIN_PARALLEL_CONFIGS {
            return Ok(probe);
        }
    } else if workers > 1 {
        return sequential(limits);
    }
    let machine = Machine::start(protocol, inputs)?;
    // Unbudgeted runs materialise whole layers at once, exactly as this
    // engine always did; budgeted runs cap the live block so a spilled layer
    // streams through RAM instead of landing in it (blocks stay large enough
    // for the per-layer thread fan-out to engage).
    let block_cap = if limits.memory_budget.is_some() {
        workers.max(1) * 64
    } else {
        usize::MAX
    };
    if workers <= 1 {
        explore_core(machine, inputs, limits, symmetry, block_cap, expand_sequential)
    } else {
        explore_core(machine, inputs, limits, symmetry, block_cap, |nodes, job| {
            expand_parallel(nodes, job, workers)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::explore_stats;
    use crate::strawmen::{OneMaxRegister, OneRegister};
    use cbh_core::cas::CasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;

    #[test]
    fn legacy_engine_matches_the_packed_engine_bit_for_bit() {
        let limits = ExploreLimits {
            depth: 10,
            max_configs: 100_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        };
        // Clean, violating, capped and shallow workloads; 1 and 4 workers.
        for workers in [1, 4] {
            for cap in [limits.max_configs, 37] {
                let limits = ExploreLimits {
                    max_configs: cap,
                    ..limits
                };
                let packed = explore_stats(&MaxRegConsensus::new(2), &[0, 1], limits).unwrap();
                let legacy =
                    legacy_explore_stats(&MaxRegConsensus::new(2), &[0, 1], limits, workers, false)
                        .unwrap();
                assert_eq!(packed, legacy, "maxreg cap={cap} workers={workers}");
            }
            let packed = explore_stats(&CasConsensus::new(2), &[0, 1], limits).unwrap();
            let legacy =
                legacy_explore_stats(&CasConsensus::new(2), &[0, 1], limits, workers, false)
                    .unwrap();
            assert_eq!(packed, legacy, "cas workers={workers}");
            // Symmetry-reduced runs quotient by the same partition (multiset
            // of process states), so even the reduced engines must agree bit
            // for bit.
            let packed_sym = crate::checker::Explorer::new()
                .limits(limits)
                .symmetry_reduction(true)
                .explore_stats(&MaxRegConsensus::new(3), &[0, 0, 1])
                .unwrap();
            let legacy_sym =
                legacy_explore_stats(&MaxRegConsensus::new(3), &[0, 0, 1], limits, workers, true)
                    .unwrap();
            assert_eq!(packed_sym, legacy_sym, "symmetric quotient workers={workers}");
        }
        let packed = explore_stats(&OneMaxRegister::new(), &[0, 1], limits).unwrap();
        let legacy = legacy_explore_stats(&OneMaxRegister::new(), &[0, 1], limits, 4, false).unwrap();
        assert_eq!(packed, legacy, "violation outcome and schedule");
        let packed = explore_stats(&OneRegister::new(3), &[0, 1, 1], limits).unwrap();
        let legacy = legacy_explore_stats(&OneRegister::new(3), &[0, 1, 1], limits, 4, false).unwrap();
        assert_eq!(packed, legacy);
    }
}
