//! Crash-safe checkpoint/resume for long explorations.
//!
//! A checkpoint captures the committer's **logical** state at an admission
//! boundary — the provenance links of every admitted configuration, the
//! commit cursor and layer counters, and the admitted fingerprint set — so
//! a killed run can be resumed bit-identically at any worker count and any
//! memory budget. It deliberately does *not* capture physical layouts (the
//! tiered fingerprint store's hot table, frontier spill runs, intern-table
//! shards): those are resource-telemetry details excluded from
//! [`crate::checker::ExploreStats`] equality, and every one of them is
//! deterministically rebuilt on resume by replaying each pending node's pid
//! path from the root through fresh intern tables. Storing membership
//! instead of layout is what makes a snapshot valid across engines,
//! worker counts and budgets — and keeps it self-contained (arena spill
//! files delete themselves on exit and are never referenced here).
//!
//! # Wire format (version 1)
//!
//! Everything is little-endian with explicit offsets; all decode paths are
//! total and return typed [`SnapshotError`]s — corrupt, truncated or
//! version-mismatched input can never panic. The file is written atomically
//! (temp file in the same directory, `fsync`, rename), so a crash mid-write
//! leaves the previous snapshot intact.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic "CBHSNAP1"
//!      8     4  version (u32, = 1)
//!     12     4  section count (u32, = 4)
//!     16     8  payload length in bytes (u64, = file len - 48)
//!     24     8  admitted configuration count (u64; peekable)
//!     32     8  reserved (0)
//!     40     4  CRC32 (IEEE) of header bytes 0..40
//!     44     4  reserved (0)
//!     48     …  sections, back to back, each:
//!               +0  tag (u32)   +4 payload CRC32 (u32)   +8 len (u64)
//!               +16 payload (len bytes)
//! ```
//!
//! Sections appear exactly once, in tag order:
//!
//! | tag | name     | payload                                              |
//! |-----|----------|------------------------------------------------------|
//! | 1   | IDENTITY | protocol name, `n`, inputs, limits, symmetry flag    |
//! | 2   | LINKS    | per admitted config: (parent link + 1 or 0, pid)     |
//! | 3   | SEEN     | sorted, deduplicated admitted fingerprints (16 B LE) |
//! | 4   | CURSORS  | commit cursor, frontier peak, depth, complete flag   |
//!
//! Varints are the LEB128 encoding of [`cbh_model::packed::delta`].
//!
//! # Version policy
//!
//! `VERSION` is bumped on **any** layout change; readers reject every
//! version they were not built for ([`SnapshotError::UnsupportedVersion`])
//! instead of best-effort decoding. Old snapshots are cheap to regenerate
//! (re-run to the next checkpoint), so there is no cross-version migration.

use crate::checker::ExploreLimits;
use cbh_model::packed::delta::{read_varint, write_varint, DeltaError};
use cbh_model::Protocol;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Sentinel parent value in [`Snapshot::links`]: the link chain terminator
/// (the root's "parent"). Identical to the engine's internal sentinel.
pub const NO_PARENT: usize = usize::MAX;

const MAGIC: [u8; 8] = *b"CBHSNAP1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 48;
const SECTION_HEADER_LEN: usize = 16;

const SEC_IDENTITY: u32 = 1;
const SEC_LINKS: u32 = 2;
const SEC_SEEN: u32 = 3;
const SEC_CURSORS: u32 = 4;
const SECTION_TAGS: [u32; 4] = [SEC_IDENTITY, SEC_LINKS, SEC_SEEN, SEC_CURSORS];

fn section_name(tag: u32) -> &'static str {
    match tag {
        SEC_IDENTITY => "identity",
        SEC_LINKS => "links",
        SEC_SEEN => "seen",
        SEC_CURSORS => "cursors",
        _ => "header",
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed snapshot failure. Every decode path is total: corrupt, truncated
/// or hostile bytes map to one of these, never a panic or an oversized
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An underlying filesystem operation failed.
    Io {
        /// What was being attempted (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// The input ended before a complete header/section/field.
    Truncated,
    /// The first eight bytes are not the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The version the file claims.
        found: u32,
    },
    /// A CRC32 check failed: the bytes were damaged after writing.
    CrcMismatch {
        /// Which section failed (`"header"` for the file header).
        section: &'static str,
    },
    /// Structurally invalid content (bad counts, unsorted fingerprints,
    /// out-of-range indices, trailing bytes, …).
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The snapshot is valid but describes a different exploration than the
    /// one resuming from it (protocol, inputs, limits or symmetry differ).
    IdentityMismatch {
        /// Which identity field disagreed, with both values.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, kind } => write!(f, "snapshot {op} failed: {kind}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (expected {VERSION})")
            }
            SnapshotError::CrcMismatch { section } => {
                write!(f, "snapshot {section} section failed its CRC check")
            }
            SnapshotError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
            SnapshotError::IdentityMismatch { detail } => {
                write!(f, "snapshot identity mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DeltaError> for SnapshotError {
    fn from(e: DeltaError) -> Self {
        match e {
            DeltaError::Truncated => SnapshotError::Truncated,
            other => SnapshotError::Malformed {
                detail: format!("bad varint: {other:?}"),
            },
        }
    }
}

fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> SnapshotError {
    move |e| SnapshotError::Io { op, kind: e.kind() }
}

fn malformed(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table generated at compile time — no dependencies
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One exploration checkpoint: the committer's complete logical state at an
/// admission boundary, plus the run identity that must match on resume.
///
/// A snapshot is always a **prefix of the deterministic reference order**:
/// the engine only takes one between committing node `next_commit - 1` and
/// node `next_commit`, when the admitted set, the links and the layer
/// counters are exactly what the sequential reference BFS would hold at the
/// same point. That is the whole consistency argument — resuming replays the
/// remaining pending nodes from provenance and continues the identical
/// deterministic schedule, at any worker count and any memory budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The protocol's [`Protocol::name`] — resume refuses a different one.
    pub protocol: String,
    /// Process count.
    pub n: usize,
    /// The exploration's input vector.
    pub inputs: Vec<u64>,
    /// [`ExploreLimits::depth`] of the checkpointed run.
    pub depth: usize,
    /// [`ExploreLimits::max_configs`] of the checkpointed run.
    pub max_configs: usize,
    /// [`ExploreLimits::solo_check_budget`] of the checkpointed run.
    pub solo_check_budget: Option<u64>,
    /// Whether the run used the process-symmetry reduction.
    pub symmetric: bool,
    /// Provenance of every admitted configuration except the root, in
    /// admission order: entry `j` is `(parent, pid)` for configuration
    /// `j + 1`, where `parent` is the parent's link index ([`NO_PARENT`]
    /// when the parent is the root) and `pid` the process stepped.
    pub links: Vec<(usize, usize)>,
    /// The admitted fingerprint set, sorted ascending, no duplicates.
    /// Exactly one entry per admitted configuration.
    pub seen: Vec<u128>,
    /// Admission index of the next configuration the committer will expand.
    pub next_commit: usize,
    /// [`crate::checker::ExploreStats::frontier_peak`] so far.
    pub frontier_peak: usize,
    /// [`crate::checker::ExploreStats::depth_reached`] so far.
    pub depth_reached: usize,
    /// `false` once a horizon configuration with active processes was seen.
    pub complete: bool,
}

impl Snapshot {
    /// Admitted configurations at the checkpoint (root included).
    pub fn configs(&self) -> usize {
        self.links.len() + 1
    }

    /// Serialises to the versioned wire format (see the module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();

        // IDENTITY
        let mut sec = Vec::new();
        write_varint(&mut sec, self.protocol.len() as u64);
        sec.extend_from_slice(self.protocol.as_bytes());
        write_varint(&mut sec, self.n as u64);
        write_varint(&mut sec, self.inputs.len() as u64);
        for &input in &self.inputs {
            write_varint(&mut sec, input);
        }
        write_varint(&mut sec, self.depth as u64);
        write_varint(&mut sec, self.max_configs as u64);
        match self.solo_check_budget {
            None => sec.push(0),
            Some(budget) => {
                sec.push(1);
                write_varint(&mut sec, budget);
            }
        }
        sec.push(u8::from(self.symmetric));
        push_section(&mut payload, SEC_IDENTITY, &sec);

        // LINKS
        sec.clear();
        write_varint(&mut sec, self.links.len() as u64);
        for &(parent, pid) in &self.links {
            let encoded = if parent == NO_PARENT {
                0
            } else {
                parent as u64 + 1
            };
            write_varint(&mut sec, encoded);
            write_varint(&mut sec, pid as u64);
        }
        push_section(&mut payload, SEC_LINKS, &sec);

        // SEEN
        sec.clear();
        write_varint(&mut sec, self.seen.len() as u64);
        for &fp in &self.seen {
            sec.extend_from_slice(&fp.to_le_bytes());
        }
        push_section(&mut payload, SEC_SEEN, &sec);

        // CURSORS
        sec.clear();
        write_varint(&mut sec, self.next_commit as u64);
        write_varint(&mut sec, self.frontier_peak as u64);
        write_varint(&mut sec, self.depth_reached as u64);
        sec.push(u8::from(self.complete));
        push_section(&mut payload, SEC_CURSORS, &sec);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(SECTION_TAGS.len() as u32).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.configs() as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // reserved
        let header_crc = crc32(&out[..40]);
        out.extend_from_slice(&header_crc.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes and fully validates a snapshot. Total: every failure is a
    /// typed [`SnapshotError`], never a panic or unbounded allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let (configs, payload_len) = decode_header(bytes)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return Err(malformed(format!(
                "header claims {payload_len} payload bytes, file carries {}",
                payload.len()
            )));
        }

        let mut cursor = payload;
        let mut sections: Vec<&[u8]> = Vec::with_capacity(SECTION_TAGS.len());
        for &want_tag in &SECTION_TAGS {
            if cursor.len() < SECTION_HEADER_LEN {
                return Err(SnapshotError::Truncated);
            }
            let tag = u32::from_le_bytes(cursor[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(cursor[4..8].try_into().expect("4 bytes"));
            let len = u64::from_le_bytes(cursor[8..16].try_into().expect("8 bytes"));
            if tag != want_tag {
                return Err(malformed(format!(
                    "expected section {want_tag} ({}), found {tag}",
                    section_name(want_tag)
                )));
            }
            let len = usize::try_from(len).map_err(|_| malformed("section length overflow"))?;
            let rest = &cursor[SECTION_HEADER_LEN..];
            if rest.len() < len {
                return Err(SnapshotError::Truncated);
            }
            let body = &rest[..len];
            if crc32(body) != crc {
                return Err(SnapshotError::CrcMismatch {
                    section: section_name(tag),
                });
            }
            sections.push(body);
            cursor = &rest[len..];
        }
        if !cursor.is_empty() {
            return Err(malformed(format!(
                "{} trailing bytes after the last section",
                cursor.len()
            )));
        }

        // IDENTITY
        let mut sec = sections[0];
        let name_len = rd_len(&mut sec, 1)?;
        if sec.len() < name_len {
            return Err(SnapshotError::Truncated);
        }
        let protocol = std::str::from_utf8(&sec[..name_len])
            .map_err(|_| malformed("protocol name is not UTF-8"))?
            .to_string();
        sec = &sec[name_len..];
        let n = rd_usize(&mut sec)?;
        let input_count = rd_len(&mut sec, 1)?;
        let mut inputs = Vec::with_capacity(input_count.min(sec.len()));
        for _ in 0..input_count {
            inputs.push(read_varint(&mut sec)?);
        }
        let depth = rd_usize(&mut sec)?;
        let max_configs = rd_usize(&mut sec)?;
        let solo_check_budget = match rd_u8(&mut sec)? {
            0 => None,
            1 => Some(read_varint(&mut sec)?),
            tag => return Err(malformed(format!("bad solo-budget tag {tag}"))),
        };
        let symmetric = rd_bool(&mut sec)?;
        if !sec.is_empty() {
            return Err(malformed("trailing bytes in identity section"));
        }
        if inputs.len() != n {
            return Err(malformed(format!("{} inputs for n = {n}", inputs.len())));
        }

        // LINKS
        let mut sec = sections[1];
        let link_count = rd_len(&mut sec, 2)?;
        if link_count + 1 != configs {
            return Err(malformed(format!(
                "{link_count} links for {configs} configurations"
            )));
        }
        let mut links = Vec::with_capacity(link_count);
        for j in 0..link_count {
            let parent_raw = read_varint(&mut sec)?;
            let pid = rd_usize(&mut sec)?;
            let parent = match parent_raw {
                0 => NO_PARENT,
                p => {
                    let p = usize::try_from(p - 1).map_err(|_| malformed("parent overflow"))?;
                    if p >= j {
                        return Err(malformed(format!("link {j} points forward to {p}")));
                    }
                    p
                }
            };
            if pid >= n {
                return Err(malformed(format!("link {j} steps pid {pid} with n = {n}")));
            }
            links.push((parent, pid));
        }
        if !sec.is_empty() {
            return Err(malformed("trailing bytes in links section"));
        }

        // SEEN
        let mut sec = sections[2];
        let seen_count = rd_len(&mut sec, 16)?;
        if seen_count != configs {
            return Err(malformed(format!(
                "{seen_count} seen fingerprints for {configs} configurations"
            )));
        }
        let mut seen = Vec::with_capacity(seen_count);
        for i in 0..seen_count {
            if sec.len() < 16 {
                return Err(SnapshotError::Truncated);
            }
            let fp = u128::from_le_bytes(sec[..16].try_into().expect("16 bytes"));
            sec = &sec[16..];
            if seen.last().is_some_and(|&prev| prev >= fp) {
                return Err(malformed(format!("seen set unsorted at entry {i}")));
            }
            seen.push(fp);
        }
        if !sec.is_empty() {
            return Err(malformed("trailing bytes in seen section"));
        }

        // CURSORS
        let mut sec = sections[3];
        let next_commit = rd_usize(&mut sec)?;
        let frontier_peak = rd_usize(&mut sec)?;
        let depth_reached = rd_usize(&mut sec)?;
        let complete = rd_bool(&mut sec)?;
        if !sec.is_empty() {
            return Err(malformed("trailing bytes in cursors section"));
        }
        if next_commit > configs {
            return Err(malformed(format!(
                "commit cursor {next_commit} past {configs} configurations"
            )));
        }
        if depth_reached > depth {
            return Err(malformed(format!(
                "depth_reached {depth_reached} past the depth limit {depth}"
            )));
        }
        if frontier_peak == 0 || frontier_peak > configs {
            return Err(malformed(format!("frontier peak {frontier_peak} out of range")));
        }

        Ok(Snapshot {
            protocol,
            n,
            inputs,
            depth,
            max_configs,
            solo_check_budget,
            symmetric,
            links,
            seen,
            next_commit,
            frontier_peak,
            depth_reached,
            complete,
        })
    }

    /// Writes the snapshot to `path` **atomically**: encoded into a temp
    /// file beside it, fsynced, then renamed over the target (whose previous
    /// contents survive any crash before the rename commits). Returns the
    /// bytes written.
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<u64, SnapshotError> {
        let bytes = self.to_bytes();
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "snapshot".to_string())
        ));
        let mut file = fs::File::create(&tmp).map_err(io_err("create"))?;
        file.write_all(&bytes).map_err(io_err("write"))?;
        file.sync_all().map_err(io_err("sync"))?;
        drop(file);
        fs::rename(&tmp, path).map_err(io_err("rename"))?;
        // Make the rename itself durable (the directory entry).
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(dir) = fs::File::open(dir) {
                let _ = dir.sync_all();
            }
        }
        Ok(bytes.len() as u64)
    }

    /// Reads and fully validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] with kind `NotFound` when there is no snapshot
    /// yet (the "start fresh" signal for `explore_resumable`), and the full
    /// typed decode-error surface for anything present but unusable.
    pub fn read(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = fs::read(path).map_err(io_err("read"))?;
        Snapshot::from_bytes(&bytes)
    }

    /// Reads only the admitted-configuration count from a snapshot's header
    /// (48 bytes, CRC-validated) — the cheap progress probe the kill-and-
    /// resume smoke polls while deciding when to kill the child run.
    ///
    /// # Errors
    ///
    /// As [`Snapshot::read`], for the header alone.
    pub fn peek_configs(path: &Path) -> Result<u64, SnapshotError> {
        use std::io::Read;
        let mut header = [0u8; HEADER_LEN];
        let mut file = fs::File::open(path).map_err(io_err("open"))?;
        file.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                SnapshotError::Truncated
            } else {
                SnapshotError::Io {
                    op: "read",
                    kind: e.kind(),
                }
            }
        })?;
        decode_header(&header).map(|(configs, _)| configs as u64)
    }

    /// Verifies that this snapshot belongs to exactly the exploration that
    /// is resuming: same protocol, inputs and semantic limits. The memory
    /// budget and worker count are deliberately **not** part of the
    /// identity — outcomes are bit-identical across both, so a run may
    /// resume under a different budget or worker count.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::IdentityMismatch`] naming the differing field.
    pub fn check_identity<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        limits: &ExploreLimits,
        symmetric: bool,
    ) -> Result<(), SnapshotError> {
        let mismatch = |detail: String| Err(SnapshotError::IdentityMismatch { detail });
        if self.protocol != protocol.name() {
            return mismatch(format!(
                "protocol {:?} vs {:?}",
                self.protocol,
                protocol.name()
            ));
        }
        if self.n != protocol.n() {
            return mismatch(format!("n {} vs {}", self.n, protocol.n()));
        }
        if self.inputs != inputs {
            return mismatch(format!("inputs {:?} vs {:?}", self.inputs, inputs));
        }
        if self.depth != limits.depth {
            return mismatch(format!("depth {} vs {}", self.depth, limits.depth));
        }
        if self.max_configs != limits.max_configs {
            return mismatch(format!(
                "max_configs {} vs {}",
                self.max_configs, limits.max_configs
            ));
        }
        if self.solo_check_budget != limits.solo_check_budget {
            return mismatch(format!(
                "solo_check_budget {:?} vs {:?}",
                self.solo_check_budget, limits.solo_check_budget
            ));
        }
        if self.symmetric != symmetric {
            return mismatch(format!("symmetric {} vs {symmetric}", self.symmetric));
        }
        Ok(())
    }
}

/// Appends one section (header + payload) to `out`.
fn push_section(out: &mut Vec<u8>, tag: u32, body: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
}

/// Validates the 48-byte header; returns `(configs, payload_len)`.
fn decode_header(bytes: &[u8]) -> Result<(usize, u64), SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let stored_crc = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes"));
    if crc32(&bytes[..40]) != stored_crc {
        return Err(SnapshotError::CrcMismatch { section: "header" });
    }
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if section_count as usize != SECTION_TAGS.len() {
        return Err(malformed(format!("{section_count} sections")));
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let configs = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let configs = usize::try_from(configs).map_err(|_| malformed("config count overflow"))?;
    if configs == 0 {
        return Err(malformed("zero configurations"));
    }
    Ok((configs, payload_len))
}

/// Varint → usize with a typed error on 32-bit overflow.
fn rd_usize(bytes: &mut &[u8]) -> Result<usize, SnapshotError> {
    usize::try_from(read_varint(bytes)?).map_err(|_| malformed("value overflows usize"))
}

/// Reads an element count and bounds it against the bytes actually present
/// (each element costs at least `min_elem_bytes`), so a corrupt count can
/// never drive an oversized allocation.
fn rd_len(bytes: &mut &[u8], min_elem_bytes: usize) -> Result<usize, SnapshotError> {
    let count = rd_usize(bytes)?;
    if count.saturating_mul(min_elem_bytes) > bytes.len() {
        return Err(SnapshotError::Truncated);
    }
    Ok(count)
}

fn rd_u8(bytes: &mut &[u8]) -> Result<u8, SnapshotError> {
    let (&first, rest) = bytes.split_first().ok_or(SnapshotError::Truncated)?;
    *bytes = rest;
    Ok(first)
}

fn rd_bool(bytes: &mut &[u8]) -> Result<bool, SnapshotError> {
    match rd_u8(bytes)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(malformed(format!("bad bool byte {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            protocol: "test-proto".to_string(),
            n: 2,
            inputs: vec![0, 1],
            depth: 8,
            max_configs: 1000,
            solo_check_budget: Some(5),
            symmetric: false,
            links: vec![(NO_PARENT, 0), (NO_PARENT, 1), (0, 1), (2, 0)],
            seen: vec![3, 7, (9 << 64) | 4, 1 << 80, u128::MAX],
            next_commit: 3,
            frontier_peak: 2,
            depth_reached: 1,
            complete: true,
        }
    }

    #[test]
    fn round_trips_through_bytes_and_files() {
        let snap = sample();
        assert_eq!(Snapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
        let path = std::env::temp_dir().join(format!("cbh-snap-test-{}.ck", std::process::id()));
        let bytes = snap.write(&path).unwrap();
        assert_eq!(bytes, snap.to_bytes().len() as u64);
        assert_eq!(Snapshot::read(&path).unwrap(), snap);
        assert_eq!(Snapshot::peek_configs(&path).unwrap(), snap.configs() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_level_corruption_is_typed() {
        let snap = sample();
        let good = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&[]), Err(SnapshotError::Truncated));
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(Snapshot::from_bytes(&bad), Err(SnapshotError::BadMagic));
        let mut bad = good.clone();
        bad[8] = 99;
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        );
        let mut bad = good.clone();
        bad[25] ^= 0x10; // configs field: caught by the header CRC
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::CrcMismatch { section: "header" })
        );
        // Truncation anywhere in the payload is typed, never a panic.
        for len in 0..good.len() {
            assert!(Snapshot::from_bytes(&good[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn identity_check_pins_every_field() {
        use crate::strawmen::OneMaxRegister;
        let protocol = OneMaxRegister::new();
        let limits = ExploreLimits {
            depth: 8,
            max_configs: 1000,
            solo_check_budget: Some(5),
            checkpoint_every: None,
            memory_budget: None,
        };
        let snap = Snapshot {
            protocol: protocol.name(),
            n: protocol.n(),
            inputs: vec![0, 1],
            ..sample()
        };
        snap.check_identity(&protocol, &[0, 1], &limits, false).unwrap();
        for (broken, field) in [
            (Snapshot { depth: 9, ..snap.clone() }, "depth"),
            (Snapshot { max_configs: 1, ..snap.clone() }, "max_configs"),
            (Snapshot { solo_check_budget: None, ..snap.clone() }, "solo"),
            (Snapshot { symmetric: true, ..snap.clone() }, "symmetric"),
            (Snapshot { inputs: vec![1, 1], n: 2, ..snap.clone() }, "inputs"),
            (Snapshot { protocol: "other".into(), ..snap.clone() }, "name"),
        ] {
            assert!(
                matches!(
                    broken.check_identity(&protocol, &[0, 1], &limits, false),
                    Err(SnapshotError::IdentityMismatch { .. })
                ),
                "{field} mismatch must be caught"
            );
        }
    }
}
