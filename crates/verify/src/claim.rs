//! Lock-free claim table: the explorer's shared fingerprint set.
//!
//! The parallel packed engine has two consumers of one "have we seen this
//! configuration?" question, with different consistency needs:
//!
//! - **workers** make *advisory* claims while speculatively expanding — a
//!   lost or duplicated claim costs only wasted work, never correctness,
//!   because the committer re-checks every edge in admission order;
//! - the **committer** needs an *authoritative* admitted set: exactly one
//!   admission per fingerprint, in the deterministic order it processes
//!   results.
//!
//! The previous implementation (`ClaimSet`, a striped
//! `Vec<RwLock<HashSet<u128>>>`) served only the workers and serialised them
//! on its read-then-upgrade path whenever the frontier was narrow; the
//! committer kept a second, private `HashSet`. [`ClaimTable`] replaces both:
//! a fixed-capacity open-addressing table of `AtomicU64` pairs (the two
//! halves of each 128-bit fingerprint) that workers claim into with one CAS
//! and the committer admits into via a separate committed bitmap — no locks
//! on any hot path.
//!
//! # Layout and probe scheme
//!
//! `words` interleaves slot halves: slot `i` is `(words[2i], words[2i+1])` =
//! `(lo, hi)` of the resident fingerprint. A slot is **write-once**: `lo`
//! moves `0 → fp.lo` exactly once (the CAS that claims the slot) and `hi`
//! moves `0 → fp.hi` exactly once (a release-store by the CAS winner).
//! Probing is linear from `hi(fp) & mask` for up to [`PROBE_LIMIT`] slots.
//!
//! # Why two u64 halves are safe
//!
//! Matching compares the **full 128 bits** — both halves must agree — so the
//! split loses no information relative to a `HashSet<u128>`. The only hazard
//! is the publication gap between the `lo`-CAS and the `hi`-store; a reader
//! that observes `lo != 0` but `hi == 0` simply spins until the winner's
//! release-store lands (per-location coherence makes that wait finite).
//! Fingerprints with a zero half — probability ≈ 2⁻⁶³ per half under the
//! model's 128-bit content hashing — would be indistinguishable from vacant
//! or half-published slots, so they are routed to the mutex-guarded
//! [`overflow`](ClaimTable#structfield.overflow) map instead, which also
//! absorbs insertions once a probe run finds no vacancy (table effectively
//! full). Every path degrades to a correct, merely slower, shared map —
//! never to a lost or duplicated claim.
//!
//! # Insert-once argument
//!
//! For a fixed fingerprint every thread walks the **same** deterministic
//! probe sequence over slots whose occupancy is monotone (claimed slots are
//! never vacated, resident fingerprints never rewritten). Each thread stops
//! at the first slot that either matches the fingerprint or is vacant; at a
//! vacant slot exactly one CAS wins. The winner sees `ClaimedNew`; every
//! racer either loses the CAS and re-examines the same slot (now holding the
//! winner's fingerprint → `Present`) or arrives later and matches earlier in
//! the walk. A thread can reach the overflow map only after finding the
//! whole probe window occupied by *other* fingerprints — which, by
//! monotonicity, every other thread probing the same fingerprint also finds
//! — so the per-fingerprint decision point is unique: either one table slot
//! or one overflow entry, never both.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Longest linear-probe run before an insertion falls back to the overflow
/// map. Bounds worst-case work per claim on a degenerately full table.
const PROBE_LIMIT: usize = 64;

/// Hard cap on table slots (2²³ slots = 128 MiB of fingerprint words),
/// so a huge `max_configs` cannot demand an absurd upfront allocation.
const MAX_SLOTS: usize = 1 << 23;

/// Where a fingerprint landed during a probe.
enum Probe {
    /// This call claimed a vacant slot — first sight of the fingerprint.
    ClaimedNew(usize),
    /// The fingerprint already resides in this slot.
    Present(usize),
    /// Zero-half fingerprint or no vacancy within [`PROBE_LIMIT`]: the
    /// overflow map is authoritative for this fingerprint.
    Overflow,
}

/// A fixed-capacity, lock-free set of 128-bit fingerprints with a separate
/// committed bitmap — the shared claim/seen structure of the parallel
/// explorer. See the [module docs](self) for the design argument.
pub struct ClaimTable {
    /// Interleaved slot halves: slot `i` = `(words[2i] = lo, words[2i+1] = hi)`.
    words: Vec<AtomicU64>,
    /// Slot count − 1 (slot count is a power of two).
    mask: usize,
    /// One bit per slot: set iff the committer admitted the resident
    /// fingerprint. Distinguishes "claimed by a worker" from "admitted".
    committed: Vec<AtomicU64>,
    /// Fingerprint → admitted? for everything the table proper cannot hold.
    overflow: Mutex<HashMap<u128, bool>>,
    /// Advisory-only mode (budgeted parallel runs): overflow insertions are
    /// *dropped* instead of growing the unbounded map — `claim` answers
    /// `false`, the worker skips materialising that child, and the
    /// committer derives it from the parent. Claims stay bounded by the
    /// table allocation at the cost of some duplicated expansion work.
    lossy: bool,
}

impl ClaimTable {
    /// A table sized for about `expected` distinct fingerprints (the
    /// explorer passes `ExploreLimits::max_configs`). Allocates ~2 slots per
    /// expected entry, clamped to [16, 2²³] slots, so probes stay short at
    /// the advertised fill.
    pub fn new(expected: usize) -> Self {
        let slots = expected
            .saturating_add(1)
            .saturating_mul(2)
            .clamp(16, MAX_SLOTS)
            .next_power_of_two();
        Self::with_slots(slots, false)
    }

    /// A **lossy advisory** table fitting in about `bytes` of RAM, for
    /// memory-budgeted parallel runs: sized down instead of from
    /// `max_configs`, and overflow claims are dropped (see
    /// [`ClaimTable::claim`]) rather than accumulated. Must not be used as
    /// an authoritative admission set — the budgeted committer keeps its own
    /// [`crate::fpset::FpSet`].
    pub fn advisory(bytes: usize) -> Self {
        // A slot costs 16 bytes of words plus 1/8 byte of bitmap ≈ 17; round
        // to the largest power of two that fits.
        let mut slots = (bytes / 17).max(16).next_power_of_two();
        if slots > 16 && slots * 17 > bytes {
            slots /= 2;
        }
        Self::with_slots(slots.min(MAX_SLOTS), true)
    }

    fn with_slots(slots: usize, lossy: bool) -> Self {
        ClaimTable {
            words: (0..slots * 2).map(|_| AtomicU64::new(0)).collect(),
            mask: slots - 1,
            committed: (0..slots.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            overflow: Mutex::new(HashMap::new()),
            lossy,
        }
    }

    /// Number of slots in the fixed table (excluding overflow).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Estimated resident bytes: the fixed allocation plus the overflow map.
    pub fn resident_bytes(&self) -> usize {
        self.words.len() * 8
            + self.committed.len() * 8
            + self.overflow.lock().unwrap().len() * 40
    }

    /// Waits out the publication gap on `slot`'s hi half and compares it.
    /// Only called when the slot's lo half matched, i.e. some thread CASed
    /// it and its release-store of hi is at worst in flight.
    fn hi_matches(&self, slot: usize, hi: u64) -> bool {
        loop {
            let stored = self.words[slot * 2 + 1].load(Ordering::Acquire);
            if stored != 0 {
                return stored == hi;
            }
            std::hint::spin_loop();
        }
    }

    /// Finds or claims the slot for `fp`. The write path of both
    /// [`ClaimTable::claim`] and [`ClaimTable::admit`].
    fn insert_fp(&self, fp: u128) -> Probe {
        let lo = fp as u64;
        let hi = (fp >> 64) as u64;
        if lo == 0 || hi == 0 {
            return Probe::Overflow; // zero halves are the vacancy sentinel
        }
        let mut slot = (hi as usize) & self.mask;
        for _ in 0..PROBE_LIMIT.min(self.mask + 1) {
            let resident = self.words[slot * 2].load(Ordering::Acquire);
            if resident == 0 {
                match self.words[slot * 2].compare_exchange(
                    0,
                    lo,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.words[slot * 2 + 1].store(hi, Ordering::Release);
                        return Probe::ClaimedNew(slot);
                    }
                    Err(winner) => {
                        if winner == lo && self.hi_matches(slot, hi) {
                            return Probe::Present(slot);
                        }
                    }
                }
            } else if resident == lo && self.hi_matches(slot, hi) {
                return Probe::Present(slot);
            }
            slot = (slot + 1) & self.mask;
        }
        Probe::Overflow
    }

    /// Worker-side advisory claim: `true` iff this call is the first to
    /// claim `fp`. Thread-safe; lock-free off the overflow path.
    pub fn claim(&self, fp: u128) -> bool {
        match self.insert_fp(fp) {
            Probe::ClaimedNew(_) => true,
            Probe::Present(_) => false,
            // Lossy (advisory, budgeted) tables drop overflow claims: a
            // false "already claimed" only means the child arrives at the
            // committer unmaterialised, and the committer derives it.
            Probe::Overflow if self.lossy => false,
            Probe::Overflow => match self.overflow.lock().unwrap().entry(fp) {
                Entry::Vacant(e) => {
                    e.insert(false);
                    true
                }
                Entry::Occupied(_) => false,
            },
        }
    }

    /// Committer-side admission: `true` iff `fp` has not been admitted
    /// before. Claims by workers do **not** count as admissions — the
    /// committed bitmap keeps the two states distinct — so the result is
    /// exactly `HashSet::insert` on the committer's sequence of calls,
    /// regardless of what workers claimed concurrently.
    pub fn admit(&self, fp: u128) -> bool {
        debug_assert!(
            !self.lossy,
            "advisory tables must not serve as the authoritative seen set"
        );
        match self.insert_fp(fp) {
            Probe::ClaimedNew(slot) | Probe::Present(slot) => {
                let bit = 1u64 << (slot % 64);
                let prev = self.committed[slot / 64].fetch_or(bit, Ordering::Relaxed);
                prev & bit == 0
            }
            Probe::Overflow => {
                let mut overflow = self.overflow.lock().unwrap();
                let admitted = overflow.entry(fp).or_insert(false);
                !std::mem::replace(admitted, true)
            }
        }
    }

    /// Every fingerprint the committer admitted, in unspecified order
    /// (checkpoint hook). Slots are committed via the bitmap; zero-half
    /// fingerprints only ever live in the overflow map, so the two scans
    /// together are exhaustive. Worker claims without an admission are
    /// deliberately excluded — a snapshot records the committer's state,
    /// and speculative claims are re-derived on resume.
    pub fn committed_fps(&self) -> Vec<u128> {
        let mut fps = Vec::new();
        for slot in 0..=self.mask {
            let bit = 1u64 << (slot % 64);
            if self.committed[slot / 64].load(Ordering::Relaxed) & bit != 0 {
                let lo = self.words[slot * 2].load(Ordering::Acquire);
                let hi = self.words[slot * 2 + 1].load(Ordering::Acquire);
                fps.push(((hi as u128) << 64) | lo as u128);
            }
        }
        fps.extend(
            self.overflow
                .lock()
                .unwrap()
                .iter()
                .filter(|(_, &admitted)| admitted)
                .map(|(&fp, _)| fp),
        );
        fps
    }

    /// `true` if `fp` was ever claimed or admitted (test/diagnostic view).
    ///
    /// Sound because occupancy is monotone: an overflow insertion happens
    /// only when every slot in `fp`'s probe window is occupied, so a vacant
    /// slot seen here proves `fp` never reached the overflow map either.
    pub fn contains(&self, fp: u128) -> bool {
        let lo = fp as u64;
        let hi = (fp >> 64) as u64;
        if lo != 0 && hi != 0 {
            let mut slot = (hi as usize) & self.mask;
            for _ in 0..PROBE_LIMIT.min(self.mask + 1) {
                let resident = self.words[slot * 2].load(Ordering::Acquire);
                if resident == 0 {
                    return false;
                }
                if resident == lo && self.hi_matches(slot, hi) {
                    return true;
                }
                slot = (slot + 1) & self.mask;
            }
        }
        self.overflow.lock().unwrap().contains_key(&fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A spread-out deterministic fingerprint with no zero halves.
    fn fp(i: u64) -> u128 {
        let lo = (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let hi = (i + 1).wrapping_mul(0xc2b2_ae3d_27d4_eb4f) | 1;
        ((hi as u128) << 64) | lo as u128
    }

    #[test]
    fn claim_admit_and_contains_basics() {
        let table = ClaimTable::new(100);
        assert!(table.claim(fp(1)));
        assert!(!table.claim(fp(1)), "second claim loses");
        assert!(table.admit(fp(1)), "a claim is not an admission");
        assert!(!table.admit(fp(1)), "second admission loses");
        assert!(table.admit(fp(2)), "admit works without a prior claim");
        assert!(!table.claim(fp(2)), "admission also claims");
        assert!(table.contains(fp(1)));
        assert!(table.contains(fp(2)));
        assert!(!table.contains(fp(3)));
    }

    #[test]
    fn zero_half_fingerprints_take_the_overflow_path() {
        let table = ClaimTable::new(16);
        for weird in [0u128, 1, 7 << 64, (3 << 64) | 5, u64::MAX as u128] {
            assert!(table.claim(weird), "{weird:#x} first claim");
            assert!(!table.claim(weird), "{weird:#x} second claim");
            assert!(table.admit(weird), "{weird:#x} first admission");
            assert!(!table.admit(weird), "{weird:#x} second admission");
            assert!(table.contains(weird));
        }
    }

    #[test]
    fn full_table_spills_to_overflow_without_losing_claims() {
        // 16 slots (the minimum), hammered with 10× more fingerprints:
        // most must overflow; none may be lost or doubly claimed.
        let table = ClaimTable::new(0);
        assert_eq!(table.capacity(), 16);
        for i in 0..160 {
            assert!(table.claim(fp(i)), "fp {i} lost");
            assert!(!table.claim(fp(i)), "fp {i} claimed twice");
            assert!(table.admit(fp(i)), "fp {i} admission lost");
            assert!(!table.admit(fp(i)), "fp {i} admitted twice");
        }
        for i in 0..160 {
            assert!(table.contains(fp(i)));
        }
        assert!(!table.overflow.lock().unwrap().is_empty(), "nothing spilled");
    }

    #[test]
    fn concurrent_claims_are_exactly_once() {
        // 8 threads race claims over one overlapping universe; each
        // fingerprint must be won by exactly one thread. The tiny table
        // forces the overflow path to race too.
        for expected in [0usize, 4096] {
            let table = ClaimTable::new(expected);
            let universe: Vec<u128> = (0..2000).map(fp).collect();
            let wins: Vec<Vec<u128>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|t| {
                        let table = &table;
                        let universe = &universe;
                        scope.spawn(move || {
                            let mut won = Vec::new();
                            // Offset start so threads collide mid-stream.
                            for i in 0..universe.len() {
                                let fp = universe[(i + t * 251) % universe.len()];
                                if table.claim(fp) {
                                    won.push(fp);
                                }
                            }
                            won
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut seen = HashSet::new();
            for fp in wins.iter().flatten() {
                assert!(seen.insert(*fp), "fingerprint {fp:#x} claimed twice");
            }
            assert_eq!(seen.len(), universe.len(), "claims lost (cap {expected})");
        }
    }

    #[test]
    fn admissions_are_exactly_once_under_concurrent_claims() {
        // A single "committer" admits while workers spam claims of the same
        // fingerprints: claims must never eat an admission.
        let table = ClaimTable::new(64); // small: exercises overflow too
        let universe: Vec<u128> = (0..1500).map(fp).collect();
        let admitted = std::thread::scope(|scope| {
            for t in 0..4 {
                let table = &table;
                let universe = &universe;
                scope.spawn(move || {
                    for i in 0..universe.len() {
                        table.claim(universe[(i + t * 379) % universe.len()]);
                    }
                });
            }
            let mut admitted = 0;
            for chunk in universe.chunks(3) {
                for &fp in chunk {
                    if table.admit(fp) {
                        admitted += 1;
                    }
                }
            }
            admitted
        });
        assert_eq!(admitted, universe.len(), "every fp admitted exactly once");
        for &fp in &universe {
            assert!(!table.admit(fp), "fp re-admitted after the fact");
        }
    }
}
