//! Covering configurations (Section 6.2's vocabulary, executable).
//!
//! In a configuration, location `r` is *covered* by process `p` if `p` is
//! poised to perform a non-trivial instruction (an `ℓ-buffer-write`, a write,
//! a swap, …) on `r`; it is `k`-covered if exactly `k` processes cover it,
//! and the configuration is *at most `k`-covered* by a process set if every
//! process covers something and no location is more than `k`-covered. A
//! *block write* by a set of poised processes executes each one exactly once;
//! if `ℓ` different buffer-writes land on one `ℓ`-buffer, subsequent reads of
//! that buffer are independent of its earlier contents — the information-
//! hiding step of Theorem 6.8's induction.
//!
//! These functions compute covering data for live [`Machine`] configurations,
//! and execute block writes, so lower-bound experiments can follow the
//! proof's moves on real protocols.

use cbh_model::{Action, Process};
use cbh_sim::{Machine, SimError};
use std::collections::BTreeMap;

/// The locations each process covers in this configuration.
///
/// A process *covers* the locations its poised op may modify (for a multiple
/// assignment, all of its targets — the Section 7 notion). Decided or
/// read-poised processes cover nothing and get an empty list.
pub fn covers<P: Process>(machine: &Machine<P>) -> Vec<Vec<usize>> {
    (0..machine.n())
        .map(|pid| match machine.action(pid) {
            Action::Invoke(op) => op.writes(),
            Action::Decide(_) => Vec::new(),
        })
        .collect()
}

/// How many processes cover each location (locations with zero coverage are
/// omitted).
pub fn coverage_counts<P: Process>(machine: &Machine<P>) -> BTreeMap<usize, usize> {
    let mut counts = BTreeMap::new();
    for cover in covers(machine) {
        for loc in cover {
            *counts.entry(loc).or_insert(0) += 1;
        }
    }
    counts
}

/// Is the configuration at most `k`-covered by `pids`? (Every listed process
/// covers at least one location; no location is covered by more than `k` of
/// them.)
pub fn at_most_k_covered<P: Process>(machine: &Machine<P>, pids: &[usize], k: usize) -> bool {
    let all = covers(machine);
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for &pid in pids {
        if all[pid].is_empty() {
            return false;
        }
        for &loc in &all[pid] {
            *counts.entry(loc).or_insert(0) += 1;
        }
    }
    counts.values().all(|&c| c <= k)
}

/// Executes a block write: one step by each process in `pids`, in order.
///
/// # Errors
///
/// Propagates [`SimError`] from the machine.
pub fn block_write<P: Process>(machine: &mut Machine<P>, pids: &[usize]) -> Result<(), SimError> {
    for &pid in pids {
        machine.step(pid)?;
    }
    Ok(())
}

/// The locations `ℓ`-covered (exactly `cap`-covered) in this configuration —
/// the set `L` the Theorem 6.8 induction block-writes.
pub fn fully_covered<P: Process>(machine: &Machine<P>, cap: usize) -> Vec<usize> {
    coverage_counts(machine)
        .into_iter()
        .filter(|&(_, c)| c == cap)
        .map(|(loc, _)| loc)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::buffer::buffer_consensus;
    use cbh_core::registers::register_consensus;
    use cbh_model::{Instruction, InstructionSet, Memory, MemorySpec, Op, Protocol, Value};

    #[test]
    fn register_protocol_processes_cover_their_own_registers() {
        // In the n-register protocol, a process's first poised op is the
        // write announcing its first increment... after its initial counter
        // start the first op is a write to its own register.
        let protocol = register_consensus(3);
        let machine = Machine::start(&protocol, &[0, 1, 2]).unwrap();
        let c = covers(&machine);
        assert_eq!(c, vec![vec![0], vec![1], vec![2]], "SWMR covering pattern");
        assert!(at_most_k_covered(&machine, &[0, 1, 2], 1));
        assert_eq!(fully_covered(&machine, 1), vec![0, 1, 2]);
    }

    #[test]
    fn buffer_protocol_initial_configuration_covers_nothing() {
        // Buffer counter increments start with a read (get-history): no
        // location is covered until the write phase.
        let protocol = buffer_consensus(4, 2);
        let machine = Machine::start(&protocol, &[0, 1, 2, 3]).unwrap();
        assert!(coverage_counts(&machine).is_empty());
        assert!(!at_most_k_covered(&machine, &[0], 2), "p0 covers nothing yet");
        // One step later every process is poised to buffer-write its buffer.
        let mut machine = machine;
        for pid in 0..4 {
            machine.step(pid).unwrap();
        }
        let counts = coverage_counts(&machine);
        assert_eq!(counts.get(&0), Some(&2), "p0,p1 cover buffer 0");
        assert_eq!(counts.get(&1), Some(&2), "p2,p3 cover buffer 1");
        assert!(at_most_k_covered(&machine, &[0, 1, 2, 3], 2));
        assert_eq!(fully_covered(&machine, 2), vec![0, 1]);
    }

    #[test]
    fn block_write_on_full_buffer_hides_the_past() {
        // Execute the Theorem 6.8 move on the live protocol: bring ℓ = 2
        // processes to cover buffer 0, diverge the buffer's past, block-write,
        // and observe that reads cannot tell the difference.
        let protocol = buffer_consensus(4, 2);
        let inputs = [3, 3, 1, 1];
        let mut a = Machine::start(&protocol, &inputs).unwrap();
        // p0 and p1 advance to their buffer-write steps.
        a.step(0).unwrap();
        a.step(1).unwrap();
        let mut b = a.clone();
        // Divergent past in branch b only: p2 completes a full increment
        // (read + write) into buffer... p2 writes buffer 1; diverge buffer 0
        // instead via p0's *second* increment in branch b? Keep it simple:
        // compare buffer 0 after the same block write applied to both
        // branches, where branch b first lets p2/p3 write buffer 1.
        b.step(2).unwrap(); // p2's get-history read of buffer 1
        b.step(2).unwrap(); // p2's buffer-write: b's buffer 1 now differs
        block_write(&mut a, &[0, 1]).unwrap();
        block_write(&mut b, &[0, 1]).unwrap();
        assert_eq!(
            a.memory().cell(0),
            b.memory().cell(0),
            "buffer 0 fully determined by the block write"
        );
        assert_ne!(a.memory().cell(1), b.memory().cell(1), "pasts differ at 1");
    }

    #[test]
    fn raw_memory_block_write_independence() {
        // The raw statement: ℓ buffer-writes make any ℓ-buffer state.
        let spec = MemorySpec::bounded(InstructionSet::Buffer(2), 1);
        let mut x = Memory::new(&spec);
        let mut y = Memory::new(&spec);
        for i in 0..7 {
            x.apply(&Op::single(0, Instruction::BufferWrite(Value::int(i))))
                .unwrap();
        }
        for v in [100i64, 200] {
            for m in [&mut x, &mut y] {
                m.apply(&Op::single(0, Instruction::BufferWrite(Value::int(v))))
                    .unwrap();
            }
        }
        assert_eq!(x.cell(0), y.cell(0));
    }

    #[test]
    fn multi_assign_covering_counts_every_target() {
        // Section 7: a poised multiple assignment covers all its targets.
        use cbh_model::{Action, Process};

        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Multi;
        impl Process for Multi {
            fn action(&self) -> Action {
                Action::Invoke(Op::multi_assign([
                    (0, Value::int(1)),
                    (2, Value::int(2)),
                ]))
            }
            fn absorb(&mut self, _r: Value) {}
        }
        struct MultiProtocol;
        impl Protocol for MultiProtocol {
            type Proc = Multi;
            fn name(&self) -> String {
                "multi".into()
            }
            fn n(&self) -> usize {
                2
            }
            fn domain(&self) -> u64 {
                2
            }
            fn memory_spec(&self) -> MemorySpec {
                MemorySpec::bounded(InstructionSet::Buffer(1), 3)
            }
            fn spawn(&self, _pid: usize, _input: u64) -> Multi {
                Multi
            }
        }
        let machine = Machine::start(&MultiProtocol, &[0, 1]).unwrap();
        assert_eq!(covers(&machine), vec![vec![0, 2], vec![0, 2]]);
        let counts = coverage_counts(&machine);
        assert_eq!(counts.get(&0), Some(&2));
        assert_eq!(counts.get(&2), Some(&2));
        assert!(at_most_k_covered(&machine, &[0, 1], 2));
        assert!(!at_most_k_covered(&machine, &[0, 1], 1));
    }
}
