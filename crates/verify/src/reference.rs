//! The clone-based reference oracle: ground truth for the frontier engine.
//!
//! [`reference_explore`] is a deliberately naive breadth-first search over
//! the configuration graph. Where [`crate::checker::explore`] memoises
//! 128-bit *incremental Zobrist* digests and walks edges with step/undo,
//! this oracle clones whole machines, keys its seen-set on
//! [`Machine::fingerprint`] (a different, non-incremental hash
//! construction), and keeps every visited configuration alive so fingerprint
//! collisions can be *detected* instead of silently merging states.
//!
//! The two engines share no hashing or traversal code, yet must produce
//! **bit-identical** outcomes — verdict, counterexample schedule,
//! configuration counts, frontier peaks — on every (protocol, inputs,
//! limits) triple. The conformance fuzzer diffs them on randomized
//! scenarios; any disagreement is a bug in one of the engines (or a hash
//! collision, which the oracle turns into a loud panic rather than a silent
//! undercount).

use crate::checker::{
    decision_violation, schedule_of, ExploreLimits, ExploreOutcome, ExploreStats, Link, NO_LINK,
};
use cbh_model::{Process, Protocol};
use cbh_sim::{Machine, SimError};
use std::collections::HashMap;

/// `true` if the two machines are the same *semantic* configuration:
/// identical process states, recorded decisions and memory. Step counters
/// are ignored, matching what [`Machine::fingerprint`] hashes.
fn semantically_equal<P: Process>(a: &Machine<P>, b: &Machine<P>) -> bool {
    a.memory() == b.memory()
        && (0..a.n()).all(|p| {
            a.process(p) == b.process(p) && a.recorded_decision(p) == b.recorded_decision(p)
        })
}

/// Exhaustively explores all schedules of `protocol` on `inputs` with a
/// naive clone-everything BFS, mirroring the frontier engine's semantics
/// exactly: same admission order (frontier order, then pid order), same
/// violation selection, same `max_configs` over-cap accounting, same
/// completeness rules, same optional per-configuration solo checks.
///
/// Intended as the differential-testing oracle: slower and memory-hungrier
/// than [`crate::checker::explore_stats`], but with independently
/// implemented hashing and traversal. Symmetry reduction is deliberately not
/// offered — the oracle checks the *unreduced* engine; reduced runs are
/// cross-checked against each other and against unreduced verdicts by the
/// conformance suite.
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
///
/// # Panics
///
/// Panics if two semantically distinct configurations share a
/// [`Machine::fingerprint`] — a hash collision the fingerprint design makes
/// astronomically unlikely, and which must never be silently absorbed.
pub fn reference_explore<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
) -> Result<(ExploreOutcome, ExploreStats), SimError> {
    let root = Machine::start(protocol, inputs)?;
    let mut seen: HashMap<u128, Machine<P::Proc>> = HashMap::new();
    let mut links: Vec<Link> = Vec::new();
    let mut complete = true;
    let mut frontier_peak = 1usize;
    let mut depth = 0usize;
    macro_rules! stats {
        () => {
            ExploreStats {
                configs: seen.len(),
                frontier_peak,
                depth_reached: depth,
                // The oracle keeps everything live on purpose (collision
                // detection); it neither budgets, spills nor interns.
                bytes_spilled: 0,
                peak_resident_bytes: 0,
                seen_resident_bytes: 0,
                intern_resident_bytes: 0,
                fpset_disk_bytes: 0,
                checkpoint_bytes: 0,
                checkpoint_ms: 0,
                frames_exchanged: 0,
                frame_bytes: 0,
            }
        };
    }

    /// Inserts into the seen-map, panicking on a genuine hash collision;
    /// returns `true` if the configuration is new.
    fn admit<Q: Process>(seen: &mut HashMap<u128, Machine<Q>>, fp: u128, m: &Machine<Q>) -> bool {
        if let Some(prev) = seen.get(&fp) {
            assert!(
                semantically_equal(prev, m),
                "fingerprint collision: two distinct configurations share {fp:#034x}"
            );
            return false;
        }
        seen.insert(fp, m.clone());
        true
    }

    let root_fp = root.fingerprint();
    admit(&mut seen, root_fp, &root);
    if let Some(violation) = decision_violation(&root, inputs, NO_LINK, &links) {
        return Ok((violation, stats!()));
    }
    let mut frontier: Vec<(Machine<P::Proc>, usize)> = vec![(root, NO_LINK)];

    'layers: while !frontier.is_empty() {
        frontier_peak = frontier_peak.max(frontier.len());
        let expand = depth < limits.depth;
        if !expand {
            if frontier
                .iter()
                .any(|(m, _)| m.active_iter().next().is_some())
            {
                complete = false;
            }
            if limits.solo_check_budget.is_none() {
                break;
            }
        }
        let mut next = Vec::new();
        for (machine, link) in &frontier {
            if let Some(budget) = limits.solo_check_budget {
                for pid in machine.active_iter() {
                    let mut probe = machine.clone();
                    if probe.run_solo(pid, budget)?.is_none() {
                        return Ok((
                            ExploreOutcome::ObstructionFailure {
                                pid,
                                schedule: schedule_of(&links, *link),
                            },
                            stats!(),
                        ));
                    }
                }
            }
            if !expand {
                continue;
            }
            for pid in machine.active_iter() {
                let child = machine.branch_step(pid)?;
                if !admit(&mut seen, child.fingerprint(), &child) {
                    continue;
                }
                if seen.len() > limits.max_configs {
                    complete = false;
                    break 'layers;
                }
                let child_link = links.len();
                links.push((*link, pid));
                if let Some(violation) = decision_violation(&child, inputs, child_link, &links) {
                    return Ok((violation, stats!()));
                }
                next.push((child, child_link));
            }
        }
        frontier = next;
        // Mirror of the engine: a solo-check-only horizon pass expanded
        // nothing, so it does not count toward `depth_reached`.
        if expand {
            depth += 1;
        }
    }
    let outcome = ExploreOutcome::Clean {
        configs: seen.len(),
        complete,
    };
    Ok((outcome, stats!()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::explore_stats;
    use crate::strawmen::{OneMaxRegister, OneRegister};
    use cbh_core::cas::CasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;

    fn agree<P: Protocol>(protocol: &P, inputs: &[u64], limits: ExploreLimits) {
        let engine = explore_stats(protocol, inputs, limits).unwrap();
        let oracle = reference_explore(protocol, inputs, limits).unwrap();
        assert_eq!(engine, oracle, "engine and reference oracle diverged");
    }

    #[test]
    fn oracle_matches_engine_on_clean_protocols() {
        agree(
            &CasConsensus::new(3),
            &[0, 1, 2],
            ExploreLimits {
                depth: 10,
                max_configs: 100_000,
                solo_check_budget: Some(10),
                memory_budget: None,
                checkpoint_every: None,
            },
        );
        agree(
            &MaxRegConsensus::new(2),
            &[0, 1],
            ExploreLimits {
                depth: 10,
                max_configs: 100_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        );
    }

    #[test]
    fn oracle_matches_engine_on_violations_including_the_schedule() {
        agree(&OneMaxRegister::new(), &[0, 1], ExploreLimits::default());
        agree(&OneRegister::new(2), &[0, 1], ExploreLimits::default());
        agree(&OneRegister::new(3), &[0, 1, 1], ExploreLimits::default());
    }

    #[test]
    fn oracle_matches_engine_under_the_config_cap() {
        // The over-cap exit path must account configurations identically.
        for cap in [1, 2, 7, 50, 400] {
            agree(
                &MaxRegConsensus::new(2),
                &[1, 0],
                ExploreLimits {
                    depth: 12,
                    max_configs: cap,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
    }

    #[test]
    fn oracle_matches_engine_at_shallow_horizons() {
        // Incomplete exploration: the `complete: false` flag and the layer
        // accounting must agree at every horizon.
        for depth in 0..8 {
            agree(
                &MaxRegConsensus::new(3),
                &[0, 1, 2],
                ExploreLimits {
                    depth,
                    max_configs: 100_000,
                    solo_check_budget: None,
                    memory_budget: None,
                    checkpoint_every: None,
                },
            );
        }
    }
}
