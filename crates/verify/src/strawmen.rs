//! Deliberately undersized protocols for the adversaries to defeat.
//!
//! Each strawman is a *plausible* consensus attempt that respects its row's
//! instruction set but uses fewer locations than the lower bound allows. They
//! are obstruction-free and correct in solo runs — the adversaries of
//! [`crate::adversary`] find the interleavings that break them, turning each
//! impossibility proof into a passing test.

use cbh_model::{
    Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value,
};

/// A 2-process binary consensus attempt on ONE max-register (impossible by
/// Theorem 4.1).
///
/// Each process writes `input + 1`, then reads; if the register still shows
/// its own write it decides its input, otherwise it adopts `value − 1`.
/// Solo it is perfectly correct; interleaved, Theorem 4.1's adversary makes
/// both processes see their own writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneMaxRegister;

impl OneMaxRegister {
    /// A fresh strawman.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        OneMaxRegister
    }
}

impl Default for OneMaxRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for OneMaxRegister {
    type Proc = OneMaxRegProc;

    fn name(&self) -> String {
        "strawman-one-max-register".into()
    }

    fn n(&self) -> usize {
        2
    }

    fn domain(&self) -> u64 {
        2
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::MaxRegister, 1)
    }

    fn spawn(&self, _pid: usize, input: u64) -> OneMaxRegProc {
        assert!(input < 2);
        OneMaxRegProc {
            input,
            stage: MaxStage::Write,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MaxStage {
    Write,
    Read,
    Done(u64),
}

/// Per-process state of [`OneMaxRegister`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OneMaxRegProc {
    input: u64,
    stage: MaxStage,
}

impl Process for OneMaxRegProc {
    fn action(&self) -> Action {
        match &self.stage {
            MaxStage::Write => Action::Invoke(Op::single(
                0,
                Instruction::WriteMax(Value::int(self.input + 1)),
            )),
            MaxStage::Read => Action::Invoke(Op::single(0, Instruction::ReadMax)),
            MaxStage::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match self.stage {
            MaxStage::Write => self.stage = MaxStage::Read,
            MaxStage::Read => {
                let v = result.as_u64().expect("register holds small naturals");
                self.stage = MaxStage::Done(v.saturating_sub(1));
            }
            MaxStage::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

/// A 2-process binary consensus attempt on ONE
/// `{read, write, fetch-and-increment}` location (impossible by Theorem 5.1).
///
/// Input-0 processes announce themselves with `fetch-and-increment()`;
/// input-1 processes `write(1000)` a sentinel. Everyone then reads: a read of
/// the sentinel decides 1, otherwise 0 — except a fetch-and-increment that
/// already returned the sentinel range decides 1 immediately. Correct solo
/// and under many schedules; Theorem 5.1's adversary finds the write that
/// obliterates the increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneFetchIncWord;

impl OneFetchIncWord {
    /// A fresh strawman.
    pub fn new() -> Self {
        OneFetchIncWord
    }
}

impl Default for OneFetchIncWord {
    fn default() -> Self {
        Self::new()
    }
}

const SENTINEL: u64 = 1000;

impl Protocol for OneFetchIncWord {
    type Proc = OneFetchIncProc;

    fn name(&self) -> String {
        "strawman-one-fetch-inc-word".into()
    }

    fn n(&self) -> usize {
        2
    }

    fn domain(&self) -> u64 {
        2
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::ReadWriteFetchIncrement, 1)
    }

    fn spawn(&self, _pid: usize, input: u64) -> OneFetchIncProc {
        assert!(input < 2);
        OneFetchIncProc {
            input,
            stage: FiStage::Announce,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FiStage {
    Announce,
    Read,
    Done(u64),
}

/// Per-process state of [`OneFetchIncWord`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OneFetchIncProc {
    input: u64,
    stage: FiStage,
}

impl Process for OneFetchIncProc {
    fn action(&self) -> Action {
        match &self.stage {
            FiStage::Announce if self.input == 0 => {
                Action::Invoke(Op::single(0, Instruction::FetchAndIncrement))
            }
            FiStage::Announce => {
                Action::Invoke(Op::single(0, Instruction::write(SENTINEL)))
            }
            FiStage::Read => Action::Invoke(Op::read(0)),
            FiStage::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match self.stage {
            FiStage::Announce => {
                if self.input == 0 {
                    let seen = result.as_u64().expect("word holds naturals");
                    if seen >= SENTINEL {
                        self.stage = FiStage::Done(1);
                        return;
                    }
                }
                self.stage = FiStage::Read;
            }
            FiStage::Read => {
                let v = result.as_u64().expect("word holds naturals");
                self.stage = FiStage::Done(u64::from(v >= SENTINEL));
            }
            FiStage::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

/// An `n`-process consensus attempt on ONE multi-writer register — below the
/// `n`-register bound of \[EGZ18\] for every `n ≥ 2` (and below `n = 2` already
/// for two processes).
///
/// Every process swaps in... it cannot; it only has `read`/`write`. It writes
/// its input, reads, and decides what it reads after seeing the same value
/// twice. Plain write-overwrite races break it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneRegister {
    n: usize,
}

impl OneRegister {
    /// A fresh strawman for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        OneRegister { n }
    }
}

impl Protocol for OneRegister {
    type Proc = OneRegisterProc;

    fn name(&self) -> String {
        "strawman-one-register".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        2
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::ReadWrite, 1).with_initial(vec![Value::Bot])
    }

    fn spawn(&self, _pid: usize, input: u64) -> OneRegisterProc {
        assert!(input < 2);
        OneRegisterProc {
            input,
            last: None,
            stage: RegStage::Write,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RegStage {
    Write,
    Read,
    Done(u64),
}

/// Per-process state of [`OneRegister`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OneRegisterProc {
    input: u64,
    last: Option<u64>,
    stage: RegStage,
}

impl Process for OneRegisterProc {
    fn action(&self) -> Action {
        match &self.stage {
            RegStage::Write => Action::Invoke(Op::single(0, Instruction::write(self.input))),
            RegStage::Read => Action::Invoke(Op::read(0)),
            RegStage::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match self.stage {
            RegStage::Write => self.stage = RegStage::Read,
            RegStage::Read => {
                let v = result.as_u64().expect("register holds bits");
                if self.last == Some(v) {
                    self.stage = RegStage::Done(v);
                } else {
                    self.last = Some(v);
                }
            }
            RegStage::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::Machine;

    #[test]
    fn strawmen_are_correct_solo() {
        // Each strawman decides its own input in a solo run — they are
        // plausible protocols, broken only by interleaving.
        let p = OneMaxRegister::new();
        let mut m = Machine::start(&p, &[1, 0]).unwrap();
        assert_eq!(m.run_solo(0, 100).unwrap(), Some(1));

        let p = OneFetchIncWord::new();
        let mut m = Machine::start(&p, &[0, 1]).unwrap();
        assert_eq!(m.run_solo(0, 100).unwrap(), Some(0));
        let mut m = Machine::start(&p, &[1, 0]).unwrap();
        assert_eq!(m.run_solo(0, 100).unwrap(), Some(1));

        let p = OneRegister::new(2);
        let mut m = Machine::start(&p, &[1, 0]).unwrap();
        assert_eq!(m.run_solo(0, 100).unwrap(), Some(1));
    }

    #[test]
    fn strawmen_respect_their_instruction_sets() {
        // Running them never triggers a uniformity violation.
        let p = OneMaxRegister::new();
        let mut m = Machine::start(&p, &[0, 1]).unwrap();
        m.run(cbh_sim::RoundRobinScheduler::new(), 100).unwrap();
        let p = OneFetchIncWord::new();
        let mut m = Machine::start(&p, &[0, 1]).unwrap();
        m.run(cbh_sim::RoundRobinScheduler::new(), 100).unwrap();
    }
}
