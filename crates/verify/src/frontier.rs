//! Memory-bounded frontier storage: in-memory queues that spill to disk.
//!
//! The exploration engines hold three kinds of pending state in memory: the
//! sequential engine's admission queue, the work-stealing pool's per-worker
//! deques, and the committer's reorder buffer. All of them are bounded only
//! by the frontier width, which on dense rows outgrows RAM long before the
//! time budget is spent. This module gives each of them a budgeted backend:
//!
//! - [`FrontierStore`] — a FIFO queue. Within the budget it *is* the plain
//!   `VecDeque` the engines always used (the in-memory backend); past the
//!   budget it drains its resident backlog as one **run** of encoded
//!   records into a [`SpillArena`] and streams the run back, record by
//!   record, when the queue's head reaches it. Runs are written in
//!   admission order and read in admission order, so the queue's FIFO
//!   contract — and therefore the committer's determinism argument — is
//!   untouched by where the bytes live.
//! - [`ReorderBuffer`] — an index-addressed map for the committer's
//!   out-of-order results. Past the budget the entries with the *largest*
//!   admission indices (the ones the committer needs last) are encoded and
//!   parked in the arena individually.
//!
//! Encoding is delegated to a [`SpillCodec`]; the packed engine's codec
//! delta-compresses each record against its predecessor in the run
//! (consecutive admissions are siblings or cousins, so a record is a few
//! bytes — see [`cbh_model::packed::delta`]).
//!
//! # Budget semantics
//!
//! The budget is **shared and soft**: every store of one run updates one
//! [`MemTracker`], spilling is triggered when the *global* resident total
//! exceeds the budget, and each store drains only its own backlog — so the
//! peak can overshoot by the in-flight run being encoded or streamed back.
//! [`MemTracker::peak_resident_bytes`] reports the truth either way, which
//! is also how callers pick a budget: run once unbounded, read the peak,
//! budget a fraction of it.
//!
//! # Hygiene
//!
//! Arena files live under [`spill_dir`] (`CBH_SPILL_DIR`, else the system
//! temp dir) and are deleted when the arena drops — on normal return *and*
//! during unwinding, so a panicking worker (the engine's `StopGuard` path)
//! leaves no orphaned spill files behind.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cbh_model::packed::delta::{read_varint, write_varint};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed spill-IO failure: what went wrong when the budgeted stores tried
/// to move bytes to or from disk. Workers map these to a clean
/// [`cbh_sim::SimError::Spill`] instead of panicking, so a full disk or an
/// unwritable spill directory surfaces as an error outcome, not an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// Creating the arena file failed (missing/unwritable spill dir, EMFILE).
    Create {
        /// The path that could not be created.
        path: String,
        /// The OS-level failure class.
        kind: std::io::ErrorKind,
    },
    /// Writing a run failed mid-stream (disk full, IO error).
    Write {
        /// The OS-level failure class.
        kind: std::io::ErrorKind,
    },
    /// The OS accepted fewer bytes than the run holds.
    ShortWrite,
    /// Reading a run back failed.
    Read {
        /// The OS-level failure class.
        kind: std::io::ErrorKind,
    },
    /// The file ended before the run's recorded length — truncation.
    ShortRead {
        /// Offset the read started at.
        offset: u64,
        /// Bytes the run index said were there.
        wanted: usize,
    },
    /// Bytes read back don't parse as the structure that was written
    /// (framing violation, unsorted fingerprint run).
    Corrupt {
        /// What failed to parse.
        detail: String,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Create { path, kind } => {
                write!(f, "create spill arena {path}: {kind}")
            }
            SpillError::Write { kind } => write!(f, "write spill run: {kind}"),
            SpillError::ShortWrite => write!(f, "short write to spill arena"),
            SpillError::Read { kind } => write!(f, "read spill run: {kind}"),
            SpillError::ShortRead { offset, wanted } => {
                write!(f, "spill run truncated: wanted {wanted} bytes at offset {offset}")
            }
            SpillError::Corrupt { detail } => write!(f, "corrupt spill run: {detail}"),
        }
    }
}

impl std::error::Error for SpillError {}

impl From<SpillError> for cbh_sim::SimError {
    fn from(err: SpillError) -> Self {
        cbh_sim::SimError::Spill {
            detail: err.to_string(),
        }
    }
}

/// How a store element crosses the memory/disk boundary.
///
/// `decode` consumes exactly the bytes `encode` produced for the record (the
/// stores frame records with length prefixes); `prev` is the record encoded
/// immediately before this one in the same run — the delta base — and is
/// `None` for a run's first record and for individually parked records.
pub trait SpillCodec {
    /// The element type stored.
    type Item;

    /// Appends `item`'s record to `out`, optionally delta-encoded against
    /// `prev`.
    fn encode(&self, item: &Self::Item, prev: Option<&Self::Item>, out: &mut Vec<u8>);

    /// Rebuilds an item from the exact bytes `encode` wrote.
    ///
    /// Spill records are written and read by the same process, so a decode
    /// failure is an engine bug, not an input condition: implementations
    /// should panic with the underlying typed error.
    fn decode(&self, bytes: &[u8], prev: Option<&Self::Item>) -> Self::Item;

    /// Decodes the next record of a streamed-back run, advancing the delta
    /// chain: `prev` holds the previously decoded item on entry and must
    /// hold this record's item on exit (it is the next record's base).
    ///
    /// The default matches `decode` + a clone. Codecs whose items are
    /// expensive to clone override it to patch `prev` in place (one state
    /// build per record instead of two); codecs that ignore `prev` override
    /// it to skip chain upkeep entirely.
    fn decode_step(&self, bytes: &[u8], prev: &mut Option<Self::Item>) -> Self::Item
    where
        Self::Item: Clone,
    {
        let item = self.decode(bytes, prev.as_ref());
        *prev = Some(item.clone());
        item
    }

    /// Approximate resident footprint of `item` in bytes (budget accounting).
    fn cost(&self, item: &Self::Item) -> usize;

    /// `false` exempts an item from being parked by a [`ReorderBuffer`]
    /// (e.g. error results the committer is about to consume and propagate,
    /// which the codec therefore never has to encode). [`FrontierStore`]
    /// ignores this hook: its FIFO runs encode the backlog wholesale —
    /// holding selected items back would reorder the queue — so only pair
    /// it with codecs whose items are all encodable.
    fn spillable(&self, _item: &Self::Item) -> bool {
        true
    }
}

/// The directory spill arenas are created in: `CBH_SPILL_DIR` if set (the
/// hygiene tests point it at a fresh directory to observe cleanup), else the
/// system temp dir.
pub fn spill_dir() -> PathBuf {
    std::env::var_os("CBH_SPILL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

static ARENA_SEQ: AtomicU64 = AtomicU64::new(0);

/// At most this many appended runs may sit in the writer's queue: the one
/// being written plus one more being encoded — the classic double buffer.
/// Appending a third blocks until the in-flight write retires, which bounds
/// the unaccounted encoded bytes to two runs (covered by the documented
/// budget slack).
const MAX_PENDING_WRITES: usize = 2;

/// State shared between appenders/readers and the background writer thread.
struct WriterState {
    file: Option<Arc<File>>,
    path: Option<PathBuf>,
    /// Logical file length: every append reserves its offset here
    /// immediately, before the bytes hit the disk.
    len: u64,
    /// Runs accepted but not yet written, in offset order.
    pending: VecDeque<(u64, Arc<Vec<u8>>)>,
    /// The run the writer thread is currently writing, still readable from
    /// memory until the write retires.
    in_flight: Option<(u64, Arc<Vec<u8>>)>,
    /// First IO failure; sticky. Once set, appends and reads fail fast and
    /// queued runs are discarded.
    error: Option<SpillError>,
    shutdown: bool,
}

struct WriterShared {
    state: Mutex<WriterState>,
    /// Signals the writer thread that work (or shutdown) arrived.
    work: Condvar,
    /// Signals appenders (backpressure) and readers (drain) that a write
    /// retired or failed.
    done: Condvar,
}

/// Writes `bytes` at `offset` with positioned IO (no shared cursor), so the
/// writer thread and concurrent positioned reads never race a seek.
fn write_at(file: &File, offset: u64, bytes: &[u8]) -> Result<(), SpillError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(bytes, offset).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WriteZero {
                SpillError::ShortWrite
            } else {
                SpillError::Write { kind: e.kind() }
            }
        })
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))
            .and_then(|_| f.write_all(bytes))
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::WriteZero {
                    SpillError::ShortWrite
                } else {
                    SpillError::Write { kind: e.kind() }
                }
            })
    }
}

/// Reads exactly `len` bytes at `offset` with positioned IO.
fn read_exact_at(file: &File, offset: u64, len: usize) -> Result<Vec<u8>, SpillError> {
    let mut buf = vec![0u8; len];
    let res = {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            file.read_exact_at(&mut buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = file;
            f.seek(SeekFrom::Start(offset))
                .and_then(|_| f.read_exact(&mut buf))
        }
    };
    res.map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SpillError::ShortRead { offset, wanted: len }
        } else {
            SpillError::Read { kind: e.kind() }
        }
    })?;
    Ok(buf)
}

fn writer_loop(shared: Arc<WriterShared>) {
    let mut st = shared.state.lock().unwrap();
    loop {
        if let Some((offset, bytes)) = st.pending.pop_front() {
            if st.error.is_some() {
                // Sticky failure: discard queued runs so appenders blocked on
                // backpressure wake up and observe the error.
                shared.done.notify_all();
                continue;
            }
            let file = Arc::clone(st.file.as_ref().expect("file created before first append"));
            // Readers can still serve this run from memory while its write
            // is in flight.
            st.in_flight = Some((offset, Arc::clone(&bytes)));
            drop(st);
            let res = write_at(&file, offset, &bytes);
            st = shared.state.lock().unwrap();
            st.in_flight = None;
            if let Err(e) = res {
                st.error = Some(e);
            }
            shared.done.notify_all();
        } else if st.shutdown {
            return;
        } else {
            st = shared.work.wait(st).unwrap();
        }
    }
}

/// One run's append-only spill file, shared by every store of the run.
///
/// Created lazily on the first spill (a run that never exceeds its budget
/// never touches the filesystem); the file is removed when the arena drops,
/// including during panic unwinding.
///
/// Writes are **double-buffered**: [`SpillArena::append`] reserves the run's
/// offset, hands the encoded bytes to a background writer thread and returns
/// immediately, so the caller encodes its next run while this one's IO is in
/// flight. At most [`MAX_PENDING_WRITES`] runs queue before an append blocks.
/// Reads never wait for the writer: a run still queued or mid-write is
/// served from its in-memory buffer, and durable bytes are read with
/// positioned IO that cannot race the writer's positioned writes. IO
/// failures are sticky and typed: the first [`SpillError`] is returned from
/// every subsequent append or read.
pub struct SpillArena {
    shared: Arc<WriterShared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SpillArena {
    fn new() -> Self {
        SpillArena {
            shared: Arc::new(WriterShared {
                state: Mutex::new(WriterState {
                    file: None,
                    path: None,
                    len: 0,
                    pending: VecDeque::new(),
                    in_flight: None,
                    error: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            worker: Mutex::new(None),
        }
    }

    /// Queues `bytes` for appending and returns their reserved offset. The
    /// write itself happens on the background writer thread; this call only
    /// blocks when [`MAX_PENDING_WRITES`] runs are already queued.
    ///
    /// # Errors
    ///
    /// [`SpillError::Create`] if the spill file cannot be created, or the
    /// arena's sticky IO error if a previous write failed.
    pub fn append(&self, bytes: Vec<u8>) -> Result<u64, SpillError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        if st.file.is_none() {
            // Each process salts its own subdirectory: sharded exploration
            // runs many explorer processes against one CBH_SPILL_DIR, and
            // the per-pid directory keeps their arenas from colliding while
            // giving crash cleanup a single obvious unit to sweep.
            let dir = spill_dir().join(format!("cbh-spill-{}", std::process::id()));
            // `create_dir`, not `create_dir_all`: an unusable or missing
            // spill *base* directory must stay a typed `Create` error, not
            // be silently conjured into existence.
            if let Err(e) = std::fs::create_dir(&dir) {
                if e.kind() != std::io::ErrorKind::AlreadyExists {
                    return Err(SpillError::Create {
                        path: dir.display().to_string(),
                        kind: e.kind(),
                    });
                }
            }
            let path = dir.join(format!(
                "cbh-spill-{}-{}.bin",
                std::process::id(),
                ARENA_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let file = OpenOptions::new()
                .create_new(true)
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| SpillError::Create {
                    path: path.display().to_string(),
                    kind: e.kind(),
                })?;
            st.file = Some(Arc::new(file));
            st.path = Some(path);
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name("cbh-spill-writer".into())
                .spawn(move || writer_loop(shared))
                .map_err(|e| SpillError::Create {
                    path: "spill writer thread".into(),
                    kind: e.kind(),
                })?;
            *self.worker.lock().unwrap() = Some(handle);
        }
        while st.pending.len() >= MAX_PENDING_WRITES && st.error.is_none() {
            st = self.shared.done.wait(st).unwrap();
        }
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        let offset = st.len;
        st.len += bytes.len() as u64;
        st.pending.push_back((offset, Arc::new(bytes)));
        self.shared.work.notify_one();
        Ok(offset)
    }

    /// Reads `len` bytes back from `offset`. Never waits on in-flight IO:
    /// a run still queued (or mid-write) is served straight from its
    /// in-memory buffer, and anything already durable is read with
    /// positioned IO outside the state lock. Every read range lies entirely
    /// within one appended run, so the memory/disk split is never torn.
    pub(crate) fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, SpillError> {
        let file = {
            let st = self.shared.state.lock().unwrap();
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            let covering = st
                .pending
                .iter()
                .chain(st.in_flight.as_ref())
                .find(|(run_off, bytes)| {
                    offset >= *run_off && offset + len as u64 <= run_off + bytes.len() as u64
                });
            if let Some((run_off, bytes)) = covering {
                let start = (offset - run_off) as usize;
                return Ok(bytes[start..start + len].to_vec());
            }
            Arc::clone(
                st.file
                    .as_ref()
                    .ok_or(SpillError::ShortRead { offset, wanted: len })?,
            )
        };
        read_exact_at(&file, offset, len)
    }

    /// Drains the writer queue and syncs the file to stable storage: on
    /// return, every previously appended run is durable on disk (or the
    /// sticky IO error is reported). Checkpoints call this before recording
    /// arena offsets, so a snapshot can never reference a run whose bytes
    /// were still queued in the double buffer when the process died.
    pub(crate) fn sync(&self) -> Result<(), SpillError> {
        let file = {
            let mut st = self.shared.state.lock().unwrap();
            while (!st.pending.is_empty() || st.in_flight.is_some()) && st.error.is_none() {
                st = self.shared.done.wait(st).unwrap();
            }
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            match &st.file {
                Some(file) => Arc::clone(file),
                // Nothing was ever spilled: trivially durable.
                None => return Ok(()),
            }
        };
        file.sync_data()
            .map_err(|e| SpillError::Write { kind: e.kind() })
    }

    /// The durable file's path, if a spill has occurred. Test-only: lets the
    /// drain-and-sync test read the file back *bypassing* the in-memory
    /// double buffer, proving the bytes really reached the disk.
    #[cfg(test)]
    pub(crate) fn durable_path(&self) -> Option<PathBuf> {
        self.shared.state.lock().unwrap().path.clone()
    }
}

impl Drop for SpillArena {
    fn drop(&mut self) {
        // Poison-tolerant: the arena drops during panic unwinds too, and the
        // file must be removed even if the panicking thread held the lock.
        let path = {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            st.pending.clear(); // the file is about to be deleted
            self.shared.work.notify_all();
            st.path.take()
        };
        if let Some(handle) = self
            .worker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = handle.join();
        }
        if let Some(path) = path {
            let _ = std::fs::remove_file(&path);
            // Last arena out turns off the lights: removing the pid-salted
            // subdirectory only succeeds once it is empty, which is exactly
            // the hygiene invariant (errors mean a sibling arena is still
            // live, and its own drop will retry).
            if let Some(dir) = path.parent() {
                let _ = std::fs::remove_dir(dir);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared accounting
// ---------------------------------------------------------------------------

/// Run-wide memory accounting, shared by every store of one exploration.
#[derive(Default)]
pub struct MemTracker {
    resident: AtomicUsize,
    peak: AtomicUsize,
    spilled: AtomicU64,
}

impl MemTracker {
    pub(crate) fn add_resident(&self, n: usize) {
        let now = self.resident.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn sub_resident(&self, n: usize) {
        self.resident.fetch_sub(n, Ordering::Relaxed);
    }

    pub(crate) fn add_spilled(&self, n: u64) {
        self.spilled.fetch_add(n, Ordering::Relaxed);
    }

    /// Bytes currently resident across all stores.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of [`MemTracker::resident_bytes`].
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total encoded bytes written to the arena.
    pub fn bytes_spilled(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }
}

/// The handle an exploration run threads through its stores: one arena, one
/// tracker, one budget. Cloning shares all three.
#[derive(Clone)]
pub struct SpillContext {
    arena: Arc<SpillArena>,
    tracker: Arc<MemTracker>,
    budget: Option<usize>,
}

impl SpillContext {
    /// A fresh context; `budget: None` never spills (the pure in-memory
    /// backend) but still tracks the resident peak.
    pub fn new(budget: Option<usize>) -> Self {
        SpillContext {
            arena: Arc::new(SpillArena::new()),
            tracker: Arc::new(MemTracker::default()),
            budget,
        }
    }

    /// The run-wide accounting shared by this context's stores.
    pub fn tracker(&self) -> &MemTracker {
        &self.tracker
    }

    /// The shared arena this context's stores spill into. Public so the
    /// hygiene integration test can provoke a spill file directly and
    /// observe the pid-salted directory lifecycle from outside the crate.
    pub fn arena(&self) -> &SpillArena {
        &self.arena
    }

    /// Drains and fsyncs the arena; see [`SpillArena::sync`].
    pub(crate) fn sync(&self) -> Result<(), SpillError> {
        self.arena.sync()
    }

    /// The byte budget this context enforces (`None` = unbounded).
    pub(crate) fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// `true` when the run-wide resident total exceeds the budget.
    pub(crate) fn over_budget(&self) -> bool {
        self.budget
            .is_some_and(|b| self.tracker.resident_bytes() > b)
    }

    /// Stores amortise spilling by draining only backlogs of at least this
    /// many bytes — a quarter of the budget (split across however many
    /// stores are active), capped so huge budgets still spill in bounded
    /// runs, and floored at 4 KiB so tight budgets batch writer round trips
    /// instead of trickling sub-KB runs (the overshoot rides the documented
    /// slack). The floor never exceeds the budget itself, so sub-4 KiB
    /// budgets still spill as soon as the backlog outgrows them, and a
    /// **zero** budget keeps the historical spill-on-every-push
    /// degeneration, which is exactly what the spill-every-layer stress
    /// tests ask for.
    fn min_run_bytes(&self) -> usize {
        const MAX_RUN: usize = 1 << 20;
        match self.budget {
            None => MAX_RUN,
            Some(0) => 0,
            Some(b) => (b / 4).clamp(4096, MAX_RUN).min(b),
        }
    }
}

// ---------------------------------------------------------------------------
// FIFO store
// ---------------------------------------------------------------------------

/// One spilled run: `count` length-prefixed records at `offset`.
struct Run {
    offset: u64,
    bytes: usize,
    count: usize,
}

/// A run being streamed back: its bytes, a read position, and the previously
/// decoded record (the delta base for the next one).
struct Cursor<T> {
    buf: Vec<u8>,
    pos: usize,
    remaining: usize,
    prev: Option<T>,
}

/// A FIFO queue of `C::Item` with a byte budget.
///
/// Always pops in exact push order. Within the budget it behaves like (and
/// costs like) a `VecDeque`; past it, the resident backlog is encoded as one
/// admission-ordered run in the shared arena and streamed back — decoded one
/// record at a time, each the delta base of the next — when its turn to pop
/// comes. Pop order is `oldest run → … → newest run → resident backlog`,
/// which is push order because spilling always drains the *entire* backlog.
pub struct FrontierStore<C: SpillCodec> {
    codec: C,
    ctx: SpillContext,
    back: VecDeque<(C::Item, usize)>,
    back_cost: usize,
    runs: VecDeque<Run>,
    cursor: Option<Cursor<C::Item>>,
    len: usize,
}

impl<C: SpillCodec> FrontierStore<C>
where
    C::Item: Clone,
{
    /// An empty store drawing on `ctx`'s arena, tracker and budget.
    pub fn new(codec: C, ctx: SpillContext) -> Self {
        FrontierStore {
            codec,
            ctx,
            back: VecDeque::new(),
            back_cost: 0,
            runs: VecDeque::new(),
            cursor: None,
            len: 0,
        }
    }

    /// Items queued (resident and spilled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item`; may spill the resident backlog to stay near budget.
    ///
    /// # Errors
    ///
    /// Propagates the arena's typed [`SpillError`] if the backlog had to
    /// spill and the write could not be queued.
    pub fn push(&mut self, item: C::Item) -> Result<(), SpillError> {
        let cost = self.codec.cost(&item);
        self.ctx.tracker.add_resident(cost);
        self.back.push_back((item, cost));
        self.back_cost += cost;
        self.len += 1;
        if self.ctx.over_budget() && self.back_cost >= self.ctx.min_run_bytes() {
            self.spill_back()?;
        }
        Ok(())
    }

    /// Encodes the whole resident backlog as one run, in order.
    fn spill_back(&mut self) -> Result<(), SpillError> {
        let mut buf = Vec::new();
        let mut prev: Option<&C::Item> = None;
        let mut record = Vec::new();
        let count = self.back.len();
        for (item, _) in &self.back {
            record.clear();
            self.codec.encode(item, prev, &mut record);
            write_varint(&mut buf, record.len() as u64);
            buf.extend_from_slice(&record);
            prev = Some(item);
        }
        let bytes = buf.len();
        let offset = self.ctx.arena.append(buf)?;
        self.ctx.tracker.add_spilled(bytes as u64);
        self.ctx.tracker.sub_resident(self.back_cost);
        self.runs.push_back(Run {
            offset,
            bytes,
            count,
        });
        self.back.clear();
        self.back_cost = 0;
        Ok(())
    }

    /// Dequeues the oldest item.
    ///
    /// # Errors
    ///
    /// Propagates the arena's typed [`SpillError`] if a spilled run could
    /// not be streamed back.
    pub fn pop(&mut self) -> Result<Option<C::Item>, SpillError> {
        loop {
            if let Some(cursor) = &mut self.cursor {
                if cursor.remaining > 0 {
                    let mut slice = &cursor.buf[cursor.pos..];
                    let before = slice.len();
                    let rec_len = read_varint(&mut slice).map_err(|e| SpillError::Corrupt {
                        detail: format!("spill run framing: {e}"),
                    })? as usize;
                    let record = &slice[..rec_len];
                    let item = self.codec.decode_step(record, &mut cursor.prev);
                    cursor.pos += before - slice.len() + rec_len;
                    cursor.remaining -= 1;
                    self.len -= 1;
                    return Ok(Some(item));
                }
                let spent = self.cursor.take().expect("checked above");
                self.ctx.tracker.sub_resident(spent.buf.len());
            } else if let Some(run) = self.runs.pop_front() {
                // Stream the oldest run back: its (delta-compressed) bytes
                // become resident while being consumed.
                let buf = self.ctx.arena.read(run.offset, run.bytes)?;
                self.ctx.tracker.add_resident(buf.len());
                self.cursor = Some(Cursor {
                    buf,
                    pos: 0,
                    remaining: run.count,
                    prev: None,
                });
            } else {
                let Some((item, cost)) = self.back.pop_front() else {
                    return Ok(None);
                };
                self.back_cost -= cost;
                self.ctx.tracker.sub_resident(cost);
                self.len -= 1;
                return Ok(Some(item));
            }
        }
    }

    /// Pops up to `cap` items, preserving order (layer-block materialisation
    /// for the barrier engine's parallel expansion).
    ///
    /// # Errors
    ///
    /// Propagates the first [`SpillError`] from the underlying pops.
    pub fn pop_block(&mut self, cap: usize) -> Result<Vec<C::Item>, SpillError> {
        let mut block = Vec::new();
        while block.len() < cap {
            match self.pop()? {
                Some(item) => block.push(item),
                None => break,
            }
        }
        Ok(block)
    }
}

impl<C: SpillCodec> Drop for FrontierStore<C> {
    fn drop(&mut self) {
        // Return the unconsumed resident cost so a store dropped mid-run
        // (early verdicts, panics) leaves the shared accounting exact.
        self.ctx.tracker.sub_resident(self.back_cost);
        if let Some(cursor) = &self.cursor {
            self.ctx.tracker.sub_resident(cursor.buf.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Reorder buffer
// ---------------------------------------------------------------------------

/// An index-addressed buffer for results completing out of admission order.
///
/// Past the budget, spillable entries with the largest indices — the ones
/// the in-order committer will wait longest for — are encoded individually
/// into the arena and decoded back on [`ReorderBuffer::remove`].
pub struct ReorderBuffer<C: SpillCodec> {
    codec: C,
    ctx: SpillContext,
    resident: HashMap<usize, (C::Item, usize)>,
    parked: HashMap<usize, (u64, usize)>,
    resident_cost: usize,
}

impl<C: SpillCodec> ReorderBuffer<C> {
    /// An empty buffer drawing on `ctx`'s arena, tracker and budget.
    pub fn new(codec: C, ctx: SpillContext) -> Self {
        ReorderBuffer {
            codec,
            ctx,
            resident: HashMap::new(),
            parked: HashMap::new(),
            resident_cost: 0,
        }
    }

    /// Inserts `item` under `index`; may park large-index entries on disk.
    /// Re-inserting an occupied index replaces the entry (the displaced
    /// one's accounting is reclaimed; its parked bytes, if any, stay in the
    /// append-only arena until the run ends).
    ///
    /// # Errors
    ///
    /// Propagates the arena's typed [`SpillError`] if parking failed.
    pub fn insert(&mut self, index: usize, item: C::Item) -> Result<(), SpillError> {
        let cost = self.codec.cost(&item);
        self.ctx.tracker.add_resident(cost);
        self.resident_cost += cost;
        if let Some((_, old_cost)) = self.resident.insert(index, (item, cost)) {
            self.ctx.tracker.sub_resident(old_cost);
            self.resident_cost -= old_cost;
        }
        self.parked.remove(&index);
        if self.ctx.over_budget() && self.resident_cost >= self.ctx.min_run_bytes() {
            self.park_excess()?;
        }
        Ok(())
    }

    fn park_excess(&mut self) -> Result<(), SpillError> {
        let mut indices: Vec<usize> = self
            .resident
            .iter()
            .filter(|(_, (item, _))| self.codec.spillable(item))
            .map(|(&i, _)| i)
            .collect();
        indices.sort_unstable();
        while self.ctx.over_budget() {
            let Some(index) = indices.pop() else { break };
            let (item, cost) = self.resident.remove(&index).expect("listed above");
            let mut buf = Vec::new();
            self.codec.encode(&item, None, &mut buf);
            let bytes = buf.len();
            let offset = self.ctx.arena.append(buf)?;
            self.ctx.tracker.add_spilled(bytes as u64);
            self.ctx.tracker.sub_resident(cost);
            self.resident_cost -= cost;
            self.parked.insert(index, (offset, bytes));
        }
        Ok(())
    }

    /// Removes and returns the entry at `index`, reading it back from the
    /// arena if it was parked.
    ///
    /// # Errors
    ///
    /// Propagates the arena's typed [`SpillError`] if a parked entry could
    /// not be read back.
    pub fn remove(&mut self, index: usize) -> Result<Option<C::Item>, SpillError> {
        if let Some((item, cost)) = self.resident.remove(&index) {
            self.ctx.tracker.sub_resident(cost);
            self.resident_cost -= cost;
            return Ok(Some(item));
        }
        let Some((offset, len)) = self.parked.remove(&index) else {
            return Ok(None);
        };
        let bytes = self.ctx.arena.read(offset, len)?;
        Ok(Some(self.codec.decode(&bytes, None)))
    }
}

impl<C: SpillCodec> Drop for ReorderBuffer<C> {
    fn drop(&mut self) {
        self.ctx.tracker.sub_resident(self.resident_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test codec: u64 items, encoded as (delta against prev) varints.
    #[derive(Clone)]
    struct U64Codec;

    impl SpillCodec for U64Codec {
        type Item = u64;

        fn encode(&self, item: &u64, prev: Option<&u64>, out: &mut Vec<u8>) {
            write_varint(out, item ^ prev.copied().unwrap_or(0));
        }

        fn decode(&self, mut bytes: &[u8], prev: Option<&u64>) -> u64 {
            read_varint(&mut bytes).expect("test record") ^ prev.copied().unwrap_or(0)
        }

        fn cost(&self, _item: &u64) -> usize {
            8
        }
    }

    fn drain<C: SpillCodec<Item = u64>>(store: &mut FrontierStore<C>) -> Vec<u64>
    where
        C::Item: Clone,
    {
        std::iter::from_fn(|| store.pop().unwrap()).collect()
    }

    #[test]
    fn unbudgeted_store_is_plain_fifo() {
        let ctx = SpillContext::new(None);
        let mut store = FrontierStore::new(U64Codec, ctx.clone());
        for v in 0..100 {
            store.push(v).unwrap();
        }
        assert_eq!(store.len(), 100);
        assert_eq!(drain(&mut store), (0..100).collect::<Vec<_>>());
        assert_eq!(ctx.tracker().bytes_spilled(), 0);
        assert_eq!(ctx.tracker().peak_resident_bytes(), 800);
        assert_eq!(ctx.tracker().resident_bytes(), 0);
    }

    #[test]
    fn spilling_store_preserves_fifo_across_runs() {
        // Budget of one item: every push past the first spills.
        let ctx = SpillContext::new(Some(8));
        let mut store = FrontierStore::new(U64Codec, ctx.clone());
        let mut expect = Vec::new();
        // Interleave pushes and pops so runs, cursors and the resident
        // backlog all participate.
        let mut popped = Vec::new();
        for round in 0..10u64 {
            for i in 0..20 {
                let v = round * 100 + i;
                store.push(v).unwrap();
                expect.push(v);
            }
            for _ in 0..5 {
                popped.push(store.pop().unwrap().unwrap());
            }
        }
        popped.extend(drain(&mut store));
        assert_eq!(popped, expect);
        assert!(ctx.tracker().bytes_spilled() > 0);
        assert_eq!(ctx.tracker().resident_bytes(), 0);
    }

    #[test]
    fn zero_budget_spills_every_push() {
        let ctx = SpillContext::new(Some(0));
        let mut store = FrontierStore::new(U64Codec, ctx.clone());
        for v in 0..10 {
            store.push(v).unwrap();
        }
        assert!(ctx.tracker().bytes_spilled() > 0);
        assert_eq!(drain(&mut store), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sync_makes_queued_runs_durable_before_a_snapshot() {
        // Fill the double buffer to its limit (MAX_PENDING_WRITES = 2 runs
        // may sit queued/in-flight), then sync and read the bytes back from
        // the file *directly* — not through SpillArena::read, which would
        // happily serve them from the in-memory queue. This is the property
        // a checkpoint relies on: after sync, every recorded arena offset
        // resolves from the durable file alone.
        let ctx = SpillContext::new(Some(0));
        let run_a: Vec<u8> = (0u8..64).collect();
        let run_b: Vec<u8> = (64u8..128).collect();
        let off_a = ctx.arena().append(run_a.clone()).unwrap();
        let off_b = ctx.arena().append(run_b.clone()).unwrap();
        ctx.sync().unwrap();
        let path = ctx.arena().durable_path().expect("spill file exists");
        let file = File::open(&path).unwrap();
        assert_eq!(read_exact_at(&file, off_a, run_a.len()).unwrap(), run_a);
        assert_eq!(read_exact_at(&file, off_b, run_b.len()).unwrap(), run_b);
        // Sync on a never-spilled arena is a no-op, not an error.
        SpillContext::new(None).sync().unwrap();
    }

    #[test]
    fn reorder_buffer_parks_and_restores_out_of_order() {
        let ctx = SpillContext::new(Some(0));
        let mut buffer = ReorderBuffer::new(U64Codec, ctx.clone());
        for index in (0..50).rev() {
            buffer.insert(index, index as u64 * 7).unwrap();
        }
        assert!(ctx.tracker().bytes_spilled() > 0);
        for index in 0..50 {
            assert_eq!(buffer.remove(index).unwrap(), Some(index as u64 * 7), "{index}");
        }
        assert_eq!(buffer.remove(0).unwrap(), None);
        assert_eq!(ctx.tracker().resident_bytes(), 0);
    }

    #[test]
    fn dropped_stores_release_their_accounting_and_files() {
        let ctx = SpillContext::new(Some(0));
        {
            let mut store = FrontierStore::new(U64Codec, ctx.clone());
            for v in 0..10 {
                store.push(v).unwrap();
            }
            store.pop().unwrap();
        }
        assert_eq!(ctx.tracker().resident_bytes(), 0);
    }

}
