//! The trace-replay oracle: captured physical schedules vs the model.
//!
//! The `threaded-trace` backend runs a scenario on real OS threads with
//! capture enabled ([`cbh_sync::run_threaded_traced`]), lowers the merged
//! [`CompactTrace`] to a [`Schedule`], and replays it through the
//! deterministic machine. The contract is *lockstep agreement*: the replay
//! must reproduce the threaded run's decisions, `steps`,
//! `locations_allocated` and `locations_touched` bit for bit — any gap means
//! the threaded memory and the model have drifted (exactly the class of bug
//! the PR that introduced this module fixed three of).
//!
//! Divergences are ddmin-shrunk like every other schedule-carrying finding.
//! Shrinking cannot use raw report inequality as its predicate: a
//! sub-schedule leaves processes undecided, which differs from the full
//! threaded report almost always, so the minimizer would race to the empty
//! schedule. [`trace_decision_divergence`] therefore replays candidate
//! sub-schedules **with a solo finish** (`adversarial_then_solo`), mirroring
//! [`crate::faulty::fault_diverges`]: the minimal reproducer is a genuine
//! minimal interleaving after which the model, left alone, still commits to
//! decisions the threads did not produce.

use crate::shrink::shrink_schedule;
use cbh_model::{CompactTrace, Protocol, Schedule};
use cbh_sim::{adversarial_then_solo, replay_schedule, ConsensusReport, ScriptedScheduler};

/// The shrinker's predicate, exported so tests can re-verify a shrunken
/// reproducer against the **identical** criterion that minimized it: does
/// replaying `schedule` and then letting every survivor finish solo commit
/// the model to a decision vector other than `expected`?
///
/// Replay errors count as "no divergence" (`false`): trading a divergence
/// finding for an error finding mid-shrink would swap bug classes.
pub fn trace_decision_divergence<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    schedule: &[usize],
    expected: &[Option<u64>],
) -> bool {
    adversarial_then_solo(
        protocol,
        inputs,
        ScriptedScheduler::new(schedule.to_vec()),
        schedule.len() as u64,
        crate::oracle::SOLO_BUDGET,
    )
    .map(|r| r.decisions != expected)
    .unwrap_or(false)
}

/// Diffs a threaded run against the replay of its own captured trace.
///
/// Returns `None` on lockstep agreement; otherwise a human-readable detail
/// plus the best available reproducer:
///
/// - the replay *errors* → the schedule shrunk under "still errors";
/// - the decision vectors genuinely diverge under solo-finish → the schedule
///   ddmin-shrunk under [`trace_decision_divergence`];
/// - only the counters (`steps`, locations) diverge → the full captured
///   schedule verbatim (sub-schedules change counters trivially, so the
///   complete capture *is* the minimal faithful witness).
pub fn trace_divergence<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    trace: &CompactTrace,
    threaded: &ConsensusReport,
) -> Option<(String, Option<Schedule>)> {
    let schedule = trace.schedule();
    match replay_schedule(protocol, inputs, &schedule) {
        Err(e) => {
            let fails = |s: &[usize]| {
                replay_schedule(protocol, inputs, &Schedule::new(s.iter().copied())).is_err()
            };
            Some((
                format!("captured trace fails to replay: {e}"),
                Some(Schedule::new(shrink_schedule(&schedule, fails))),
            ))
        }
        Ok(ref replayed) if replayed == threaded => None,
        Ok(replayed) => {
            let detail = format!(
                "threaded run {threaded:?} diverges from the replay of its own trace {replayed:?}"
            );
            let diverges = |s: &[usize]| {
                trace_decision_divergence(protocol, inputs, s, &threaded.decisions)
            };
            let reproducer = if diverges(&schedule) {
                Schedule::new(shrink_schedule(&schedule, diverges))
            } else {
                schedule
            };
            Some((detail, Some(reproducer)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::cas::CasConsensus;
    use cbh_sync::run_threaded_traced;

    #[test]
    fn faithful_captures_raise_no_finding() {
        let protocol = CasConsensus::new(3);
        let inputs = [2, 0, 1];
        let outcome = run_threaded_traced(&protocol, &inputs, 200_000).unwrap();
        assert_eq!(
            trace_divergence(&protocol, &inputs, &outcome.trace, &outcome.report),
            None
        );
    }

    #[test]
    fn tampered_reports_are_caught_and_shrunk() {
        let protocol = CasConsensus::new(3);
        let inputs = [2, 0, 1];
        let outcome = run_threaded_traced(&protocol, &inputs, 200_000).unwrap();
        // Claim the threads decided something they did not: the replay of
        // the genuine trace must contradict it.
        let mut forged = outcome.report.clone();
        let winner = forged.unanimous().expect("CAS consensus decides");
        let imposter = (winner + 1) % protocol.domain();
        forged.decisions = vec![Some(imposter); 3];
        let (detail, reproducer) =
            trace_divergence(&protocol, &inputs, &outcome.trace, &forged).expect("diverges");
        assert!(detail.contains("diverges"), "{detail}");
        let minimal = reproducer.expect("decision divergence carries a witness");
        assert!(
            trace_decision_divergence(&protocol, &inputs, &minimal, &forged.decisions),
            "the shrunken schedule still witnesses the divergence"
        );
        // 1-minimal: dropping any single step loses the witness.
        for i in 0..minimal.len() {
            let mut shorter: Vec<usize> = minimal.to_vec();
            shorter.remove(i);
            assert!(
                !trace_decision_divergence(&protocol, &inputs, &shorter, &forged.decisions),
                "dropping step {i} should lose the divergence"
            );
        }
    }
}
