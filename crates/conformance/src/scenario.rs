//! Seeded scenario generation.
//!
//! A [`Scenario`] is one fuzzed configuration point: which Table-1 row to
//! run, with how many processes, which derived seeds to draw the input
//! vector and the adversarial schedule from, and how deep the exhaustive
//! backends may explore. The stream is deterministic in the master seed and
//! covers rows round-robin, so a budget of `k × all_rows().len()` scenarios
//! exercises every family exactly `k` times.

use cbh_core::registry::{all_rows, RowSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fuzzed configuration point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Position in the stream (0-based) — stable, so findings cite it.
    pub index: usize,
    /// Registry id of the protocol family ([`cbh_core::registry`]).
    pub row: &'static str,
    /// Process count.
    pub n: usize,
    /// Seed deriving the input vector (given the protocol's domain).
    pub input_seed: u64,
    /// Seed deriving the adversarial schedule and the random scheduler.
    pub sched_seed: u64,
    /// Depth budget for the exhaustive backends.
    pub depth: usize,
}

/// Deterministic scenario stream.
///
/// Row coverage is round-robin over [`all_rows`]; process counts, seeds and
/// depth budgets are drawn from a [SplitMix64](rand::rngs::StdRng) stream
/// seeded with the master seed — same seed, same scenarios, forever.
#[derive(Debug, Clone)]
pub struct ScenarioGen {
    rng: StdRng,
    rows: Vec<RowSpec>,
    next_index: usize,
}

impl ScenarioGen {
    /// A stream determined by `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        ScenarioGen {
            rng: StdRng::seed_from_u64(master_seed),
            rows: all_rows(),
            next_index: 0,
        }
    }

    /// The next scenario. The stream is infinite.
    pub fn next_scenario(&mut self) -> Scenario {
        let index = self.next_index;
        self.next_index += 1;
        let spec = self.rows[index % self.rows.len()];
        // Rows are fuzzed at 2..=4 processes; a future row demanding more
        // is fuzzed at its minimum rather than panicking on an empty range.
        let n = self.rng.gen_range(spec.min_n..=4.max(spec.min_n));
        // Exhaustive exploration cost grows like n^depth: keep the product
        // bounded so a scenario stays milliseconds even in debug builds.
        let depth = match n {
            2 => self.rng.gen_range(7..=10),
            3 => self.rng.gen_range(5..=7),
            _ => self.rng.gen_range(4..=5),
        };
        Scenario {
            index,
            row: spec.id,
            n,
            input_seed: self.rng.gen(),
            sched_seed: self.rng.gen(),
            depth,
        }
    }
}

impl Iterator for ScenarioGen {
    type Item = Scenario;

    fn next(&mut self) -> Option<Scenario> {
        Some(self.next_scenario())
    }
}

/// Derives the input vector a scenario proposes, given the protocol's
/// input domain.
pub fn derive_inputs(scenario: &Scenario, domain: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(scenario.input_seed);
    (0..scenario.n).map(|_| rng.gen_range(0..domain)).collect()
}

/// Derives the scenario's adversarial pid schedule (length `10 × n`); the
/// scripted replay backends run it and the shrinker minimizes it.
pub fn derive_schedule(scenario: &Scenario) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(scenario.sched_seed);
    (0..scenario.n * 10)
        .map(|_| rng.gen_range(0..scenario.n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_the_master_seed() {
        let a: Vec<Scenario> = ScenarioGen::new(7).take(50).collect();
        let b: Vec<Scenario> = ScenarioGen::new(7).take(50).collect();
        assert_eq!(a, b);
        let c: Vec<Scenario> = ScenarioGen::new(8).take(50).collect();
        assert_ne!(a, c, "different master seeds diverge (w.h.p.)");
    }

    #[test]
    fn one_lap_covers_every_row_exactly_once() {
        let rows = all_rows();
        let lap: Vec<&str> = ScenarioGen::new(0).take(rows.len()).map(|s| s.row).collect();
        let expected: Vec<&str> = rows.iter().map(|r| r.id).collect();
        assert_eq!(lap, expected);
    }

    #[test]
    fn derived_vectors_respect_their_domains() {
        for scenario in ScenarioGen::new(3).take(40) {
            let inputs = derive_inputs(&scenario, 3);
            assert_eq!(inputs.len(), scenario.n);
            assert!(inputs.iter().all(|&v| v < 3));
            let schedule = derive_schedule(&scenario);
            assert_eq!(schedule.len(), scenario.n * 10);
            assert!(schedule.iter().all(|&p| p < scenario.n));
            assert!((2..=4).contains(&scenario.n));
            assert!((4..=10).contains(&scenario.depth));
        }
    }
}
