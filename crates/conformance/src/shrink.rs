//! Delta-debugging counterexample schedules.
//!
//! When a backend divergence or a property violation surfaces, its witness is
//! a schedule — often dozens of steps, most of them irrelevant. ddmin
//! (Zeller & Hildebrandt's minimizing delta debugging) removes chunks of the
//! schedule while the failure persists, then single steps, yielding a
//! **1-minimal** reproducer: removing any one remaining step makes the
//! failure disappear. Everything is deterministic, so the shrunken
//! [`Schedule`] plus the scenario seed fully describe a bug.

use cbh_model::{Protocol, Schedule};
use cbh_sim::replay_schedule;

/// Minimizes `schedule` to a 1-minimal subsequence on which `fails` still
/// holds, using ddmin: coarse chunk removal first, then a single-step sweep.
///
/// `fails` must hold on `schedule` itself (asserted). The result is a
/// subsequence of the input — relative step order is never permuted — and
/// `fails` holds on it while failing on every proper single-removal.
///
/// # Panics
///
/// Panics if `fails(schedule)` is false: only failing schedules shrink.
pub fn shrink_schedule(
    schedule: &[usize],
    mut fails: impl FnMut(&[usize]) -> bool,
) -> Vec<usize> {
    assert!(
        fails(schedule),
        "shrink_schedule needs a failing schedule to start from"
    );
    let mut current: Vec<usize> = schedule.to_vec();
    // Phase 1: ddmin over complements — delete whole chunks while possible.
    let mut granularity = 2usize;
    while current.len() >= 2 && granularity <= current.len() {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<usize> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if fails(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // Phase 2: 1-minimality sweep — retry single removals to a fixpoint.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if fails(&candidate) {
                current = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    current
}

/// `true` when replaying `schedule` verbatim (via
/// [`cbh_sim::ScriptedScheduler`]) reaches a configuration violating
/// agreement or validity — the exact predicate [`shrink_violation`]
/// minimizes. Replay errors ([`cbh_sim::SimError`]) count as non-failing,
/// so shrinking never trades a property violation for a different bug.
///
/// Exported so pre-checks and re-verifications evaluate the identical
/// predicate the shrinker ran against, rather than a private copy that
/// could drift.
pub fn replay_violates<P: Protocol>(protocol: &P, inputs: &[u64], schedule: &[usize]) -> bool {
    replay_schedule(protocol, inputs, &Schedule::new(schedule.iter().copied()))
        .map(|report| report.check(inputs).is_err())
        .unwrap_or(false)
}

/// Shrinks a consensus-property witness: the minimal subsequence of
/// `schedule` whose replay still satisfies [`replay_violates`].
///
/// The usual source of `schedule` is an
/// [`ExploreOutcome`](cbh_verify::checker::ExploreOutcome) counterexample —
/// already shortest *in steps taken*, but not necessarily minimal as a
/// subsequence.
pub fn shrink_violation<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    schedule: &[usize],
) -> Schedule {
    Schedule::new(shrink_schedule(schedule, |candidate| {
        replay_violates(protocol, inputs, candidate)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_verify::checker::{explore, ExploreLimits};
    use cbh_verify::strawmen::{OneMaxRegister, OneRegister};

    /// 1-minimality: removing any single element breaks the predicate.
    fn assert_one_minimal(schedule: &[usize], mut fails: impl FnMut(&[usize]) -> bool) {
        assert!(fails(schedule));
        for i in 0..schedule.len() {
            let mut candidate = schedule.to_vec();
            candidate.remove(i);
            assert!(
                !fails(&candidate),
                "removing step {i} (pid {}) still fails: not 1-minimal",
                schedule[i]
            );
        }
    }

    #[test]
    fn shrinks_a_synthetic_predicate_to_its_core() {
        // Failure: schedule contains a 1 somewhere before a 2.
        let fails = |s: &[usize]| {
            s.iter()
                .position(|&x| x == 1)
                .is_some_and(|i| s[i..].contains(&2))
        };
        let noisy = [0, 3, 1, 0, 0, 3, 2, 0, 1, 3, 0];
        let minimal = shrink_schedule(&noisy, fails);
        assert_eq!(minimal, vec![1, 2]);
        assert_one_minimal(&minimal, fails);
    }

    #[test]
    fn shrinks_to_empty_when_the_predicate_always_fails() {
        assert_eq!(shrink_schedule(&[5, 5, 5], |_| true), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "failing schedule")]
    fn refuses_passing_schedules() {
        shrink_schedule(&[1, 2, 3], |_| false);
    }

    fn shrunken_witness_is_minimal<P: Protocol>(protocol: &P, inputs: &[u64]) {
        let outcome = explore(protocol, inputs, ExploreLimits::default()).unwrap();
        let witness = outcome.schedule().expect("strawman must violate").to_vec();
        let minimal = shrink_violation(protocol, inputs, &witness);
        assert!(minimal.len() <= witness.len());
        assert_one_minimal(&minimal, |s| replay_violates(protocol, inputs, s));
    }

    #[test]
    fn strawman_counterexamples_shrink_to_one_minimal_reproducers() {
        shrunken_witness_is_minimal(&OneMaxRegister::new(), &[0, 1]);
        shrunken_witness_is_minimal(&OneRegister::new(2), &[0, 1]);
        shrunken_witness_is_minimal(&OneRegister::new(3), &[1, 0, 1]);
    }
}
