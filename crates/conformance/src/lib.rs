//! Differential conformance testing across execution backends.
//!
//! The workspace can execute the same protocol four independent ways: the
//! fingerprint frontier explorer (`cbh-verify`), the clone-based reference
//! BFS (`cbh-verify::reference`), the deterministic sequential schedulers
//! (`cbh-sim`), and the real-thread runtime (`cbh-sync`). The paper's
//! Table 1 claims are only as trustworthy as those engines — so this crate
//! makes them check *each other*:
//!
//! - [`scenario`] — seeded scenario fuzzing: protocol row × process count ×
//!   input vector × schedule, drawn deterministically from a master seed over
//!   every family in [`cbh_core::registry`];
//! - [`oracle`] — runs each scenario through every applicable backend and
//!   diffs verdicts, decision vectors, `locations_touched` (against the
//!   row's exact Table 1 bound) and reachable-configuration counts wherever
//!   two backends are comparable;
//! - [`shrink`] — delta-debugs any witness schedule to a 1-minimal
//!   [`cbh_model::Schedule`] that still reproduces the divergence, ready to
//!   replay through [`cbh_sim::ScriptedScheduler`];
//! - [`faulty`] — deliberate fault injection (a decision-corrupting wrapper
//!   protocol), proving the harness *catches* and *shrinks* real
//!   divergences instead of vacuously passing;
//! - [`trace`] — the trace-replay oracle: capture-enabled threaded runs
//!   ([`cbh_sync::run_threaded_traced`]) whose merged event log is replayed
//!   through the deterministic model and must agree in lockstep, with
//!   divergences ddmin-shrunk to replayable schedules.
//!
//! Everything is deterministic in the master seed: a failing scenario in CI
//! replays locally from the seed printed in its finding.
//!
//! # Examples
//!
//! ```
//! use cbh_conformance::oracle::{run_suite, ConformanceConfig};
//!
//! let report = run_suite(&ConformanceConfig {
//!     scenarios: 8,
//!     threaded: false, // skip the OS-thread backend for a fast doc-test
//!     ..ConformanceConfig::default()
//! });
//! assert_eq!(report.scenarios_run, 8);
//! assert!(report.findings.is_empty(), "{:#?}", report.findings);
//! ```

pub mod faulty;
pub mod oracle;
pub mod scenario;
pub mod shrink;
pub mod trace;

pub use oracle::{
    run_scenario, run_suite, shard_backend_name, worker_backend_name, ConformanceConfig, Finding,
    SuiteReport,
};
pub use scenario::{Scenario, ScenarioGen};
pub use shrink::{replay_violates, shrink_schedule, shrink_violation};
pub use trace::{trace_decision_divergence, trace_divergence};
