//! The differential backend oracle.
//!
//! [`run_scenario`] executes one fuzzed [`Scenario`] through every
//! applicable backend and diffs everything two backends can be expected to
//! agree on:
//!
//! | comparison | backends | must match |
//! |---|---|---|
//! | engine vs oracle | packed frontier `explore` vs clone-based reference BFS | outcome **and** stats, bit for bit |
//! | worker fan-out | `Explorer` with 1 vs [`ConformanceConfig::explorer_workers`] workers (CI sweeps 1/4/8) | outcome and stats, bit for bit |
//! | shard fan-out | sequential engine vs [`cbh_verify::dist::explore_sharded`] at [`ConformanceConfig::shards`] and double (CI pins `CONFORMANCE_SHARDS=2`) | outcome and semantic stats, bit for bit |
//! | symmetry quotient | reduced 1 vs fan-out workers; reduced vs plain | reduced runs identical; verdict equal; reduced configs ≤ plain |
//! | property checks | scripted replay, round-robin, seeded random, bounded threads | agreement + validity; `locations_touched` ≤ the row's exact Table 1 bound |
//! | trace replay | capture-enabled threads vs the model replaying the captured linearization ([`crate::trace`]) | lockstep report equality (decisions, `steps`, locations), wire round-trip identity |
//! | fault injection | honest vs [`FaultyDecider`](crate::faulty::FaultyDecider) scripted replay | decision vectors equal (divergence ⇒ finding + shrunken reproducer) |
//!
//! Any mismatch becomes a [`Finding`]; findings that carry a schedule
//! witness are delta-debugged ([`crate::shrink`]) to a 1-minimal
//! [`Schedule`] reproducer that replays through
//! [`cbh_sim::ScriptedScheduler`]. The whole suite is a pure function of
//! [`ConformanceConfig`].

use crate::scenario::{derive_inputs, derive_schedule, Scenario, ScenarioGen};
use crate::shrink::{replay_violates, shrink_schedule, shrink_violation};
use cbh_core::registry::{visit_row, RowSpec, RowVisitor};
use cbh_model::{CompactTrace, Protocol, Schedule};
use cbh_sim::{
    adversarial_then_solo, ConsensusReport, RandomScheduler, RoundRobinScheduler,
    ScriptedScheduler, SimError,
};
use cbh_sync::{run_threaded_bounded, run_threaded_traced};
use cbh_verify::checker::{explore_stats, ExploreLimits, ExploreOutcome, Explorer, ExploreStats};
use cbh_verify::dist::{explore_sharded, DistConfig};
use cbh_verify::reference::reference_explore;
use cbh_verify::snapshot::Snapshot;
use std::collections::BTreeSet;

/// Solo budget for the sequential scheduler backends (same order of
/// magnitude as the consensus matrix uses). Shared with
/// [`crate::faulty::fault_diverges`] so shrinking and re-verification use
/// the identical predicate.
pub(crate) const SOLO_BUDGET: u64 = 50_000_000;

/// Per-thread step budget for the real-thread backend: generous enough that
/// correct protocols decide, bounded so fuzzing never hangs.
const THREAD_BUDGET: u64 = 200_000;

/// What the conformance suite runs and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceConfig {
    /// Master seed: the whole suite is a pure function of it.
    pub master_seed: u64,
    /// How many scenarios to draw (rows are covered round-robin).
    pub scenarios: usize,
    /// Config cap for the exhaustive backends.
    pub max_configs: usize,
    /// When `true`, additionally runs the test-only
    /// [`FaultyDecider`](crate::faulty::FaultyDecider)-wrapped replay backend — the control experiment
    /// proving divergences are caught and shrunk.
    pub fault_injection: bool,
    /// Run the OS-thread backend (`true` everywhere except speed-sensitive
    /// inner loops of the harness's own tests).
    pub threaded: bool,
    /// Run the capture-enabled thread backend (`CONFORMANCE_TRACE=1` in
    /// CI's trace column): every scenario additionally runs on real threads
    /// with the compact event log on, and the captured linearization is
    /// replayed through the deterministic model, which must agree with the
    /// physical run bit for bit — decisions, `steps`,
    /// `locations_allocated`, `locations_touched` — with divergences
    /// ddmin-shrunk to replayable schedules ([`crate::trace`]).
    pub trace: bool,
    /// Worker count for the fan-out explorer backend diffed against the
    /// sequential engine (CI sweeps a `{1, 4, 8}` matrix via
    /// `CONFORMANCE_WORKERS`).
    pub explorer_workers: usize,
    /// Run the symmetry-reduced explorer backends on anonymous rows (the
    /// other axis of CI's worker/symmetry matrix).
    pub symmetry: bool,
    /// Frontier memory budget (bytes) for the exhaustive backends
    /// ([`ExploreLimits::memory_budget`]). `None` (the default) never
    /// spills; CI's tiny-budget columns pin `CONFORMANCE_MEM_BUDGET` low
    /// enough that every scenario exercises the spill paths — and the oracle
    /// still demands bit-identical outcomes and semantic stats against the
    /// never-spilling reference BFS.
    pub memory_budget: Option<usize>,
    /// Run the checkpoint/resume backend (`CONFORMANCE_RESUME=1` in CI's
    /// resume column): every scenario re-runs with periodic retained
    /// snapshots, then resumes from **each** snapshot in turn — both the
    /// checkpointed run and every kill-at-this-checkpoint resume must be
    /// bit-identical to the uncheckpointed engine run.
    pub resume: bool,
    /// Base shard count for the distributed backend
    /// ([`cbh_verify::dist::explore_sharded`]). `0` (the default) skips it;
    /// CI's `CONFORMANCE_SHARDS=2` column diffs every scenario at `shards`
    /// **and** `2 * shards` against the sequential engine, bit for bit.
    pub shards: usize,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            // PODC 2016 / Ellen — an arbitrary but documented default; CI
            // pins its own via CONFORMANCE_SEED.
            master_seed: 0x2016_E11E,
            scenarios: 40,
            max_configs: 20_000,
            fault_injection: false,
            threaded: true,
            trace: false,
            explorer_workers: 4,
            symmetry: true,
            memory_budget: None,
            resume: false,
            shards: 0,
        }
    }
}

/// Stable backend label for a worker count (backend names are part of the
/// findings' vocabulary, so they stay `'static`).
///
/// The table covers the documented CI matrix (1/4/8) plus the common 2 and
/// 16; any other count shares the `"explorer-wN"` label, so record the
/// exact `CONFORMANCE_WORKERS` alongside findings from off-matrix runs.
pub fn worker_backend_name(workers: usize) -> &'static str {
    match workers {
        0 | 1 => "explorer-w1",
        2 => "explorer-w2",
        4 => "explorer-w4",
        8 => "explorer-w8",
        16 => "explorer-w16",
        _ => "explorer-wN",
    }
}

/// Stable backend label for a shard count, mirroring
/// [`worker_backend_name`]. The table covers CI's `CONFORMANCE_SHARDS=2`
/// column (which runs 2 and 4); off-matrix counts share `"dist-sN"`.
pub fn shard_backend_name(shards: usize) -> &'static str {
    match shards {
        0 | 1 => "dist-s1",
        2 => "dist-s2",
        3 => "dist-s3",
        4 => "dist-s4",
        8 => "dist-s8",
        _ => "dist-sN",
    }
}

/// One detected divergence or property violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The scenario that exposed it (replayable from its seeds).
    pub scenario: Scenario,
    /// The concrete input vector the scenario derived.
    pub inputs: Vec<u64>,
    /// Which backend (or backend pair) disagreed.
    pub backend: &'static str,
    /// Human-readable description of the mismatch.
    pub detail: String,
    /// 1-minimal witness schedule, when the divergence carries one; replay
    /// it with [`cbh_sim::replay_schedule`] / [`ScriptedScheduler`].
    pub reproducer: Option<Schedule>,
}

/// The outcome of one scenario: which backends ran, what they disagreed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The derived input vector.
    pub inputs: Vec<u64>,
    /// Backends exercised, in execution order.
    pub backends: Vec<&'static str>,
    /// Divergences and property violations (empty = fully conformant).
    pub findings: Vec<Finding>,
    /// Distinct configurations the frontier engine visited.
    pub configs: usize,
}

/// Aggregated result of a conformance run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteReport {
    /// Scenarios executed.
    pub scenarios_run: usize,
    /// Registry row ids covered.
    pub rows_covered: BTreeSet<&'static str>,
    /// Backends exercised at least once.
    pub backends: BTreeSet<&'static str>,
    /// Every divergence found, in scenario order.
    pub findings: Vec<Finding>,
    /// Total distinct configurations explored by the frontier engine.
    pub configs_explored: usize,
}

/// Runs `cfg.scenarios` fuzzed scenarios and aggregates the findings.
///
/// Deterministic: equal configs produce equal reports (including every
/// shrunken reproducer), so a CI failure replays locally from the seed.
pub fn run_suite(cfg: &ConformanceConfig) -> SuiteReport {
    let mut report = SuiteReport {
        scenarios_run: 0,
        rows_covered: BTreeSet::new(),
        backends: BTreeSet::new(),
        findings: Vec::new(),
        configs_explored: 0,
    };
    for scenario in ScenarioGen::new(cfg.master_seed).take(cfg.scenarios) {
        let outcome = run_scenario(&scenario, cfg);
        report.scenarios_run += 1;
        report.rows_covered.insert(scenario.row);
        report.backends.extend(outcome.backends.iter().copied());
        report.findings.extend(outcome.findings);
        report.configs_explored += outcome.configs;
    }
    report
}

/// Runs one scenario through every applicable backend.
///
/// # Panics
///
/// Panics if the scenario names a row the registry does not know — scenarios
/// produced by [`ScenarioGen`] never do.
pub fn run_scenario(scenario: &Scenario, cfg: &ConformanceConfig) -> ScenarioOutcome {
    let mut visitor = OracleVisitor { scenario, cfg };
    visit_row(scenario.row, scenario.n, &mut visitor)
        .unwrap_or_else(|| panic!("scenario names unregistered row {:?}", scenario.row))
}

struct OracleVisitor<'c> {
    scenario: &'c Scenario,
    cfg: &'c ConformanceConfig,
}

impl RowVisitor for OracleVisitor<'_> {
    type Output = ScenarioOutcome;

    fn visit<P>(&mut self, spec: &RowSpec, protocol: P) -> ScenarioOutcome
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let scenario = self.scenario;
        let inputs = derive_inputs(scenario, protocol.domain());
        let limits = ExploreLimits {
            depth: scenario.depth,
            max_configs: self.cfg.max_configs,
            solo_check_budget: None,
            memory_budget: self.cfg.memory_budget,
            checkpoint_every: None,
        };
        let mut out = ScenarioOutcome {
            inputs: inputs.clone(),
            backends: Vec::new(),
            findings: Vec::new(),
            configs: 0,
        };
        let finding = |backend, detail, reproducer| Finding {
            scenario: scenario.clone(),
            inputs: inputs.clone(),
            backend,
            detail,
            reproducer,
        };

        // -- exhaustive backends -----------------------------------------
        out.backends.push("explore");
        let engine = match explore_stats(&protocol, &inputs, limits) {
            Ok(engine) => engine,
            Err(e) => {
                out.findings
                    .push(finding("explore", format!("SimError: {e}"), None));
                return out;
            }
        };
        out.configs = engine.1.configs;
        // Shrinks a witness when its replay really violates consensus, and
        // keeps the claimed schedule verbatim as evidence when it doesn't
        // (obstruction witnesses, or a backend claiming a bogus violation).
        let minimize_witness = |witness: &[usize]| -> Schedule {
            if replay_violates(&protocol, &inputs, witness) {
                shrink_violation(&protocol, &inputs, witness)
            } else {
                Schedule::new(witness.iter().copied())
            }
        };
        if let Some(witness) = engine.0.schedule() {
            // A Table-1 protocol violated consensus (or starved a solo run):
            // a finding in its own right, independent of backend agreement.
            out.findings.push(finding(
                "explore",
                format!("property violation: {:?}", engine.0),
                Some(minimize_witness(witness)),
            ));
        }

        out.backends.push("reference-bfs");
        match reference_explore(&protocol, &inputs, limits) {
            Ok(oracle) => {
                if oracle != engine {
                    let witness = oracle.0.schedule().or(engine.0.schedule());
                    out.findings.push(finding(
                        "reference-bfs",
                        format!("engine {engine:?} != reference {oracle:?}"),
                        witness.map(minimize_witness),
                    ));
                }
            }
            Err(e) => out
                .findings
                .push(finding("reference-bfs", format!("SimError: {e}"), None)),
        }

        let fan_out = self.cfg.explorer_workers.max(1);
        let fan_out_backend = worker_backend_name(fan_out);
        out.backends.push(fan_out_backend);
        match Explorer::new()
            .workers(fan_out)
            .limits(limits)
            .explore_stats(&protocol, &inputs)
        {
            Ok(parallel) => {
                if parallel != engine {
                    out.findings.push(finding(
                        fan_out_backend,
                        format!("1-worker {engine:?} != {fan_out}-worker {parallel:?}"),
                        None,
                    ));
                }
            }
            Err(e) => out
                .findings
                .push(finding(fan_out_backend, format!("SimError: {e}"), None)),
        }

        if self.cfg.shards > 0 {
            // The distributed backend partitions the fingerprint space and
            // merges per-shard admission logs; at both the configured count
            // and its double it must replay the sequential engine exactly —
            // outcome, counterexample schedule and semantic stats. ddmin is
            // untouched: a divergence with a witness shrinks through the
            // same `minimize_witness` as every other exhaustive backend.
            for shards in [self.cfg.shards, self.cfg.shards * 2] {
                let backend = shard_backend_name(shards);
                out.backends.push(backend);
                let dist_cfg = DistConfig {
                    shards,
                    workers: self.cfg.explorer_workers.max(1),
                    symmetric: false,
                };
                match explore_sharded(&protocol, &inputs, limits, dist_cfg) {
                    Ok(sharded) => {
                        if sharded != engine {
                            let witness = sharded.0.schedule().or(engine.0.schedule());
                            out.findings.push(finding(
                                backend,
                                format!("engine {engine:?} != {shards}-shard {sharded:?}"),
                                witness.map(minimize_witness),
                            ));
                        }
                    }
                    Err(e) => out
                        .findings
                        .push(finding(backend, format!("SimError: {e}"), None)),
                }
            }
        }

        if self.cfg.resume {
            out.backends.push("explore-resume");
            match resume_conformance(&protocol, &inputs, limits, fan_out, &engine) {
                Ok(None) => {}
                Ok(Some(detail)) => out.findings.push(finding("explore-resume", detail, None)),
                Err(e) => out
                    .findings
                    .push(finding("explore-resume", format!("SimError: {e}"), None)),
            }
        }

        if self.cfg.symmetry && spec.anonymous {
            out.backends.push("explorer-sym");
            let reduced = |workers| {
                Explorer::new()
                    .workers(workers)
                    .limits(limits)
                    .symmetry_reduction(true)
                    .explore_stats(&protocol, &inputs)
            };
            match (reduced(1), reduced(fan_out.max(2))) {
                (Ok(sym1), Ok(sym4)) => {
                    if sym1 != sym4 {
                        out.findings.push(finding(
                            "explorer-sym",
                            format!(
                                "reduced 1-worker {sym1:?} != {}-worker {sym4:?}",
                                fan_out.max(2)
                            ),
                            None,
                        ));
                    }
                    if sym1.0.is_clean() != engine.0.is_clean() {
                        out.findings.push(finding(
                            "explorer-sym",
                            format!("reduced verdict {:?} != plain verdict {:?}", sym1.0, engine.0),
                            None,
                        ));
                    }
                    if sym1.1.configs > engine.1.configs {
                        out.findings.push(finding(
                            "explorer-sym",
                            format!(
                                "quotient explored more configs ({}) than the plain space ({})",
                                sym1.1.configs, engine.1.configs
                            ),
                            None,
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => out
                    .findings
                    .push(finding("explorer-sym", format!("SimError: {e}"), None)),
            }
        }

        // -- sequential scheduler backends -------------------------------
        let script = derive_schedule(scenario);
        let space_check = |report: &ConsensusReport| -> Option<String> {
            let bound = spec.space?(scenario.n);
            (report.locations_touched > bound).then(|| {
                format!(
                    "locations_touched {} exceeds the Table 1 bound {bound}",
                    report.locations_touched
                )
            })
        };
        type SeqRun<'r> = Box<dyn FnMut() -> Result<ConsensusReport, SimError> + 'r>;
        let sequential: [(&'static str, SeqRun); 3] = [
            (
                "scripted-replay",
                Box::new(|| {
                    adversarial_then_solo(
                        &protocol,
                        &inputs,
                        ScriptedScheduler::new(script.clone()),
                        script.len() as u64,
                        SOLO_BUDGET,
                    )
                }),
            ),
            (
                "round-robin",
                Box::new(|| {
                    adversarial_then_solo(
                        &protocol,
                        &inputs,
                        RoundRobinScheduler::new(),
                        script.len() as u64,
                        SOLO_BUDGET,
                    )
                }),
            ),
            (
                "random-sched",
                Box::new(|| {
                    adversarial_then_solo(
                        &protocol,
                        &inputs,
                        RandomScheduler::seeded(scenario.sched_seed),
                        script.len() as u64,
                        SOLO_BUDGET,
                    )
                }),
            ),
        ];
        for (backend, mut run) in sequential {
            out.backends.push(backend);
            match run() {
                Ok(report) => {
                    // (A process failing to decide surfaces as a SimError —
                    // `adversarial_then_solo` errors rather than returning a
                    // partial report — so `check` passing means unanimity.)
                    if let Err(violation) = report.check(&inputs) {
                        // Schedulers can only witness-shrink the scripted run.
                        let reproducer = (backend == "scripted-replay")
                            .then(|| shrink_scripted_violation(&protocol, &inputs, &script));
                        out.findings.push(finding(
                            backend,
                            format!("consensus violation: {violation}"),
                            reproducer,
                        ));
                    }
                    if let Some(detail) = space_check(&report) {
                        out.findings.push(finding(backend, detail, None));
                    }
                }
                Err(e) => out
                    .findings
                    .push(finding(backend, format!("SimError: {e}"), None)),
            }
        }

        // -- real threads -------------------------------------------------
        if self.cfg.threaded {
            out.backends.push("threaded");
            match run_threaded_bounded(&protocol, &inputs, THREAD_BUDGET) {
                Ok(outcome) => {
                    if let Err(violation) = outcome.report.check(&inputs) {
                        out.findings.push(finding(
                            "threaded",
                            format!("consensus violation: {violation}"),
                            None,
                        ));
                    }
                    if let Some(detail) = space_check(&outcome.report) {
                        out.findings.push(finding("threaded", detail, None));
                    }
                }
                Err(e) => out
                    .findings
                    .push(finding("threaded", format!("ModelError: {e}"), None)),
            }
        }

        // -- trace capture & replay ---------------------------------------
        if self.cfg.trace {
            out.backends.push("threaded-trace");
            match run_threaded_traced(&protocol, &inputs, THREAD_BUDGET) {
                Ok(outcome) => {
                    if let Err(violation) = outcome.report.check(&inputs) {
                        out.findings.push(finding(
                            "threaded-trace",
                            format!("consensus violation: {violation}"),
                            None,
                        ));
                    }
                    if let Some(detail) = space_check(&outcome.report) {
                        out.findings.push(finding("threaded-trace", detail, None));
                    }
                    // The capture must survive its own wire format...
                    match CompactTrace::from_bytes(&outcome.trace.to_bytes()) {
                        Ok(decoded) if decoded == outcome.trace => {}
                        Ok(_) => out.findings.push(finding(
                            "threaded-trace",
                            "trace wire round-trip is not the identity".to_string(),
                            None,
                        )),
                        Err(e) => out.findings.push(finding(
                            "threaded-trace",
                            format!("trace encoding does not decode: {e}"),
                            None,
                        )),
                    }
                    // ...and its replay must agree with the physical run in
                    // lockstep: decisions, steps, locations.
                    if let Some((detail, reproducer)) = crate::trace::trace_divergence(
                        &protocol,
                        &inputs,
                        &outcome.trace,
                        &outcome.report,
                    ) {
                        out.findings
                            .push(finding("threaded-trace", detail, reproducer));
                    }
                }
                Err(e) => out.findings.push(finding(
                    "threaded-trace",
                    format!("ModelError: {e}"),
                    None,
                )),
            }
        }

        // -- fault injection (control experiment) -------------------------
        if self.cfg.fault_injection {
            out.backends.push("faulty-replay");
            let diverges = |s: &[usize]| crate::faulty::fault_diverges(&protocol, &inputs, s);
            if diverges(&script) {
                let minimal = Schedule::new(shrink_schedule(&script, diverges));
                out.findings.push(finding(
                    "faulty-replay",
                    "decision vector diverges from honest scripted replay".to_string(),
                    Some(minimal),
                ));
            }
        }

        out
    }
}

/// The checkpoint/resume oracle for one scenario: re-runs the exploration
/// with periodic retained snapshots, then resumes from **every** snapshot
/// written — each must reproduce the baseline `(ExploreOutcome,
/// ExploreStats)` bit for bit (the kill-at-any-checkpoint guarantee, with
/// the "kill" factored out: a retained snapshot *is* the complete state a
/// killed run would resume from). Returns the first divergence as a finding
/// detail, `None` when fully conformant.
fn resume_conformance<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    workers: usize,
    baseline: &(ExploreOutcome, ExploreStats),
) -> Result<Option<String>, SimError>
where
    P::Proc: Send + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tag = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "cbh-conformance-resume-{}-{tag}.ck",
        std::process::id()
    ));
    // A handful of checkpoints across the run, however small the scenario.
    let cadence = (baseline.1.configs as u64 / 4).max(1);
    let limits = ExploreLimits {
        checkpoint_every: Some(cadence),
        ..limits
    };
    let checkpointed = Explorer::new()
        .workers(workers)
        .limits(limits)
        .checkpoint_to(&path)
        .retain_checkpoints(true)
        .explore_stats(protocol, inputs)?;
    let mut detail = None;
    if &checkpointed != baseline {
        detail = Some(format!(
            "checkpointed run {checkpointed:?} != baseline {baseline:?}"
        ));
    }
    let mut seq = 0u64;
    while detail.is_none() {
        let numbered = std::path::PathBuf::from(format!("{}.ck{seq}", path.display()));
        let Ok(snapshot) = Snapshot::read(&numbered) else {
            break;
        };
        let resumed = Explorer::new()
            .workers(workers)
            .limits(limits)
            .resume_stats(protocol, inputs, &snapshot)?;
        if &resumed != baseline {
            detail = Some(format!(
                "resume from checkpoint {seq} ({} admitted configs) produced {resumed:?}, \
                 baseline {baseline:?}",
                snapshot.configs()
            ));
        }
        seq += 1;
    }
    let _ = std::fs::remove_file(&path);
    for k in 0u64.. {
        let numbered = format!("{}.ck{k}", path.display());
        if std::fs::remove_file(numbered).is_err() {
            break;
        }
    }
    Ok(detail)
}

/// Shrinks a scripted-replay consensus violation: minimal subsequence whose
/// replay **plus solo finish** still violates agreement or validity.
fn shrink_scripted_violation<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    script: &[usize],
) -> Schedule {
    Schedule::new(shrink_schedule(script, |s| {
        adversarial_then_solo(
            protocol,
            inputs,
            ScriptedScheduler::new(s.to_vec()),
            s.len() as u64,
            SOLO_BUDGET,
        )
        .map(|r| r.check(inputs).is_err())
        .unwrap_or(false)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_scenario_runs_all_core_backends() {
        let cfg = ConformanceConfig {
            threaded: false,
            ..ConformanceConfig::default()
        };
        let scenario = ScenarioGen::new(1).next_scenario();
        let outcome = run_scenario(&scenario, &cfg);
        assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
        for backend in ["explore", "reference-bfs", "explorer-w4", "scripted-replay"] {
            assert!(outcome.backends.contains(&backend), "{backend} missing");
        }
        assert!(outcome.configs > 0);
    }

    #[test]
    fn the_sharded_backend_joins_the_matrix_when_configured() {
        let cfg = ConformanceConfig {
            threaded: false,
            shards: 2,
            ..ConformanceConfig::default()
        };
        let scenario = ScenarioGen::new(3).next_scenario();
        let outcome = run_scenario(&scenario, &cfg);
        assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
        for backend in ["dist-s2", "dist-s4"] {
            assert!(outcome.backends.contains(&backend), "{backend} missing");
        }
    }

    #[test]
    fn the_trace_backend_joins_the_matrix_when_configured() {
        let cfg = ConformanceConfig {
            trace: true,
            ..ConformanceConfig::default()
        };
        let scenario = ScenarioGen::new(5).next_scenario();
        let outcome = run_scenario(&scenario, &cfg);
        assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
        assert!(
            outcome.backends.contains(&"threaded-trace"),
            "threaded-trace missing from {:?}",
            outcome.backends
        );
    }

    #[test]
    fn suite_reports_are_a_pure_function_of_the_config() {
        let cfg = ConformanceConfig {
            scenarios: 6,
            threaded: false,
            ..ConformanceConfig::default()
        };
        assert_eq!(run_suite(&cfg), run_suite(&cfg));
    }
}
