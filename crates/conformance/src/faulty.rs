//! Deliberate fault injection: proof the harness catches real divergences.
//!
//! A conformance suite that has never seen a failure proves nothing — maybe
//! the oracles agree because they all work, maybe because the diff is
//! vacuous. [`FaultyDecider`] is the control experiment: it wraps any
//! protocol and corrupts the decision of process 0 **only when that process
//! adopted someone else's value** (decided something different from its own
//! input). A solo execution from the initial configuration decides the
//! runner's own proposal, so the empty schedule — and every schedule that
//! never lets another process influence p0 — stays bit-for-bit honest. The
//! corruption fires exactly on the interleavings where information actually
//! flowed between processes, which is why the shrunken reproducer the
//! differential oracle produces is a *minimal adoption race*, not an empty
//! schedule.

use cbh_model::{Action, MemorySpec, Process, Protocol, Value};
use cbh_sim::{adversarial_then_solo, ScriptedScheduler};

/// A protocol wrapper whose process 0 decides wrongly whenever it would
/// adopt a value other than its own input. Test-only by construction — it
/// lives in the conformance crate and exists to be caught.
#[derive(Debug, Clone, Copy)]
pub struct FaultyDecider<'a, P> {
    inner: &'a P,
}

impl<'a, P: Protocol> FaultyDecider<'a, P> {
    /// Wraps `inner`, corrupting process 0's adopted decisions.
    pub fn new(inner: &'a P) -> Self {
        FaultyDecider { inner }
    }
}

impl<P: Protocol> Protocol for FaultyDecider<'_, P> {
    type Proc = FaultyProc<P::Proc>;

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn domain(&self) -> u64 {
        self.inner.domain()
    }

    fn memory_spec(&self) -> MemorySpec {
        self.inner.memory_spec()
    }

    fn spawn(&self, pid: usize, input: u64) -> FaultyProc<P::Proc> {
        FaultyProc {
            inner: self.inner.spawn(pid, input),
            corrupt: pid == 0,
            input,
            domain: self.inner.domain(),
        }
    }
}

/// Process state of [`FaultyDecider`]: the wrapped process plus what it
/// needs to recognise (and corrupt) an adopted decision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultyProc<Q> {
    inner: Q,
    corrupt: bool,
    input: u64,
    domain: u64,
}

impl<Q: Process> Process for FaultyProc<Q> {
    fn action(&self) -> Action {
        match self.inner.action() {
            Action::Decide(v) if self.corrupt && v != self.input => {
                // Another value of the domain: breaks agreement when someone
                // proposed it, validity when nobody did. Either way the
                // oracle's checks fire.
                Action::Decide((v + 1) % self.domain)
            }
            action => action,
        }
    }

    fn absorb(&mut self, result: Value) {
        self.inner.absorb(result);
    }
}

/// The divergence predicate the oracle detects and shrinks against: `true`
/// when replaying `schedule` (plus solo finish, with the oracle's solo
/// budget) through the honest protocol and through its
/// [`FaultyDecider`]-wrapped twin produces different decision vectors.
///
/// Exported so tests re-verifying a shrunken reproducer (divergence,
/// 1-minimality) evaluate the *identical* predicate the shrinker minimized —
/// a privately duplicated budget or replay recipe could silently drift.
pub fn fault_diverges<P: Protocol>(protocol: &P, inputs: &[u64], schedule: &[usize]) -> bool {
    let replay = |honest: bool| {
        let scheduler = ScriptedScheduler::new(schedule.to_vec());
        let steps = schedule.len() as u64;
        let budget = crate::oracle::SOLO_BUDGET;
        if honest {
            adversarial_then_solo(protocol, inputs, scheduler, steps, budget)
        } else {
            adversarial_then_solo(&FaultyDecider::new(protocol), inputs, scheduler, steps, budget)
        }
    };
    match (replay(true), replay(false)) {
        (Ok(a), Ok(b)) => a.decisions != b.decisions,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::maxreg::MaxRegConsensus;
    use cbh_sim::{run_consensus, SoloScheduler};

    #[test]
    fn solo_and_unanimous_runs_stay_honest() {
        let inner = MaxRegConsensus::new(2);
        let faulty = FaultyDecider::new(&inner);
        // Solo: p0 decides its own input — no adoption, no corruption.
        let honest = run_consensus(&inner, &[1, 0], SoloScheduler::new(0), 100).unwrap();
        let wrapped = run_consensus(&faulty, &[1, 0], SoloScheduler::new(0), 100).unwrap();
        assert_eq!(honest.decisions, wrapped.decisions);
        // Unanimous proposals: every decision is p0's own input.
        let report =
            adversarial_then_solo(&faulty, &[1, 1], ScriptedScheduler::new([0, 1, 0, 1, 0, 1]), 6, 1_000)
                .unwrap();
        report.check(&[1, 1]).unwrap();
    }

    #[test]
    fn adopted_decisions_are_corrupted() {
        // p1 writes first and p0 runs second: p0 must adopt p1's value — and
        // the wrapper corrupts exactly that.
        let inner = MaxRegConsensus::new(2);
        let faulty = FaultyDecider::new(&inner);
        let honest =
            adversarial_then_solo(&inner, &[0, 1], SoloScheduler::new(1), 1_000, 1_000).unwrap();
        let wrapped =
            adversarial_then_solo(&faulty, &[0, 1], SoloScheduler::new(1), 1_000, 1_000).unwrap();
        assert_eq!(honest.decisions, vec![Some(1), Some(1)]);
        assert_ne!(honest.decisions, wrapped.decisions);
        assert!(wrapped.check(&[0, 1]).is_err(), "{wrapped:?}");
    }
}
