//! Randomized wait-freedom from obstruction-freedom (oblivious adversary).
//!
//! The paper motivates its obstruction-free hierarchy partly through
//! randomization: *"any (deterministic) obstruction-free algorithm can be
//! transformed into a randomized wait-free algorithm that uses the same number
//! of memory locations (against an oblivious adversary)"* \[GHHW13\]. This crate
//! implements that transformation operationally:
//!
//! - the **oblivious adversary** fixes an arbitrary infinite schedule of
//!   process turns *before* seeing any coin flips ([`ObliviousSchedule`]);
//! - each process wraps the deterministic protocol with **random exponential
//!   backoff** ([`run_randomized`]): after each real step it flips a coin and
//!   may sit out a random number of its own turns. Backoff desynchronizes the
//!   processes, so with probability 1 some process eventually runs long enough
//!   effectively-solo to finish — at which point obstruction-freedom carries
//!   everyone home.
//!
//! Because the schedule cannot react to the coins, termination holds with
//! probability 1 and the *space* is untouched: the transform adds no
//! locations, which is why the space hierarchy transfers to randomized
//! wait-free algorithms (see also \[EGZ18\]).
//!
//! # Examples
//!
//! ```
//! use cbh_core::maxreg::MaxRegConsensus;
//! use cbh_random::{run_randomized, RandomizedConfig};
//!
//! let protocol = MaxRegConsensus::new(4);
//! let stats = run_randomized(&protocol, &[3, 0, 0, 2], RandomizedConfig::seeded(7))
//!     .expect("terminates with probability 1");
//! assert!(stats.report.unanimous().is_some());
//! assert_eq!(stats.report.locations_touched, 2, "the transform adds no space");
//! ```

use cbh_model::Protocol;
use cbh_sim::{ConsensusReport, Machine, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An infinite process-turn schedule fixed in advance — the oblivious
/// adversary. Deterministic in its seed and independent of all coin flips.
#[derive(Debug, Clone)]
pub struct ObliviousSchedule {
    rng: StdRng,
}

impl ObliviousSchedule {
    /// A schedule drawn uniformly at random (but fixed) per turn.
    pub fn seeded(seed: u64) -> Self {
        ObliviousSchedule {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The pid taking the next turn, among `n` processes.
    pub fn next_turn(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// Parameters of the randomized execution.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedConfig {
    /// Seed of the oblivious adversary's schedule.
    pub schedule_seed: u64,
    /// Seed of the processes' coins (independent of the schedule).
    pub coin_seed: u64,
    /// Probability of entering backoff after a step (per mille).
    pub backoff_per_mille: u32,
    /// Cap on a single backoff draw (turns).
    pub max_backoff: u64,
    /// Give up after this many turns (a safety valve for tests; the
    /// theoretical guarantee is termination with probability 1).
    pub max_turns: u64,
}

impl RandomizedConfig {
    /// A sensible default configuration with both seeds derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        RandomizedConfig {
            schedule_seed: seed,
            coin_seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            backoff_per_mille: 300,
            max_backoff: 64,
            max_turns: 50_000_000,
        }
    }
}

/// Statistics of a randomized wait-free run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomizedStats {
    /// The final consensus report (all processes decided).
    pub report: ConsensusReport,
    /// Scheduler turns consumed (including turns burnt in backoff).
    pub turns: u64,
    /// Real memory steps taken.
    pub steps: u64,
}

/// Runs `protocol` to completion under an oblivious adversary with the
/// randomized-backoff transform. Returns `None` only if `max_turns` elapsed
/// first (probability decreasing geometrically in the budget).
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
pub fn run_randomized<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    config: RandomizedConfig,
) -> Result<RandomizedStats, SimError> {
    let mut machine = Machine::start(protocol, inputs)?;
    let mut schedule = ObliviousSchedule::seeded(config.schedule_seed);
    let mut coins = StdRng::seed_from_u64(config.coin_seed);
    let n = machine.n();
    let mut backoff = vec![0u64; n];
    // Per-process growing backoff window: doubling windows are what make an
    // effectively-solo stretch arrive with probability 1.
    let mut window = vec![4u64; n];

    for turn in 0..config.max_turns {
        if machine.all_decided() {
            return Ok(RandomizedStats {
                report: machine.report(),
                turns: turn,
                steps: machine.steps(),
            });
        }
        let pid = schedule.next_turn(n);
        if machine.decision(pid).is_some() {
            continue; // decided processes ignore their turns
        }
        if backoff[pid] > 0 {
            backoff[pid] -= 1;
            continue;
        }
        machine.step(pid)?;
        if coins.gen_ratio(config.backoff_per_mille, 1000) {
            let w = window[pid].min(config.max_backoff);
            backoff[pid] = coins.gen_range(0..=w);
            window[pid] = (window[pid] * 2).min(config.max_backoff);
        }
    }

    Err(SimError::SoloBudgetExhausted {
        pid: machine.active().first().copied().unwrap_or(0),
        budget: config.max_turns,
    })
}

/// The average number of turns to termination across `seeds` runs — the
/// quantity the randomized-consensus benchmark sweeps.
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn expected_turns<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    seeds: std::ops::Range<u64>,
) -> Result<f64, SimError> {
    let count = seeds.end.saturating_sub(seeds.start).max(1);
    let mut total = 0u64;
    for seed in seeds {
        total += run_randomized(protocol, inputs, RandomizedConfig::seeded(seed))?.turns;
    }
    Ok(total as f64 / count as f64)
}

/// The \[FHS98\] observation made executable: a *single* `{fetch-and-add}`
/// location suffices for randomized wait-free binary consensus among `n`
/// processes (contrast with the Ω(√n) historyless-object bound). This is the
/// randomized transform applied to racing counters over the one-location
/// base-3n add counter.
pub fn faa_randomized_binary(
    n: usize,
) -> cbh_core::racing::RacingConsensus<cbh_core::counter::AddCounterFamily> {
    use cbh_core::counter::{AddCounterFamily, AddFlavor};
    cbh_core::racing::RacingConsensus::new(AddCounterFamily::new(2, n, AddFlavor::FetchAndAdd), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::cas::CasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;
    use cbh_core::swap::SwapConsensus;

    #[test]
    fn maxreg_terminates_across_seeds() {
        let protocol = MaxRegConsensus::new(4);
        let inputs = [1, 3, 3, 0];
        for seed in 0..20 {
            let stats =
                run_randomized(&protocol, &inputs, RandomizedConfig::seeded(seed)).unwrap();
            stats.report.check(&inputs).unwrap();
            assert!(stats.report.unanimous().is_some());
            assert_eq!(stats.report.locations_touched, 2);
        }
    }

    #[test]
    fn swap_protocol_randomized() {
        let protocol = SwapConsensus::new(3);
        let inputs = [2, 0, 1];
        for seed in 0..10 {
            let stats =
                run_randomized(&protocol, &inputs, RandomizedConfig::seeded(seed)).unwrap();
            stats.report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn faa_randomized_single_location() {
        let protocol = faa_randomized_binary(5);
        let inputs = [1, 0, 1, 1, 0];
        for seed in 0..10 {
            let stats =
                run_randomized(&protocol, &inputs, RandomizedConfig::seeded(seed)).unwrap();
            stats.report.check(&inputs).unwrap();
            assert_eq!(
                stats.report.locations_touched, 1,
                "[FHS98]: one fetch-and-add object"
            );
        }
    }

    #[test]
    fn wait_free_even_though_cas_is_already_wait_free() {
        // Degenerate sanity case: a wait-free protocol stays wait-free.
        let protocol = CasConsensus::new(3);
        let stats =
            run_randomized(&protocol, &[0, 1, 2], RandomizedConfig::seeded(3)).unwrap();
        assert_eq!(stats.steps, 3);
    }

    #[test]
    fn schedule_is_oblivious() {
        // Same schedule seed ⇒ same turn sequence, regardless of coins.
        let mut a = ObliviousSchedule::seeded(5);
        let mut b = ObliviousSchedule::seeded(5);
        for _ in 0..100 {
            assert_eq!(a.next_turn(7), b.next_turn(7));
        }
    }

    #[test]
    fn turns_exceed_steps_due_to_backoff() {
        let protocol = MaxRegConsensus::new(4);
        let stats =
            run_randomized(&protocol, &[0, 1, 2, 3], RandomizedConfig::seeded(11)).unwrap();
        assert!(stats.turns >= stats.steps);
    }
}
