//! Deterministic execution of protocols under adversarial schedulers.
//!
//! The paper's computation model (Section 2) puts *scheduling* in the hands of
//! an adversary: each step, the adversary picks an undecided process, which
//! atomically applies its poised instruction. This crate provides:
//!
//! - [`Machine`] — a configuration (process states + memory) that can be
//!   stepped, cloned and branched;
//! - [`Scheduler`] implementations: [`SoloScheduler`], [`RoundRobinScheduler`],
//!   [`RandomScheduler`], [`ScriptedScheduler`] and the burst-based
//!   [`ObstructionScheduler`];
//! - [`run_consensus`] / [`adversarial_then_solo`] — harnesses that execute a
//!   [`cbh_model::Protocol`] and produce a checkable
//!   [`ConsensusReport`];
//! - obstruction-freedom checking: from any reachable configuration, a solo
//!   run must decide ([`Machine::run_solo`]).
//!
//! # Examples
//!
//! ```
//! use cbh_model::{Action, Instruction, MemorySpec, InstructionSet, Op, Process, Protocol, Value};
//!
//! // A trivial "protocol": every process reads once and decides its input.
//! #[derive(Debug, Clone, PartialEq, Eq, Hash)]
//! struct ReadOnce { input: u64, done: bool }
//! impl Process for ReadOnce {
//!     fn action(&self) -> Action {
//!         if self.done { Action::Decide(self.input) } else { Action::Invoke(Op::read(0)) }
//!     }
//!     fn absorb(&mut self, _r: Value) { self.done = true; }
//! }
//! struct Demo;
//! impl Protocol for Demo {
//!     type Proc = ReadOnce;
//!     fn name(&self) -> String { "demo".into() }
//!     fn n(&self) -> usize { 2 }
//!     fn domain(&self) -> u64 { 2 }
//!     fn memory_spec(&self) -> MemorySpec { MemorySpec::bounded(InstructionSet::ReadWrite, 1) }
//!     fn spawn(&self, _pid: usize, input: u64) -> ReadOnce { ReadOnce { input, done: false } }
//! }
//!
//! let report = cbh_sim::run_consensus(&Demo, &[1, 1], cbh_sim::RoundRobinScheduler::new(), 100)
//!     .unwrap();
//! assert_eq!(report.decisions, vec![Some(1), Some(1)]);
//! ```

mod machine;
mod report;
mod scheduler;

pub use machine::{Event, Machine, SimError, StepOutcome, StepUndo};
pub use report::{ConsensusReport, Violation};
pub use scheduler::{
    ObstructionScheduler, RandomScheduler, RoundRobinScheduler, Scheduler, ScriptedScheduler,
    SoloScheduler,
};

// Schedules are produced here (by runs) and consumed here (by replays), so
// re-export the wire type alongside the schedulers that speak it. The packed
// configuration types are re-exported for the same reason: machines pack
// into and unpack from them.
pub use cbh_model::{PackedCtx, PackedState, Schedule};

use cbh_model::Protocol;

/// Runs a protocol with all `n` processes under `scheduler` for at most
/// `adversarial_steps` steps, then lets each undecided process finish solo
/// (which obstruction-freedom guarantees terminates).
///
/// This is the standard correctness harness: the adversarial prefix explores
/// interleavings, the solo suffix guarantees every process decides, and the
/// returned [`ConsensusReport`] can be checked for agreement and validity.
///
/// # Errors
///
/// Returns [`SimError`] if the protocol steps outside the model (uniformity
/// violation, type mismatch) or a solo run exceeds `solo_budget` steps.
pub fn adversarial_then_solo<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    scheduler: impl Scheduler,
    adversarial_steps: u64,
    solo_budget: u64,
) -> Result<ConsensusReport, SimError> {
    let mut machine = Machine::start(protocol, inputs)?;
    machine.run(scheduler, adversarial_steps)?;
    for pid in 0..machine.n() {
        if machine.decision(pid).is_none() {
            machine.run_solo(pid, solo_budget)?;
            if machine.decision(pid).is_none() {
                return Err(SimError::SoloBudgetExhausted {
                    pid,
                    budget: solo_budget,
                });
            }
        }
    }
    Ok(machine.report())
}

/// Runs a protocol under `scheduler` until every process decides or
/// `max_steps` is hit; undecided processes are then finished solo with the
/// same budget.
///
/// # Errors
///
/// Propagates [`SimError`] like [`adversarial_then_solo`].
pub fn run_consensus<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    scheduler: impl Scheduler,
    max_steps: u64,
) -> Result<ConsensusReport, SimError> {
    adversarial_then_solo(protocol, inputs, scheduler, max_steps, max_steps)
}

/// Replays `schedule` verbatim from the initial configuration and reports the
/// configuration it reaches — no solo suffix, no extra steps.
///
/// This is the replay half of the model checker's counterexamples and the
/// conformance fuzzer's shrunken reproducers: the checker guarantees every
/// scheduled pid is undecided when its turn comes, so the replay executes the
/// schedule step for step and the returned report shows the exact decision
/// vector (including poised decisions) at the violating configuration.
///
/// # Errors
///
/// Propagates [`SimError`] if the protocol steps outside the model.
pub fn replay_schedule<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    schedule: &Schedule,
) -> Result<ConsensusReport, SimError> {
    let mut machine = Machine::start(protocol, inputs)?;
    machine.run(
        ScriptedScheduler::from_schedule(schedule),
        schedule.len() as u64,
    )?;
    Ok(machine.report())
}
