//! A steppable, cloneable configuration.

use crate::report::ConsensusReport;
use crate::scheduler::Scheduler;
use cbh_model::{
    Action, Memory, MemoryUndo, ModelError, Op, PackedCache, PackedCtx, PackedState, Process,
    Protocol, Value,
};
use std::fmt;

/// Undo token returned by [`Machine::step_undoable`]: the pre-step state of
/// exactly what the step could have changed (one process, one decision slot,
/// the targeted memory locations).
#[derive(Debug, Clone)]
pub struct StepUndo<P: Process> {
    pid: usize,
    prev_decided: Option<u64>,
    /// `Some` iff the step executed an instruction (rather than only
    /// recording a pending decision).
    invoked: Option<(P, MemoryUndo)>,
}

/// An error raised while executing a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The underlying memory rejected a step.
    Model {
        /// Offending process.
        pid: usize,
        /// Global step index at which the failure occurred.
        step: u64,
        /// The memory's complaint.
        source: ModelError,
    },
    /// A decided process was scheduled.
    SteppedDecided {
        /// The decided process.
        pid: usize,
    },
    /// A solo run did not decide within its step budget — an
    /// obstruction-freedom violation (or a budget that is too small).
    SoloBudgetExhausted {
        /// The process that failed to decide.
        pid: usize,
        /// The budget that was exhausted.
        budget: u64,
    },
    /// Input vector length differs from the protocol's `n`.
    WrongInputCount {
        /// Expected `n`.
        expected: usize,
        /// Supplied inputs.
        found: usize,
    },
    /// A memory-budget spill to disk failed (disk full, permissions,
    /// short write, or a corrupt run file). Exploration stops cleanly
    /// instead of panicking inside a worker.
    Spill {
        /// Human-readable description of the underlying IO failure.
        detail: String,
    },
    /// The exploration's resident footprint outgrew its `memory_budget`
    /// beyond the evictable slack. Append-only state (the packed intern
    /// tables) cannot be spilled, so when a value-diverse protocol pushes
    /// them past `budget` plus the fixed tolerance the engine stops with
    /// this error instead of silently overrunning the cap.
    Budget {
        /// Resident bytes the exploration needed at the point it gave up.
        needed: usize,
        /// The configured `memory_budget` in bytes.
        budget: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model { pid, step, source } => {
                write!(f, "process {pid} failed at step {step}: {source}")
            }
            SimError::SteppedDecided { pid } => {
                write!(f, "scheduler stepped decided process {pid}")
            }
            SimError::SoloBudgetExhausted { pid, budget } => write!(
                f,
                "process {pid} did not decide within a solo budget of {budget} steps"
            ),
            SimError::WrongInputCount { expected, found } => {
                write!(f, "protocol expects {expected} inputs, got {found}")
            }
            SimError::Spill { detail } => {
                write!(f, "memory-budget spill failed: {detail}")
            }
            SimError::Budget { needed, budget } => write!(
                f,
                "resident state ({needed} bytes) outgrew the memory budget ({budget} bytes): \
                 intern tables are append-only and cannot be evicted"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What happened when a process was stepped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process performed `op` and absorbed `result`.
    Invoked {
        /// The atomic step taken.
        op: Op,
        /// The value the instruction returned.
        result: Value,
    },
    /// The process had already decided; no step was taken.
    AlreadyDecided(u64),
}

/// One entry of an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global step index.
    pub step: u64,
    /// Which process moved.
    pub pid: usize,
    /// The step it performed.
    pub op: Op,
    /// The result it received.
    pub result: Value,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<4} p{}: {} → {}",
            self.step, self.pid, self.op, self.result
        )
    }
}

/// A full configuration of the system: every process state plus the memory.
///
/// Configurations are ordinary values — clone one to branch an execution, as
/// the indistinguishability arguments in the paper's proofs do, or hash it to
/// memoise a state search.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Machine<P: Process> {
    procs: Vec<P>,
    decided: Vec<Option<u64>>,
    memory: Memory,
    steps: u64,
    proc_steps: Vec<u64>,
}

impl<P: Process> Machine<P> {
    /// Builds the initial configuration of `protocol` on `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongInputCount`] if `inputs.len() != protocol.n()`.
    pub fn start<Pr>(protocol: &Pr, inputs: &[u64]) -> Result<Self, SimError>
    where
        Pr: Protocol<Proc = P>,
    {
        if inputs.len() != protocol.n() {
            return Err(SimError::WrongInputCount {
                expected: protocol.n(),
                found: inputs.len(),
            });
        }
        let procs = inputs
            .iter()
            .enumerate()
            .map(|(pid, &input)| protocol.spawn(pid, input))
            .collect();
        Ok(Machine {
            procs,
            decided: vec![None; inputs.len()],
            memory: Memory::new(&protocol.memory_spec()),
            steps: 0,
            proc_steps: vec![0; inputs.len()],
        })
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Total steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Steps taken by process `pid`.
    pub fn steps_of(&self, pid: usize) -> u64 {
        self.proc_steps[pid]
    }

    /// The memory of this configuration.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The state of process `pid`.
    pub fn process(&self, pid: usize) -> &P {
        &self.procs[pid]
    }

    /// The decision of `pid`, if it has decided.
    pub fn decision(&self, pid: usize) -> Option<u64> {
        self.decided[pid].or_else(|| self.procs[pid].action().decision())
    }

    /// Pids that have not yet decided.
    pub fn active(&self) -> Vec<usize> {
        self.active_iter().collect()
    }

    /// Iterator over undecided pids, without allocating.
    ///
    /// The frontier explorer visits every configuration once and asks this
    /// question once per visit; the `Vec` that [`Machine::active`] builds is
    /// pure overhead there.
    pub fn active_iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n()).filter(move |&p| self.decision(p).is_none())
    }

    /// Returns `true` once every process has decided.
    pub fn all_decided(&self) -> bool {
        (0..self.n()).all(|p| self.decision(p).is_some())
    }

    /// The action process `pid` is poised to take.
    pub fn action(&self, pid: usize) -> Action {
        self.procs[pid].action()
    }

    /// Executes one step of process `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Model`] if memory rejects the op. A decided process
    /// yields [`StepOutcome::AlreadyDecided`] and takes no step.
    pub fn step(&mut self, pid: usize) -> Result<StepOutcome, SimError> {
        match self.procs[pid].action() {
            Action::Decide(v) => {
                self.decided[pid] = Some(v);
                Ok(StepOutcome::AlreadyDecided(v))
            }
            Action::Invoke(op) => {
                let result = self.memory.apply(&op).map_err(|source| SimError::Model {
                    pid,
                    step: self.steps,
                    source,
                })?;
                self.procs[pid].absorb(result.clone());
                self.steps += 1;
                self.proc_steps[pid] += 1;
                if let Action::Decide(v) = self.procs[pid].action() {
                    self.decided[pid] = Some(v);
                }
                Ok(StepOutcome::Invoked { op, result })
            }
        }
    }

    /// Executes one step of `pid` like [`Machine::step`], additionally
    /// returning a token that [`Machine::undo_step`] consumes to restore the
    /// pre-step configuration in place.
    ///
    /// This is the branch-light walk primitive of the state-space engine: an
    /// edge of the configuration graph costs one cloned process state and the
    /// touched memory cells — O(step footprint) — instead of a whole-machine
    /// clone, and duplicate successors are detected and abandoned without
    /// ever materialising a second `Machine`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Machine::step`]; on error the configuration is
    /// fully rolled back.
    pub fn step_undoable(&mut self, pid: usize) -> Result<(StepOutcome, StepUndo<P>), SimError> {
        let prev_decided = self.decided[pid];
        match self.procs[pid].action() {
            Action::Decide(v) => {
                self.decided[pid] = Some(v);
                Ok((
                    StepOutcome::AlreadyDecided(v),
                    StepUndo {
                        pid,
                        prev_decided,
                        invoked: None,
                    },
                ))
            }
            Action::Invoke(op) => {
                let (result, memory_undo) =
                    self.memory.apply_undoable(&op).map_err(|source| SimError::Model {
                        pid,
                        step: self.steps,
                        source,
                    })?;
                let prev_proc = self.procs[pid].clone();
                self.procs[pid].absorb(result.clone());
                self.steps += 1;
                self.proc_steps[pid] += 1;
                if let Action::Decide(v) = self.procs[pid].action() {
                    self.decided[pid] = Some(v);
                }
                Ok((
                    StepOutcome::Invoked { op, result },
                    StepUndo {
                        pid,
                        prev_decided,
                        invoked: Some((prev_proc, memory_undo)),
                    },
                ))
            }
        }
    }

    /// Reverts the step that produced `undo`. Tokens must be consumed in
    /// reverse order of application (last step undone first).
    pub fn undo_step(&mut self, undo: StepUndo<P>) {
        let StepUndo {
            pid,
            prev_decided,
            invoked,
        } = undo;
        if let Some((prev_proc, memory_undo)) = invoked {
            self.procs[pid] = prev_proc;
            self.memory.undo(memory_undo);
            self.steps -= 1;
            self.proc_steps[pid] -= 1;
        }
        self.decided[pid] = prev_decided;
    }

    /// The decision recorded for `pid` by a past step, without consulting the
    /// process's poised action. [`Machine::decision`] is the semantic query;
    /// this accessor exists so incremental fingerprints can hash exactly the
    /// stored state.
    pub fn recorded_decision(&self, pid: usize) -> Option<u64> {
        self.decided[pid]
    }

    /// Clones this configuration and steps `pid` in the copy — the branching
    /// primitive of the state-space engine.
    ///
    /// Exploration needs one child configuration per active process; with the
    /// inline small-integer words this clone is a few flat `memcpy`s, and the
    /// parent stays borrowed-shared so siblings can branch from it too.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn branch_step(&self, pid: usize) -> Result<Machine<P>, SimError> {
        let mut next = self.clone();
        next.step(pid)?;
        Ok(next)
    }

    /// Stable 128-bit fingerprint of the *semantic* configuration: process
    /// states, decisions and memory. The step counters are deliberately
    /// excluded — they are bookkeeping, not state: two configurations that
    /// differ only in step counts behave identically under every future
    /// schedule, so a state-space search that fingerprints them as equal
    /// explores strictly fewer configurations with the same verdicts.
    ///
    /// Deterministic across runs and platforms (see
    /// [`cbh_model::fingerprint_of`]).
    pub fn fingerprint(&self) -> u128 {
        use std::hash::Hash;
        let mut hasher = cbh_model::Fp128Hasher::new();
        self.procs.hash(&mut hasher);
        self.decided.hash(&mut hasher);
        self.memory.hash(&mut hasher);
        hasher.finish128()
    }

    /// Fingerprint quotiented by process identity: configurations that differ
    /// only by a permutation of (process state, decision) pairs fingerprint
    /// identically.
    ///
    /// This is the one-shot API for the process-symmetry quotient. (The
    /// checker's symmetry reduction computes the same quotient with its own
    /// incrementally-updatable digest, so the two functions agree on *which*
    /// configurations merge, not on digest values.) The quotient is **sound
    /// only for anonymous protocols** — ones whose processes never consult
    /// their pid, like the paper's Section 8 swap protocol — where any
    /// reachable configuration's permutation is reachable by the permuted
    /// schedule. For pid-aware protocols it may merge genuinely distinct
    /// states.
    pub fn fingerprint_symmetric(&self) -> u128 {
        use std::hash::{Hash, Hasher};
        let mut per_process: Vec<u128> = (0..self.n())
            .map(|pid| {
                let mut hasher = cbh_model::Fp128Hasher::new();
                self.procs[pid].hash(&mut hasher);
                self.decided[pid].hash(&mut hasher);
                hasher.finish128()
            })
            .collect();
        per_process.sort_unstable();
        let mut hasher = cbh_model::Fp128Hasher::new();
        for fp in per_process {
            hasher.write_u128(fp);
        }
        self.memory.hash(&mut hasher);
        hasher.finish128()
    }

    /// Executes one step of `pid` and records it into `trace`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn step_traced(
        &mut self,
        pid: usize,
        trace: &mut Vec<Event>,
    ) -> Result<StepOutcome, SimError> {
        let at = self.steps;
        let outcome = self.step(pid)?;
        if let StepOutcome::Invoked { op, result } = &outcome {
            trace.push(Event {
                step: at,
                pid,
                op: op.clone(),
                result: result.clone(),
            });
        }
        Ok(outcome)
    }

    /// Runs under `scheduler` until everyone decides, the scheduler stops, or
    /// `max_steps` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn run(&mut self, mut scheduler: impl Scheduler, max_steps: u64) -> Result<(), SimError> {
        for _ in 0..max_steps {
            let active = self.active();
            if active.is_empty() {
                return Ok(());
            }
            let Some(pid) = scheduler.next(&active, self.steps) else {
                return Ok(());
            };
            debug_assert!(active.contains(&pid), "scheduler chose inactive process");
            self.step(pid)?;
        }
        Ok(())
    }

    /// Runs process `pid` solo until it decides or `budget` steps elapse,
    /// returning its decision. Obstruction-freedom promises this decides from
    /// *every* reachable configuration, for a large enough budget.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn run_solo(&mut self, pid: usize, budget: u64) -> Result<Option<u64>, SimError> {
        for _ in 0..budget {
            if let Some(v) = self.decision(pid) {
                self.decided[pid] = Some(v);
                return Ok(Some(v));
            }
            self.step(pid)?;
        }
        Ok(self.decision(pid))
    }

    /// A [`PackedCtx`] matching this machine's memory policy — the execution
    /// context its packed form runs against.
    pub fn packed_ctx(&self) -> PackedCtx<P> {
        PackedCtx::for_memory(&self.memory, self.n())
    }

    /// Packs this configuration into the flat representation the state-space
    /// engine explores. Round-trips through [`Machine::from_packed`]: the
    /// semantic state (process states, recorded decisions, memory, total
    /// step count) is preserved exactly; only the per-process step counters
    /// — bookkeeping outside every fingerprint — are dropped.
    pub fn pack(&self, ctx: &PackedCtx<P>) -> PackedState {
        ctx.pack(&self.procs, &self.decided, &self.memory, self.steps)
    }

    /// Rebuilds a full machine from a packed configuration — the debugging
    /// and counterexample-reconstruction view of the packed engine (solo
    /// probes, replays and reports all run on the unpacked machine).
    ///
    /// Per-process step counters restart at zero; everything semantic,
    /// including [`Machine::fingerprint`], is restored exactly.
    pub fn from_packed(ctx: &PackedCtx<P>, state: &PackedState) -> Machine<P> {
        let (procs, decided, memory, steps) = ctx.unpack(state);
        Machine {
            proc_steps: vec![0; procs.len()],
            procs,
            decided,
            memory,
            steps,
        }
    }

    /// [`Machine::from_packed`] through a worker-local intern cache — the
    /// variant the explorer's solo probes use so repeated reconstructions
    /// skip the shared intern-table locks.
    pub fn from_packed_cached(
        ctx: &PackedCtx<P>,
        cache: &mut PackedCache<P>,
        state: &PackedState,
    ) -> Machine<P> {
        let (procs, decided, memory, steps) = ctx.unpack_cached(cache, state);
        Machine {
            proc_steps: vec![0; procs.len()],
            procs,
            decided,
            memory,
            steps,
        }
    }

    /// Summarises the configuration as a [`ConsensusReport`].
    pub fn report(&self) -> ConsensusReport {
        ConsensusReport {
            decisions: (0..self.n()).map(|p| self.decision(p)).collect(),
            steps: self.steps,
            locations_allocated: self.memory.len(),
            locations_touched: self.memory.touched(),
        }
    }
}

impl<P: Process> fmt::Debug for Machine<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Machine after {} steps", self.steps)?;
        writeln!(f, "  memory: {:?}", self.memory)?;
        for (pid, p) in self.procs.iter().enumerate() {
            writeln!(
                f,
                "  p{pid}: decided={:?} poised={:?}",
                self.decision(pid),
                p.action()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RoundRobinScheduler, SoloScheduler};
    use cbh_model::{Instruction, InstructionSet, MemorySpec};

    /// Each process fetch-and-adds 1 a fixed number of times, then decides the
    /// final value it saw mod 2.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Adder {
        remaining: u32,
        last: u64,
    }

    impl Process for Adder {
        fn action(&self) -> Action {
            if self.remaining == 0 {
                Action::Decide(self.last % 2)
            } else {
                Action::Invoke(Op::single(0, Instruction::FetchAndIncrement))
            }
        }
        fn absorb(&mut self, result: Value) {
            self.last = result.as_u64().unwrap();
            self.remaining -= 1;
        }
    }

    struct AdderProtocol {
        n: usize,
        rounds: u32,
    }

    impl Protocol for AdderProtocol {
        type Proc = Adder;
        fn name(&self) -> String {
            "adder".into()
        }
        fn n(&self) -> usize {
            self.n
        }
        fn domain(&self) -> u64 {
            2
        }
        fn memory_spec(&self) -> MemorySpec {
            MemorySpec::bounded(InstructionSet::ReadWriteFetchIncrement, 1)
        }
        fn spawn(&self, _pid: usize, _input: u64) -> Adder {
            Adder {
                remaining: self.rounds,
                last: 0,
            }
        }
    }

    #[test]
    fn round_robin_interleaves_and_counts_steps() {
        let p = AdderProtocol { n: 3, rounds: 4 };
        let mut m = Machine::start(&p, &[0, 0, 0]).unwrap();
        m.run(RoundRobinScheduler::new(), 1_000).unwrap();
        assert!(m.all_decided());
        assert_eq!(m.steps(), 12);
        assert_eq!(m.steps_of(0), 4);
        // Total of 12 increments: the last value seen by the last process is 11.
        let word = m.memory().cell(0).unwrap().as_word().unwrap().clone();
        assert_eq!(word, Value::int(12));
    }

    #[test]
    fn solo_run_decides() {
        let p = AdderProtocol { n: 2, rounds: 3 };
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        assert_eq!(m.run_solo(1, 100).unwrap(), Some(0)); // sees 0,1,2 → 2 % 2
        assert_eq!(m.decision(1), Some(0));
        assert_eq!(m.decision(0), None);
    }

    #[test]
    fn stepping_a_decided_process_is_a_noop() {
        let p = AdderProtocol { n: 2, rounds: 1 };
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        m.run(SoloScheduler::new(0), 10).unwrap();
        assert_eq!(m.step(0).unwrap(), StepOutcome::AlreadyDecided(0));
        assert_eq!(m.steps(), 1, "no extra step charged");
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let p = AdderProtocol { n: 2, rounds: 1 };
        assert!(matches!(
            Machine::start(&p, &[0]),
            Err(SimError::WrongInputCount { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn cloning_branches_configurations() {
        let p = AdderProtocol { n: 2, rounds: 2 };
        let mut a = Machine::start(&p, &[0, 0]).unwrap();
        a.step(0).unwrap();
        let mut b = a.clone();
        assert_eq!(a, b);
        a.step(0).unwrap();
        b.step(1).unwrap();
        // Same number of increments ⇒ same memory, different process states.
        assert_eq!(
            a.memory().cell(0).unwrap().as_word(),
            b.memory().cell(0).unwrap().as_word()
        );
        assert_ne!(a, b);
    }

    #[test]
    fn trace_records_ops_and_results() {
        let p = AdderProtocol { n: 1, rounds: 2 };
        let mut m = Machine::start(&p, &[0]).unwrap();
        let mut trace = Vec::new();
        m.step_traced(0, &mut trace).unwrap();
        m.step_traced(0, &mut trace).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].result, Value::int(1));
        assert!(trace[0].to_string().contains("p0"));
    }

    /// Forever poised to write 0 over the 0 already there: every step leaves
    /// the semantic configuration untouched and only advances step counters.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Spin;

    impl Process for Spin {
        fn action(&self) -> Action {
            Action::Invoke(Op::single(0, Instruction::write(0)))
        }
        fn absorb(&mut self, _result: Value) {}
    }

    struct SpinProtocol;

    impl Protocol for SpinProtocol {
        type Proc = Spin;
        fn name(&self) -> String {
            "spin".into()
        }
        fn n(&self) -> usize {
            2
        }
        fn domain(&self) -> u64 {
            2
        }
        fn memory_spec(&self) -> MemorySpec {
            MemorySpec::bounded(InstructionSet::ReadWrite, 1)
        }
        fn spawn(&self, _pid: usize, _input: u64) -> Spin {
            Spin
        }
    }

    #[test]
    fn fingerprint_ignores_step_counters() {
        // One no-op write vs two: past the first touch, the only difference
        // is the step counters. The machines are unequal but fingerprint
        // identically, so a state-space search memoising fingerprints visits
        // this configuration once, not once per path length.
        let a = Machine::start(&SpinProtocol, &[0, 0])
            .unwrap()
            .branch_step(0)
            .unwrap();
        let b = a.branch_step(0).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A semantic change does move the fingerprint.
        let p = AdderProtocol { n: 2, rounds: 2 };
        let base = Machine::start(&p, &[0, 0]).unwrap();
        assert_ne!(
            base.fingerprint(),
            base.branch_step(0).unwrap().fingerprint()
        );
    }

    #[test]
    fn symmetric_fingerprint_quotients_process_permutations() {
        let p = AdderProtocol { n: 2, rounds: 3 };
        let a = Machine::start(&p, &[0, 0]).unwrap();
        // p0 two steps vs p1 two steps: mirrored configurations.
        let left = a.branch_step(0).unwrap().branch_step(0).unwrap();
        let right = a.branch_step(1).unwrap().branch_step(1).unwrap();
        assert_ne!(left.fingerprint(), right.fingerprint());
        assert_eq!(left.fingerprint_symmetric(), right.fingerprint_symmetric());
    }

    #[test]
    fn step_undoable_roundtrips_invokes_and_decisions() {
        let p = AdderProtocol { n: 2, rounds: 1 };
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        let snapshot = m.clone();
        // An instruction step: state moves, undo restores it exactly.
        let (outcome, undo) = m.step_undoable(0).unwrap();
        assert!(matches!(outcome, StepOutcome::Invoked { .. }));
        assert_ne!(m, snapshot);
        m.undo_step(undo);
        assert_eq!(m, snapshot);
        // Redo and let p0 reach its decision, then undo the decision record.
        m.step(0).unwrap();
        let decided = m.clone();
        assert_eq!(m.recorded_decision(0), Some(0));
        let (outcome, undo) = m.step_undoable(0).unwrap();
        assert_eq!(outcome, StepOutcome::AlreadyDecided(0));
        m.undo_step(undo);
        assert_eq!(m, decided);
        // Undo-stepping agrees with branch_step at every edge.
        let (_, undo) = m.step_undoable(1).unwrap();
        let via_undo = m.clone();
        m.undo_step(undo);
        assert_eq!(via_undo, m.branch_step(1).unwrap());
    }

    #[test]
    fn pack_roundtrips_and_steps_in_lockstep() {
        let p = AdderProtocol { n: 2, rounds: 2 };
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        m.step(0).unwrap();
        let ctx = m.packed_ctx();
        let mut packed = m.pack(&ctx);
        // Unpack restores the semantic configuration and the step count.
        let back = Machine::from_packed(&ctx, &packed);
        assert_eq!(back.fingerprint(), m.fingerprint());
        assert_eq!(back.steps(), m.steps());
        assert_eq!(back.report(), m.report());
        // Stepping the packed form tracks stepping the machine.
        for pid in [1, 0, 1] {
            ctx.step(&mut packed, pid).unwrap();
            m.step(pid).unwrap();
            let view = Machine::from_packed(&ctx, &packed);
            assert_eq!(view.fingerprint(), m.fingerprint(), "after pid {pid}");
            assert_eq!(
                (0..2).map(|p| view.decision(p)).collect::<Vec<_>>(),
                (0..2).map(|p| m.decision(p)).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn branch_step_leaves_the_parent_untouched() {
        let p = AdderProtocol { n: 2, rounds: 2 };
        let parent = Machine::start(&p, &[0, 0]).unwrap();
        let snapshot = parent.clone();
        let child = parent.branch_step(1).unwrap();
        assert_eq!(parent, snapshot);
        assert_eq!(child.steps(), 1);
        assert_eq!(parent.active(), parent.active_iter().collect::<Vec<_>>());
    }

    #[test]
    fn model_errors_carry_context() {
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Bad;
        impl Process for Bad {
            fn action(&self) -> Action {
                Action::Invoke(Op::read(0)) // read() not in {compare-and-swap}
            }
            fn absorb(&mut self, _r: Value) {}
        }
        struct BadProtocol;
        impl Protocol for BadProtocol {
            type Proc = Bad;
            fn name(&self) -> String {
                "bad".into()
            }
            fn n(&self) -> usize {
                1
            }
            fn domain(&self) -> u64 {
                1
            }
            fn memory_spec(&self) -> MemorySpec {
                MemorySpec::bounded(InstructionSet::Cas, 1)
            }
            fn spawn(&self, _pid: usize, _input: u64) -> Bad {
                Bad
            }
        }
        let mut m = Machine::start(&BadProtocol, &[0]).unwrap();
        let err = m.step(0).unwrap_err();
        assert!(matches!(err, SimError::Model { pid: 0, .. }));
        assert!(err.to_string().contains("not in the uniform set"));
    }
}
