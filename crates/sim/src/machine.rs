//! A steppable, cloneable configuration.

use crate::report::ConsensusReport;
use crate::scheduler::Scheduler;
use cbh_model::{Action, Memory, ModelError, Op, Process, Protocol, Value};
use std::fmt;

/// An error raised while executing a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The underlying memory rejected a step.
    Model {
        /// Offending process.
        pid: usize,
        /// Global step index at which the failure occurred.
        step: u64,
        /// The memory's complaint.
        source: ModelError,
    },
    /// A decided process was scheduled.
    SteppedDecided {
        /// The decided process.
        pid: usize,
    },
    /// A solo run did not decide within its step budget — an
    /// obstruction-freedom violation (or a budget that is too small).
    SoloBudgetExhausted {
        /// The process that failed to decide.
        pid: usize,
        /// The budget that was exhausted.
        budget: u64,
    },
    /// Input vector length differs from the protocol's `n`.
    WrongInputCount {
        /// Expected `n`.
        expected: usize,
        /// Supplied inputs.
        found: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model { pid, step, source } => {
                write!(f, "process {pid} failed at step {step}: {source}")
            }
            SimError::SteppedDecided { pid } => {
                write!(f, "scheduler stepped decided process {pid}")
            }
            SimError::SoloBudgetExhausted { pid, budget } => write!(
                f,
                "process {pid} did not decide within a solo budget of {budget} steps"
            ),
            SimError::WrongInputCount { expected, found } => {
                write!(f, "protocol expects {expected} inputs, got {found}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What happened when a process was stepped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process performed `op` and absorbed `result`.
    Invoked {
        /// The atomic step taken.
        op: Op,
        /// The value the instruction returned.
        result: Value,
    },
    /// The process had already decided; no step was taken.
    AlreadyDecided(u64),
}

/// One entry of an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global step index.
    pub step: u64,
    /// Which process moved.
    pub pid: usize,
    /// The step it performed.
    pub op: Op,
    /// The result it received.
    pub result: Value,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<4} p{}: {} → {}",
            self.step, self.pid, self.op, self.result
        )
    }
}

/// A full configuration of the system: every process state plus the memory.
///
/// Configurations are ordinary values — clone one to branch an execution, as
/// the indistinguishability arguments in the paper's proofs do, or hash it to
/// memoise a state search.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Machine<P: Process> {
    procs: Vec<P>,
    decided: Vec<Option<u64>>,
    memory: Memory,
    steps: u64,
    proc_steps: Vec<u64>,
}

impl<P: Process> Machine<P> {
    /// Builds the initial configuration of `protocol` on `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongInputCount`] if `inputs.len() != protocol.n()`.
    pub fn start<Pr>(protocol: &Pr, inputs: &[u64]) -> Result<Self, SimError>
    where
        Pr: Protocol<Proc = P>,
    {
        if inputs.len() != protocol.n() {
            return Err(SimError::WrongInputCount {
                expected: protocol.n(),
                found: inputs.len(),
            });
        }
        let procs = inputs
            .iter()
            .enumerate()
            .map(|(pid, &input)| protocol.spawn(pid, input))
            .collect();
        Ok(Machine {
            procs,
            decided: vec![None; inputs.len()],
            memory: Memory::new(&protocol.memory_spec()),
            steps: 0,
            proc_steps: vec![0; inputs.len()],
        })
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Total steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Steps taken by process `pid`.
    pub fn steps_of(&self, pid: usize) -> u64 {
        self.proc_steps[pid]
    }

    /// The memory of this configuration.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The state of process `pid`.
    pub fn process(&self, pid: usize) -> &P {
        &self.procs[pid]
    }

    /// The decision of `pid`, if it has decided.
    pub fn decision(&self, pid: usize) -> Option<u64> {
        self.decided[pid].or_else(|| self.procs[pid].action().decision())
    }

    /// Pids that have not yet decided.
    pub fn active(&self) -> Vec<usize> {
        (0..self.n()).filter(|&p| self.decision(p).is_none()).collect()
    }

    /// Returns `true` once every process has decided.
    pub fn all_decided(&self) -> bool {
        (0..self.n()).all(|p| self.decision(p).is_some())
    }

    /// The action process `pid` is poised to take.
    pub fn action(&self, pid: usize) -> Action {
        self.procs[pid].action()
    }

    /// Executes one step of process `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Model`] if memory rejects the op. A decided process
    /// yields [`StepOutcome::AlreadyDecided`] and takes no step.
    pub fn step(&mut self, pid: usize) -> Result<StepOutcome, SimError> {
        match self.procs[pid].action() {
            Action::Decide(v) => {
                self.decided[pid] = Some(v);
                Ok(StepOutcome::AlreadyDecided(v))
            }
            Action::Invoke(op) => {
                let result = self.memory.apply(&op).map_err(|source| SimError::Model {
                    pid,
                    step: self.steps,
                    source,
                })?;
                self.procs[pid].absorb(result.clone());
                self.steps += 1;
                self.proc_steps[pid] += 1;
                if let Action::Decide(v) = self.procs[pid].action() {
                    self.decided[pid] = Some(v);
                }
                Ok(StepOutcome::Invoked { op, result })
            }
        }
    }

    /// Executes one step of `pid` and records it into `trace`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn step_traced(
        &mut self,
        pid: usize,
        trace: &mut Vec<Event>,
    ) -> Result<StepOutcome, SimError> {
        let at = self.steps;
        let outcome = self.step(pid)?;
        if let StepOutcome::Invoked { op, result } = &outcome {
            trace.push(Event {
                step: at,
                pid,
                op: op.clone(),
                result: result.clone(),
            });
        }
        Ok(outcome)
    }

    /// Runs under `scheduler` until everyone decides, the scheduler stops, or
    /// `max_steps` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn run(&mut self, mut scheduler: impl Scheduler, max_steps: u64) -> Result<(), SimError> {
        for _ in 0..max_steps {
            let active = self.active();
            if active.is_empty() {
                return Ok(());
            }
            let Some(pid) = scheduler.next(&active, self.steps) else {
                return Ok(());
            };
            debug_assert!(active.contains(&pid), "scheduler chose inactive process");
            self.step(pid)?;
        }
        Ok(())
    }

    /// Runs process `pid` solo until it decides or `budget` steps elapse,
    /// returning its decision. Obstruction-freedom promises this decides from
    /// *every* reachable configuration, for a large enough budget.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Machine::step`].
    pub fn run_solo(&mut self, pid: usize, budget: u64) -> Result<Option<u64>, SimError> {
        for _ in 0..budget {
            if let Some(v) = self.decision(pid) {
                self.decided[pid] = Some(v);
                return Ok(Some(v));
            }
            self.step(pid)?;
        }
        Ok(self.decision(pid))
    }

    /// Summarises the configuration as a [`ConsensusReport`].
    pub fn report(&self) -> ConsensusReport {
        ConsensusReport {
            decisions: (0..self.n()).map(|p| self.decision(p)).collect(),
            steps: self.steps,
            locations_allocated: self.memory.len(),
            locations_touched: self.memory.touched(),
        }
    }
}

impl<P: Process> fmt::Debug for Machine<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Machine after {} steps", self.steps)?;
        writeln!(f, "  memory: {:?}", self.memory)?;
        for (pid, p) in self.procs.iter().enumerate() {
            writeln!(
                f,
                "  p{pid}: decided={:?} poised={:?}",
                self.decision(pid),
                p.action()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RoundRobinScheduler, SoloScheduler};
    use cbh_model::{Instruction, InstructionSet, MemorySpec};

    /// Each process fetch-and-adds 1 a fixed number of times, then decides the
    /// final value it saw mod 2.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Adder {
        remaining: u32,
        last: u64,
    }

    impl Process for Adder {
        fn action(&self) -> Action {
            if self.remaining == 0 {
                Action::Decide(self.last % 2)
            } else {
                Action::Invoke(Op::single(0, Instruction::FetchAndIncrement))
            }
        }
        fn absorb(&mut self, result: Value) {
            self.last = result.as_u64().unwrap();
            self.remaining -= 1;
        }
    }

    struct AdderProtocol {
        n: usize,
        rounds: u32,
    }

    impl Protocol for AdderProtocol {
        type Proc = Adder;
        fn name(&self) -> String {
            "adder".into()
        }
        fn n(&self) -> usize {
            self.n
        }
        fn domain(&self) -> u64 {
            2
        }
        fn memory_spec(&self) -> MemorySpec {
            MemorySpec::bounded(InstructionSet::ReadWriteFetchIncrement, 1)
        }
        fn spawn(&self, _pid: usize, _input: u64) -> Adder {
            Adder {
                remaining: self.rounds,
                last: 0,
            }
        }
    }

    #[test]
    fn round_robin_interleaves_and_counts_steps() {
        let p = AdderProtocol { n: 3, rounds: 4 };
        let mut m = Machine::start(&p, &[0, 0, 0]).unwrap();
        m.run(RoundRobinScheduler::new(), 1_000).unwrap();
        assert!(m.all_decided());
        assert_eq!(m.steps(), 12);
        assert_eq!(m.steps_of(0), 4);
        // Total of 12 increments: the last value seen by the last process is 11.
        let word = m.memory().cell(0).unwrap().as_word().unwrap().clone();
        assert_eq!(word, Value::int(12));
    }

    #[test]
    fn solo_run_decides() {
        let p = AdderProtocol { n: 2, rounds: 3 };
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        assert_eq!(m.run_solo(1, 100).unwrap(), Some(0)); // sees 0,1,2 → 2 % 2
        assert_eq!(m.decision(1), Some(0));
        assert_eq!(m.decision(0), None);
    }

    #[test]
    fn stepping_a_decided_process_is_a_noop() {
        let p = AdderProtocol { n: 2, rounds: 1 };
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        m.run(SoloScheduler::new(0), 10).unwrap();
        assert_eq!(m.step(0).unwrap(), StepOutcome::AlreadyDecided(0));
        assert_eq!(m.steps(), 1, "no extra step charged");
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let p = AdderProtocol { n: 2, rounds: 1 };
        assert!(matches!(
            Machine::start(&p, &[0]),
            Err(SimError::WrongInputCount { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn cloning_branches_configurations() {
        let p = AdderProtocol { n: 2, rounds: 2 };
        let mut a = Machine::start(&p, &[0, 0]).unwrap();
        a.step(0).unwrap();
        let mut b = a.clone();
        assert_eq!(a, b);
        a.step(0).unwrap();
        b.step(1).unwrap();
        // Same number of increments ⇒ same memory, different process states.
        assert_eq!(
            a.memory().cell(0).unwrap().as_word(),
            b.memory().cell(0).unwrap().as_word()
        );
        assert_ne!(a, b);
    }

    #[test]
    fn trace_records_ops_and_results() {
        let p = AdderProtocol { n: 1, rounds: 2 };
        let mut m = Machine::start(&p, &[0]).unwrap();
        let mut trace = Vec::new();
        m.step_traced(0, &mut trace).unwrap();
        m.step_traced(0, &mut trace).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].result, Value::int(1));
        assert!(trace[0].to_string().contains("p0"));
    }

    #[test]
    fn model_errors_carry_context() {
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Bad;
        impl Process for Bad {
            fn action(&self) -> Action {
                Action::Invoke(Op::read(0)) // read() not in {compare-and-swap}
            }
            fn absorb(&mut self, _r: Value) {}
        }
        struct BadProtocol;
        impl Protocol for BadProtocol {
            type Proc = Bad;
            fn name(&self) -> String {
                "bad".into()
            }
            fn n(&self) -> usize {
                1
            }
            fn domain(&self) -> u64 {
                1
            }
            fn memory_spec(&self) -> MemorySpec {
                MemorySpec::bounded(InstructionSet::Cas, 1)
            }
            fn spawn(&self, _pid: usize, _input: u64) -> Bad {
                Bad
            }
        }
        let mut m = Machine::start(&BadProtocol, &[0]).unwrap();
        let err = m.step(0).unwrap_err();
        assert!(matches!(err, SimError::Model { pid: 0, .. }));
        assert!(err.to_string().contains("not in the uniform set"));
    }
}
