//! Adversarial schedulers.

use cbh_model::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An adversary controlling which undecided process takes the next step.
///
/// `active` is always non-empty and sorted; returning `None` ends the run
/// early (used by scripted adversaries whose script is exhausted).
pub trait Scheduler {
    /// Chooses the pid to step next from `active`, or `None` to stop.
    fn next(&mut self, active: &[usize], step: u64) -> Option<usize>;
}

/// Always runs one process: the solo executions of obstruction-freedom.
#[derive(Debug, Clone, Copy)]
pub struct SoloScheduler {
    pid: usize,
}

impl SoloScheduler {
    /// Runs only `pid`; stops if `pid` decides while others remain.
    pub fn new(pid: usize) -> Self {
        SoloScheduler { pid }
    }
}

impl Scheduler for SoloScheduler {
    fn next(&mut self, active: &[usize], _step: u64) -> Option<usize> {
        active.contains(&self.pid).then_some(self.pid)
    }
}

/// Cycles through the undecided processes in pid order.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// A fresh round-robin scheduler starting at pid 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, active: &[usize], _step: u64) -> Option<usize> {
        let pid = active
            .iter()
            .copied()
            .find(|&p| p >= self.cursor)
            .unwrap_or(active[0]);
        self.cursor = pid + 1;
        Some(pid)
    }
}

/// A seeded uniformly-random adversary. Deterministic given its seed, so
/// failures replay exactly.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A random adversary with the given seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, active: &[usize], _step: u64) -> Option<usize> {
        Some(active[self.rng.gen_range(0..active.len())])
    }
}

/// Replays an explicit pid sequence; skips entries whose process has decided;
/// stops when the script ends.
///
/// Used to reproduce the exact interleavings of the paper's proofs (e.g. the
/// Figure 1 overlap pattern).
#[derive(Debug, Clone)]
pub struct ScriptedScheduler {
    script: std::vec::IntoIter<usize>,
}

impl ScriptedScheduler {
    /// Builds a scheduler that replays `script` in order.
    pub fn new(script: impl IntoIterator<Item = usize>) -> Self {
        ScriptedScheduler {
            script: script.into_iter().collect::<Vec<_>>().into_iter(),
        }
    }

    /// Builds a scheduler replaying a serialized [`Schedule`] — the replay
    /// half of the counterexample/reproducer wire format.
    pub fn from_schedule(schedule: &Schedule) -> Self {
        ScriptedScheduler::new(schedule.iter().copied())
    }
}

impl From<Schedule> for ScriptedScheduler {
    fn from(schedule: Schedule) -> Self {
        ScriptedScheduler::new(schedule.into_vec())
    }
}

impl Scheduler for ScriptedScheduler {
    fn next(&mut self, active: &[usize], _step: u64) -> Option<usize> {
        self.script.by_ref().find(|&pid| active.contains(&pid))
    }
}

/// An adversary that runs random processes in geometrically-distributed solo
/// *bursts* — the natural adversary for obstruction-free algorithms, since it
/// eventually gives some process a long enough solo window to finish.
#[derive(Debug, Clone)]
pub struct ObstructionScheduler {
    rng: StdRng,
    current: Option<usize>,
    remaining: u64,
    mean_burst: u64,
}

impl ObstructionScheduler {
    /// A burst adversary with mean burst length `mean_burst`, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `mean_burst == 0`.
    pub fn seeded(seed: u64, mean_burst: u64) -> Self {
        assert!(mean_burst > 0, "mean burst length must be positive");
        ObstructionScheduler {
            rng: StdRng::seed_from_u64(seed),
            current: None,
            remaining: 0,
            mean_burst,
        }
    }
}

impl Scheduler for ObstructionScheduler {
    fn next(&mut self, active: &[usize], _step: u64) -> Option<usize> {
        if self.remaining == 0 || self.current.is_none_or(|p| !active.contains(&p)) {
            self.current = Some(active[self.rng.gen_range(0..active.len())]);
            // Geometric with mean `mean_burst`, at least 1.
            let p = 1.0 / self.mean_burst as f64;
            let mut len = 1;
            while self.rng.gen::<f64>() > p && len < 64 * self.mean_burst {
                len += 1;
            }
            self.remaining = len;
        }
        self.remaining -= 1;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_runs_only_its_pid() {
        let mut s = SoloScheduler::new(2);
        assert_eq!(s.next(&[0, 2, 3], 0), Some(2));
        assert_eq!(s.next(&[0, 3], 1), None);
    }

    #[test]
    fn round_robin_cycles_over_active() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.next(&[0, 1, 2], 0), Some(0));
        assert_eq!(s.next(&[0, 1, 2], 1), Some(1));
        assert_eq!(s.next(&[0, 2], 2), Some(2));
        assert_eq!(s.next(&[0, 2], 3), Some(0));
    }

    #[test]
    fn random_is_reproducible() {
        let picks = |seed| {
            let mut s = RandomScheduler::seeded(seed);
            (0..20).map(|i| s.next(&[0, 1, 2, 3], i).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8), "different seeds diverge (w.h.p.)");
    }

    #[test]
    fn random_scheduler_stream_is_pinned() {
        // Golden sequences: saved fuzzer seeds and shrunken reproducers
        // reference RandomScheduler streams by seed, so the streams are part
        // of the repository's stable interface. If this test breaks, the
        // generator changed — every persisted seed in tests, docs and bug
        // reports silently means something else. Do not update the constants;
        // restore the generator (or introduce a *new* seeded constructor).
        let picks = |seed: u64, active: &[usize], count: usize| {
            let mut s = RandomScheduler::seeded(seed);
            (0..count)
                .map(|i| s.next(active, i as u64).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(0, &[0, 1, 2, 3], 10), [3, 0, 3, 0, 3, 2, 1, 0, 3, 2]);
        assert_eq!(picks(42, &[0, 1, 2, 3], 10), [1, 3, 2, 0, 2, 2, 1, 0, 1, 2]);
        assert_eq!(picks(7, &[0, 1, 2], 8), [0, 0, 0, 0, 1, 0, 1, 0]);
        // Skewed active sets keep drawing from the *current* slice.
        assert_eq!(picks(7, &[4, 9], 6), [9, 4, 4, 9, 4, 9]);
    }

    #[test]
    fn scripted_replays_serialized_schedules() {
        let schedule: cbh_model::Schedule = "1,0,1".parse().unwrap();
        let mut s = ScriptedScheduler::from_schedule(&schedule);
        assert_eq!(s.next(&[0, 1], 0), Some(1));
        assert_eq!(s.next(&[0, 1], 1), Some(0));
        let mut owned: ScriptedScheduler = schedule.into();
        assert_eq!(owned.next(&[0, 1], 0), Some(1));
    }

    #[test]
    fn scripted_skips_decided_and_ends() {
        let mut s = ScriptedScheduler::new([1, 0, 1, 1]);
        assert_eq!(s.next(&[0, 1], 0), Some(1));
        assert_eq!(s.next(&[1], 1), Some(1), "0 skipped: decided");
        assert_eq!(s.next(&[1], 2), Some(1));
        assert_eq!(s.next(&[1], 3), None, "script exhausted");
    }

    #[test]
    fn bursts_stick_with_one_process() {
        let mut s = ObstructionScheduler::seeded(1, 10);
        let first = s.next(&[0, 1, 2], 0).unwrap();
        // While the burst lasts, the same process is chosen.
        let mut same = 0;
        for i in 1..5 {
            if s.next(&[0, 1, 2], i) == Some(first) {
                same += 1;
            }
        }
        assert!(same > 0, "burst length of mean 10 repeats at least once in 5");
    }
}
