//! Consensus run outcomes and their correctness conditions.

use std::fmt;

/// A consensus-property violation found in a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided different values.
    Agreement {
        /// First process and its decision.
        a: (usize, u64),
        /// Second process and its conflicting decision.
        b: (usize, u64),
    },
    /// A decision was not the input of any process.
    Validity {
        /// The deciding process.
        pid: usize,
        /// Its out-of-thin-air decision.
        decided: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Agreement { a, b } => write!(
                f,
                "agreement violated: p{} decided {} but p{} decided {}",
                a.0, a.1, b.0, b.1
            ),
            Violation::Validity { pid, decided } => write!(
                f,
                "validity violated: p{pid} decided {decided}, which nobody proposed"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// The outcome of a consensus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusReport {
    /// Per-process decisions (`None` = still undecided).
    pub decisions: Vec<Option<u64>>,
    /// Total steps executed.
    pub steps: u64,
    /// Locations allocated in memory at the end of the run.
    pub locations_allocated: usize,
    /// Locations ever touched — the space-complexity measure of Table 1.
    pub locations_touched: usize,
}

impl ConsensusReport {
    /// The unanimous decision, if all processes decided the same value.
    pub fn unanimous(&self) -> Option<u64> {
        let mut it = self.decisions.iter();
        let first = (*it.next()?)?;
        for d in it {
            if *d != Some(first) {
                return None;
            }
        }
        Some(first)
    }

    /// Checks agreement and validity against the proposals.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found.
    pub fn check(&self, inputs: &[u64]) -> Result<(), Violation> {
        let mut seen: Option<(usize, u64)> = None;
        for (pid, d) in self.decisions.iter().enumerate() {
            let Some(v) = *d else { continue };
            if !inputs.contains(&v) {
                return Err(Violation::Validity { pid, decided: v });
            }
            match seen {
                None => seen = Some((pid, v)),
                Some((q, w)) if w != v => {
                    return Err(Violation::Agreement {
                        a: (q, w),
                        b: (pid, v),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(decisions: Vec<Option<u64>>) -> ConsensusReport {
        ConsensusReport {
            decisions,
            steps: 0,
            locations_allocated: 1,
            locations_touched: 1,
        }
    }

    #[test]
    fn unanimous_requires_every_process() {
        assert_eq!(report(vec![Some(1), Some(1)]).unanimous(), Some(1));
        assert_eq!(report(vec![Some(1), None]).unanimous(), None);
        assert_eq!(report(vec![Some(1), Some(2)]).unanimous(), None);
    }

    #[test]
    fn agreement_violation_detected() {
        let err = report(vec![Some(0), Some(1)]).check(&[0, 1]).unwrap_err();
        assert!(matches!(err, Violation::Agreement { .. }));
        assert!(err.to_string().contains("agreement"));
    }

    #[test]
    fn validity_violation_detected() {
        let err = report(vec![Some(5), Some(5)]).check(&[0, 1]).unwrap_err();
        assert!(matches!(err, Violation::Validity { decided: 5, .. }));
    }

    #[test]
    fn undecided_processes_are_ignored_by_check() {
        report(vec![None, Some(1)]).check(&[1, 1]).unwrap();
        report(vec![None, None]).check(&[0, 1]).unwrap();
    }
}
