//! Ablation benches: design choices DESIGN.md calls out.
//!
//! - A1: bounded (Lemma 3.2, base-3n `add`) vs unbounded (Lemma 3.1, prime
//!   `multiply`) counters — word growth is the trade-off the bounded variant
//!   buys away.
//! - A2: the append step of the buffer counter as a plain `ℓ-buffer-write`
//!   vs an atomic multiple assignment (Section 7): same space, similar cost —
//!   transactions do not help, as Theorem 7.5 predicts.
//! - A3: the randomized wait-free transform's turn overhead versus direct
//!   adversarial scheduling ([GHHW13]).
//! - A4: Lemma 8.7 — the swap protocol's solo scan count is ≤ 3n−2, measured.
//! - F1: Figure 1 — the history-object reconstruction on the paper's
//!   ℓ-concurrent-appends overlap pattern.

use cbh_bench::{contended_run, spread_inputs};
use cbh_core::buffer::{buffer_consensus, reconstruct_history, BufferCounterFamily, Record};
use cbh_core::counter::{
    AddCounterFamily, AddFlavor, MultiplyCounterFamily, MultiplyFlavor,
};
use cbh_core::racing::RacingConsensus;
use cbh_core::swap::SwapConsensus;
use cbh_model::Value;
use cbh_random::{run_randomized, RandomizedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn a1_counter_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_bounded_vs_unbounded_counter");
    for n in [3usize, 5, 8] {
        let inputs = spread_inputs(n);
        g.bench_with_input(BenchmarkId::new("unbounded_multiply", n), &n, |b, &n| {
            let protocol = RacingConsensus::new(
                MultiplyCounterFamily::new(n, MultiplyFlavor::ReadMultiply),
                n,
            );
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
        g.bench_with_input(BenchmarkId::new("bounded_add", n), &n, |b, &n| {
            let protocol =
                RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::ReadAdd), n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
    }
    g.finish();
}

fn a2_multi_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_multi_assign_vs_single_write");
    let n = 6;
    let inputs = spread_inputs(n);
    for (label, multi) in [("single_write", false), ("multi_assign", true)] {
        g.bench_function(label, |b| {
            let family = BufferCounterFamily::new(n, n, 2).with_multi_assign(multi);
            let protocol = RacingConsensus::new(family, n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = contended_run(&protocol, &inputs, seed);
                assert_eq!(report.locations_touched, 3, "space identical either way");
                report
            });
        });
    }
    g.finish();
}

fn a3_randomized_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_randomized_wait_free");
    for n in [3usize, 5, 8] {
        g.bench_with_input(BenchmarkId::new("oblivious", n), &n, |b, &n| {
            let protocol = cbh_core::maxreg::MaxRegConsensus::new(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_randomized(&protocol, &inputs, RandomizedConfig::seeded(seed)).unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("adversarial", n), &n, |b, &n| {
            let protocol = cbh_core::maxreg::MaxRegConsensus::new(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
    }
    g.finish();
}

fn a4_swap_solo_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("a4_swap_solo_lemma_8_7");
    for n in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = SwapConsensus::new(n);
            let inputs = spread_inputs(n);
            b.iter(|| {
                let mut machine = cbh_sim::Machine::start(&protocol, &inputs).unwrap();
                machine.run_solo(0, 50_000_000).unwrap().expect("decides");
                // Lemma 8.7: ≤ 3n−2 scans ⇒ ≤ (3n−2)·2(n−1) reads + 3(n−1) swaps.
                let bound = (3 * n as u64 - 2) * 2 * (n as u64 - 1) + 3 * (n as u64 - 1);
                assert!(machine.steps() <= bound);
                machine.steps()
            });
        });
    }
    g.finish();
}

fn f1_history_reconstruction(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_figure1_history_reconstruction");
    for ell in [2usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, &ell| {
            // The Figure 1 pattern: a long pre-history, then ℓ concurrent
            // appends that all read the same history before any wrote.
            let old: Vec<Value> = (0..64)
                .map(|i| {
                    Record {
                        writer: 99,
                        seq: i,
                        payload: Value::int(i),
                    }
                    .encode()
                })
                .collect();
            let entries: Vec<Value> = (0..ell)
                .map(|w| {
                    Value::pair(
                        Value::seq(old.iter().cloned()),
                        Record {
                            writer: w as u64,
                            seq: 0,
                            payload: Value::int(w as u64),
                        }
                        .encode(),
                    )
                })
                .collect();
            b.iter(|| {
                let h = reconstruct_history(&entries);
                assert_eq!(h.len(), 64 + ell);
                h
            });
        });
    }
    g.finish();
}

fn row6_ell_sweep_consensus(c: &mut Criterion) {
    // Companion to F1: end-to-end buffer consensus across the ℓ spectrum at
    // fixed n, showing the space/step trade (fewer, fatter locations).
    let mut g = c.benchmark_group("f1_buffer_consensus_ell_sweep");
    let n = 6;
    let inputs = spread_inputs(n);
    for ell in [1usize, 2, 3, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, &ell| {
            let protocol = buffer_consensus(n, ell);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = configure();
    targets =
        a1_counter_variants,
        a2_multi_assign,
        a3_randomized_transform,
        a4_swap_solo_scans,
        f1_history_reconstruction,
        row6_ell_sweep_consensus,
}
criterion_main!(ablations);
