//! Criterion group `explore`: state-space engine throughput (configs/sec).
//!
//! Each benchmark runs a *complete* bounded exploration of one Table-1
//! protocol — a fixed workload, so time-per-iteration is directly
//! comparable. For every workload the routines are:
//!
//! - `frontier/…` — the packed-state engine (`cbh_verify::checker::explore`
//!   / `Explorer`), sequential;
//! - `frontier_par/…` — the same engine with the work-stealing pool at
//!   hardware parallelism;
//! - `barrier_par/…` — the preserved PR-2 barrier engine
//!   (`cbh_verify::legacy`) at the same worker count, the baseline the
//!   packed engine's multi-worker speedup is measured against (the
//!   `bench_explore` bin emits the machine-readable comparison);
//! - `legacy/…` — the original recursive checker, kept verbatim below as
//!   the deep-history baseline: it memoises deep-cloned `Machine`s keyed by
//!   their full state (step counters included).

use cbh_core::bitwise::tas_reset_consensus;
use cbh_core::cas::CasConsensus;
use cbh_core::maxreg::MaxRegConsensus;
use cbh_model::{Process, Protocol};
use cbh_sim::{Machine, SimError};
use cbh_verify::checker::{explore, ExploreLimits, ExploreOutcome, Explorer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

/// The pre-refactor checker (recursive DFS over deep-cloned machines),
/// reproduced as the baseline; returns the configurations visited.
fn legacy_explore<P: Protocol>(protocol: &P, inputs: &[u64], limits: ExploreLimits) -> usize {
    fn explore_rec<Proc: Process>(
        machine: &Machine<Proc>,
        limits: &ExploreLimits,
        seen: &mut HashSet<Machine<Proc>>,
        depth: usize,
    ) -> Result<(), SimError> {
        if !seen.insert(machine.clone()) || seen.len() > limits.max_configs {
            return Ok(());
        }
        if depth >= limits.depth {
            return Ok(());
        }
        for pid in machine.active() {
            let mut next = machine.clone();
            next.step(pid)?;
            explore_rec(&next, limits, seen, depth + 1)?;
        }
        Ok(())
    }
    let machine = Machine::start(protocol, inputs).expect("protocol starts");
    let mut seen = HashSet::new();
    explore_rec(&machine, &limits, &mut seen, 0).expect("exploration runs");
    seen.len()
}

/// Runs the frontier engine and returns configs visited, asserting a clean
/// verdict (these workloads contain no violations).
fn frontier_configs<P: Protocol>(protocol: &P, inputs: &[u64], limits: ExploreLimits) -> usize {
    match explore(protocol, inputs, limits).expect("exploration runs") {
        ExploreOutcome::Clean { configs, .. } => configs,
        other => panic!("bench workload must be clean, got {other:?}"),
    }
}

struct Workload<P> {
    name: &'static str,
    protocol: P,
    inputs: Vec<u64>,
    limits: ExploreLimits,
}

fn bench_workload<P: Protocol>(c: &mut Criterion, w: &Workload<P>)
where
    P::Proc: Send + Sync,
{
    // Record the workload sizes once, outside the timed loops: configs/sec =
    // configs below / measured time per iteration.
    eprintln!(
        "[workload {}] frontier visits {} configs, legacy visits {} (step-counter-distinct) states",
        w.name,
        frontier_configs(&w.protocol, &w.inputs, w.limits),
        legacy_explore(&w.protocol, &w.inputs, w.limits),
    );
    let mut g = c.benchmark_group("explore");
    g.bench_function(format!("frontier/{}", w.name), |b| {
        b.iter(|| frontier_configs(&w.protocol, &w.inputs, w.limits));
    });
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let parallel = Explorer::new().limits(w.limits).workers(hw);
    g.bench_function(format!("frontier_par/{}", w.name), |b| {
        b.iter(|| parallel.explore(&w.protocol, &w.inputs).unwrap());
    });
    g.bench_function(format!("barrier_par/{}", w.name), |b| {
        b.iter(|| {
            cbh_verify::legacy::legacy_explore_stats(&w.protocol, &w.inputs, w.limits, hw, false)
                .unwrap()
        });
    });
    g.bench_function(format!("legacy/{}", w.name), |b| {
        b.iter(|| legacy_explore(&w.protocol, &w.inputs, w.limits));
    });
    g.finish();
}

fn maxreg_row(c: &mut Criterion) {
    bench_workload(
        c,
        &Workload {
            name: "maxreg_n2_d18",
            protocol: MaxRegConsensus::new(2),
            inputs: vec![0, 1],
            limits: ExploreLimits {
                depth: 18,
                max_configs: 1_000_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        },
    );
}

fn maxreg3_row(c: &mut Criterion) {
    bench_workload(
        c,
        &Workload {
            name: "maxreg_n3_d12",
            protocol: MaxRegConsensus::new(3),
            inputs: vec![0, 1, 2],
            limits: ExploreLimits {
                depth: 12,
                max_configs: 1_000_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        },
    );
}

fn tas_reset_row(c: &mut Criterion) {
    // Row 4, {read, test-and-set, reset}: heavyweight per-process bit-by-bit
    // state, where the branch-light walk (undo-stepping + incremental
    // fingerprints, no clone or full-state hash per edge) shows its largest
    // margin over the clone-everything baseline — ≥ 5× configs/sec.
    bench_workload(
        c,
        &Workload {
            name: "tas_reset_n3_d14",
            protocol: tas_reset_consensus(3),
            inputs: vec![0, 1, 2],
            limits: ExploreLimits {
                depth: 14,
                max_configs: 1_000_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        },
    );
}

fn cas_row(c: &mut Criterion) {
    bench_workload(
        c,
        &Workload {
            name: "cas_n3",
            protocol: CasConsensus::new(3),
            inputs: vec![0, 1, 2],
            limits: ExploreLimits {
                depth: 12,
                max_configs: 1_000_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        },
    );
}

fn frontier_spill(c: &mut Criterion) {
    // Memory-bounded frontier ablation: the same workload fully in RAM vs
    // with the frontier budget pinned to ~10% of its observed resident peak
    // (every layer delta-compresses into the spill arena and streams back).
    // Outcomes are bit-identical by construction — the quotient of the two
    // routines is the price of running past RAM.
    let protocol = MaxRegConsensus::new(3);
    let inputs = [0u64, 1, 2];
    let limits = ExploreLimits {
        depth: 12,
        max_configs: 1_000_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let in_memory = Explorer::new().limits(limits);
    let baseline = in_memory
        .explore_stats(&protocol, &inputs)
        .expect("workload explores");
    let budget = (baseline.1.peak_resident_bytes / 10).max(1);
    let spilling = Explorer::new().limits(limits).memory_budget(Some(budget));
    {
        let check = spilling
            .explore_stats(&protocol, &inputs)
            .expect("budgeted workload explores");
        assert_eq!(check, baseline, "spilling run diverged from in-memory");
        assert!(check.1.bytes_spilled > 0, "budget never forced a spill");
    }
    let mut g = c.benchmark_group("frontier_spill");
    g.bench_function("in_memory/maxreg_n3_d12", |b| {
        b.iter(|| in_memory.explore(&protocol, &inputs).unwrap());
    });
    g.bench_function("spilling_10pct/maxreg_n3_d12", |b| {
        b.iter(|| spilling.explore(&protocol, &inputs).unwrap());
    });
    g.finish();
}

fn symmetry_reduction(c: &mut Criterion) {
    // Anonymous protocol with duplicated inputs: the quotiented frontier is
    // the same verdict over a fraction of the states.
    let protocol = MaxRegConsensus::new(3);
    let inputs = [0u64, 0, 1];
    let limits = ExploreLimits {
        depth: 10,
        max_configs: 1_000_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let mut g = c.benchmark_group("explore_symmetry");
    g.bench_function("plain/maxreg_n3_d10", |b| {
        let explorer = Explorer::new().limits(limits);
        b.iter(|| explorer.explore(&protocol, &inputs).unwrap());
    });
    g.bench_function("reduced/maxreg_n3_d10", |b| {
        let explorer = Explorer::new().limits(limits).symmetry_reduction(true);
        b.iter(|| explorer.explore(&protocol, &inputs).unwrap());
    });
    g.finish();
}

criterion_group! {
    name = explore_group;
    config = configure(&mut Criterion::default());
    targets = maxreg_row, maxreg3_row, tas_reset_row, cas_row, frontier_spill,
        symmetry_reduction,
}
criterion_main!(explore_group);
