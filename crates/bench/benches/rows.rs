//! One Criterion group per row of Table 1.
//!
//! Space (locations touched) is asserted inside each run via the helpers in
//! `cbh-bench`; the measured quantity here is time-to-consensus under a
//! contended seeded-random schedule, swept over `n` (and `ℓ`) so the growth
//! *shape* of each protocol is visible: O(1) rounds for max-registers and the
//! one-location counters, O(log n) rounds for the increment construction,
//! Θ(n) laps for swap, and so on.

use cbh_bench::{contended_run, solo_run, spread_inputs};
use cbh_core::bitwise::{increment_log_consensus, tas_reset_consensus, write01_consensus};
use cbh_core::buffer::buffer_consensus;
use cbh_core::cas::CasConsensus;
use cbh_core::counter::{
    AddCounterFamily, AddFlavor, MultiplyCounterFamily, MultiplyFlavor, SetBitCounterFamily,
};
use cbh_core::increment::IncrementFlavor;
use cbh_core::intro::{DecMulConsensus, FaaTasConsensus};
use cbh_core::maxreg::MaxRegConsensus;
use cbh_core::racing::RacingConsensus;
use cbh_core::registers::register_consensus;
use cbh_core::swap::SwapConsensus;
use cbh_core::tracks::track_consensus;
use cbh_core::util::BitWrite;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const NS: [usize; 3] = [3, 5, 8];

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn row1_unbounded_tracks(c: &mut Criterion) {
    let mut g = c.benchmark_group("row1_tracks_unbounded");
    for n in NS {
        for (label, write) in [("write1", BitWrite::Write1), ("tas", BitWrite::TestAndSet)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let protocol = track_consensus(n, write);
                let inputs = spread_inputs(n);
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    contended_run(&protocol, &inputs, seed)
                });
            });
        }
    }
    g.finish();
}

fn row2_write01(c: &mut Criterion) {
    let mut g = c.benchmark_group("row2_write01_bit_by_bit");
    for n in NS {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = write01_consensus(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
    }
    g.finish();
}

fn row3_registers(c: &mut Criterion) {
    let mut g = c.benchmark_group("row3_n_registers");
    for n in NS {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = register_consensus(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = contended_run(&protocol, &inputs, seed);
                assert_eq!(report.locations_touched, n);
                report
            });
        });
    }
    g.finish();
}

fn row4_tas_reset(c: &mut Criterion) {
    let mut g = c.benchmark_group("row4_tas_reset_bit_by_bit");
    for n in NS {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = tas_reset_consensus(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
    }
    g.finish();
}

fn row5_swap(c: &mut Criterion) {
    let mut g = c.benchmark_group("row5_swap_laps");
    for n in NS {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = SwapConsensus::new(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = contended_run(&protocol, &inputs, seed);
                assert_eq!(report.locations_touched, n - 1);
                report
            });
        });
    }
    g.finish();
}

fn row6_buffers(c: &mut Criterion) {
    let mut g = c.benchmark_group("row6_ell_buffers");
    for ell in [1usize, 2, 4] {
        let n = 8;
        g.bench_with_input(BenchmarkId::new("ell", ell), &ell, |b, &ell| {
            let protocol = buffer_consensus(n, ell);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = contended_run(&protocol, &inputs, seed);
                assert_eq!(report.locations_touched, n.div_ceil(ell));
                report
            });
        });
    }
    g.finish();
}

fn row7_increment(c: &mut Criterion) {
    let mut g = c.benchmark_group("row7_increment_log_n");
    for n in [3usize, 5, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = increment_log_consensus(n, IncrementFlavor::Increment);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                contended_run(&protocol, &inputs, seed)
            });
        });
    }
    g.finish();
}

fn row8_max_registers(c: &mut Criterion) {
    let mut g = c.benchmark_group("row8_two_max_registers");
    for n in [3usize, 5, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let protocol = MaxRegConsensus::new(n);
            let inputs = spread_inputs(n);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = contended_run(&protocol, &inputs, seed);
                assert_eq!(report.locations_touched, 2);
                report
            });
        });
    }
    g.finish();
}

fn row9_single_location(c: &mut Criterion) {
    let mut g = c.benchmark_group("row9_single_location");
    let n = 5;
    let inputs = spread_inputs(n);
    g.bench_function("cas", |b| {
        let protocol = CasConsensus::new(n);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.bench_function("multiply", |b| {
        let protocol = RacingConsensus::new(
            MultiplyCounterFamily::new(n, MultiplyFlavor::ReadMultiply),
            n,
        );
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.bench_function("add", |b| {
        let protocol = RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::ReadAdd), n);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.bench_function("set_bit", |b| {
        let protocol = RacingConsensus::new(SetBitCounterFamily::new(n, n), n);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.bench_function("fetch_and_add", |b| {
        let protocol =
            RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::FetchAndAdd), n);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.bench_function("intro_faa_tas", |b| {
        let protocol = FaaTasConsensus::new(n);
        let inputs = [0, 1, 1, 0, 1];
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.bench_function("intro_dec_mul", |b| {
        let protocol = DecMulConsensus::new(n);
        let inputs = [0, 1, 1, 0, 1];
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            contended_run(&protocol, &inputs, seed)
        });
    });
    g.finish();
}

fn solo_shapes(c: &mut Criterion) {
    // Complements the contended groups: solo cost growth per protocol —
    // Lemma 8.7 (≤ 3n−2 scans) makes swap solo Θ(n²) reads; max-registers
    // stay O(1) rounds.
    let mut g = c.benchmark_group("solo_shapes");
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("swap", n), &n, |b, &n| {
            let protocol = SwapConsensus::new(n);
            let inputs = spread_inputs(n);
            b.iter(|| solo_run(&protocol, &inputs));
        });
        g.bench_with_input(BenchmarkId::new("maxreg", n), &n, |b, &n| {
            let protocol = MaxRegConsensus::new(n);
            let inputs = spread_inputs(n);
            b.iter(|| solo_run(&protocol, &inputs));
        });
        g.bench_with_input(BenchmarkId::new("increment", n), &n, |b, &n| {
            let protocol = increment_log_consensus(n, IncrementFlavor::Increment);
            let inputs = spread_inputs(n);
            b.iter(|| solo_run(&protocol, &inputs));
        });
    }
    g.finish();
}

criterion_group! {
    name = rows;
    config = configure(&mut Criterion::default());
    targets =
        row1_unbounded_tracks,
        row2_write01,
        row3_registers,
        row4_tas_reset,
        row5_swap,
        row6_buffers,
        row7_increment,
        row8_max_registers,
        row9_single_location,
        solo_shapes,
}
criterion_main!(rows);
