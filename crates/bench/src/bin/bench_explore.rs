//! `bench_explore`: the explore-engine trajectory harness.
//!
//! Runs a fixed set of Table-1 exploration workloads through the packed
//! work-stealing engine and the legacy barrier engine at 1/2/4/8 workers,
//! plus a **spilling** packed run (frontier memory budget pinned to 10% of
//! the unbounded run's observed resident peak) and a packed-only
//! **deep-horizon** row (≥10⁶ configs, where claim-table occupancy and
//! intern-cache hit rates actually matter), and emits machine-readable
//! `BENCH_explore.json` (schema `bench_explore/v7`: configs/sec per row ×
//! engine × worker count, packed-vs-legacy and w8-vs-w1 speedups, the
//! host's `hw_threads`, and per-row memory telemetry: `peak_resident_bytes`,
//! `bytes_spilled`, `spill_slowdown_w1`, the tiered-store breakdown
//! `seen_resident_bytes` / `intern_resident_bytes` / `fpset_disk_bytes`
//! from the budgeted 1-worker run, and the checkpoint costs
//! `checkpoint_bytes` / `checkpoint_ms` from a snapshotting 1-worker run).
//! Since v6 every row also carries the distributed trajectory: timed
//! in-process `explore_sharded` cells at 1 and 4 shards (bit-identity
//! asserted against the engine first), their ratio `speedup_shards4_vs_1`,
//! and the 4-shard run's wire telemetry `frames_exchanged` / `frame_bytes`.
//! Since v7 every row also carries real-thread capture telemetry:
//! `trace_frames` / `trace_bytes` from one capture-enabled threaded run
//! (lockstep-replay-gated against the model first) and
//! `trace_capture_overhead`, the traced-vs-plain wall-clock ratio measured
//! from back-to-back pairs — the compact log's perturbation budget,
//! accumulated per commit.
//! CI uploads the file as a non-gating artifact, so engine-throughput
//! history accumulates per commit without making perf a flaky test — but
//! the artifact's *shape* is gated: `--validate FILE` re-checks a written
//! file against the schema and CI fails the build on drift.
//!
//! Every run first cross-checks that both engines produce bit-identical
//! `(ExploreOutcome, ExploreStats)` on every workload — a measurement of two
//! disagreeing engines would be meaningless — and the spilling and
//! deep-horizon runs are held to the same bar (deep: packed w8 vs w1).
//!
//! After writing the JSON the harness scans for parallel-scaling
//! regressions: any row whose packed 8-worker throughput falls below 0.9×
//! its 1-worker throughput is flagged on stderr and the process exits 2.
//! The check is skipped when the host has a single hardware thread
//! (`hw_threads` records this in the artifact) — there, 8 workers time-slice
//! one core and a "regression" would only measure the scheduler. The CI
//! step runs with `continue-on-error`, so the flag annotates the log
//! without gating the build.
//!
//! Usage: `bench_explore [--quick] [--out PATH] | bench_explore --validate FILE`
//!   --quick     one timed iteration per cell (CI smoke) instead of three
//!   --out       output path (default `BENCH_explore.json`)
//!   --validate  parse FILE and check it against schema v7; exits nonzero
//!               on drift, runs no benchmarks

use cbh_core::bitwise::{tas_reset_consensus, write01_consensus};
use cbh_core::cas::CasConsensus;
use cbh_core::maxreg::MaxRegConsensus;
use cbh_model::Protocol;
use cbh_sim::replay_schedule;
use cbh_sync::{run_threaded_bounded, run_threaded_traced};
use cbh_verify::checker::{ExploreLimits, ExploreOutcome, ExploreStats, Explorer};
use cbh_verify::dist::{explore_sharded, DistConfig};
use cbh_verify::legacy::legacy_explore_stats;
use std::fmt::Write as _;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// w8-vs-w1 ratios below this are reported as scaling regressions (when the
/// host has real parallelism to measure).
const SCALING_FLOOR: f64 = 0.9;

/// One measured cell: engine × worker count on one workload.
struct Cell {
    engine: &'static str,
    workers: usize,
    secs: f64,
    configs_per_sec: f64,
}

struct RowReport {
    name: &'static str,
    configs: usize,
    /// Frontier-resident peak of the unbounded 1-worker run — the figure
    /// spill budgets are derived from.
    peak_resident_bytes: usize,
    /// The ~10%-of-peak budget the spilling cells ran under.
    spill_budget: usize,
    /// Arena bytes the budgeted 1-worker run wrote (nonzero = the spill
    /// path really ran; silently-in-memory "spill" rows would be a lie).
    bytes_spilled: u64,
    /// Seen-set resident estimate at the end of the budgeted 1-worker run
    /// (unbudgeted run for rows without spill cells): the tiered store's
    /// Bloom front + hot table + run index, or the exact set's estimate.
    seen_resident_bytes: usize,
    /// Intern-table resident bytes at the end of the same run.
    intern_resident_bytes: usize,
    /// Bytes held in on-disk fingerprint runs at the end of the budgeted
    /// 1-worker run — nonzero means the seen set itself was evicted, not
    /// just the frontier.
    fpset_disk_bytes: u64,
    /// Budgeted-vs-unbounded 1-worker slowdown, measured from *interleaved*
    /// pairs (one unbounded run timed immediately before each budgeted run,
    /// best-of each side). Quotients of cells timed minutes apart absorb
    /// host load drift into the ratio; pairing cancels it. `NAN` (rendered
    /// `null`) for rows without spill cells.
    spill_slowdown_w1: f64,
    /// Total snapshot bytes written by the checkpointed 1-worker run.
    checkpoint_bytes: u64,
    /// Wall-clock milliseconds the same run spent writing snapshots
    /// (drain + fingerprint collection + encode + fsync, per snapshot).
    checkpoint_ms: u64,
    /// 4-shard-vs-1-shard throughput ratio of the in-process distributed
    /// explorer (both bit-identity-checked against the engine first).
    speedup_shards4_vs_1: f64,
    /// Wire frames the 4-shard run moved through its coordinator (rounds,
    /// candidate batches, verdicts, commits — both directions).
    frames_exchanged: u64,
    /// Total encoded bytes of those frames.
    frame_bytes: u64,
    /// Frames one capture-enabled threaded run recorded (= instructions the
    /// physical run applied; the capture is lockstep-replay-gated first).
    trace_frames: u64,
    /// Encoded size of that capture in the trace wire format.
    trace_bytes: u64,
    /// Traced-vs-plain threaded wall-clock ratio from back-to-back pairs
    /// (best-of each side): the compact log's perturbation budget.
    trace_capture_overhead: f64,
    cells: Vec<Cell>,
}

/// The distributed trajectory of one row: timed in-process `explore_sharded`
/// cells at 1 and 4 shards. Bit-identity against the engine baseline is
/// asserted before anything is timed — a throughput number for a diverging
/// explorer would be meaningless — and the 4-shard run's wire telemetry
/// rides along so frame volume accumulates per commit.
fn sharded_cells<P: Protocol>(
    name: &str,
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    baseline: &(ExploreOutcome, ExploreStats),
    iters: usize,
) -> (f64, u64, u64, Vec<Cell>)
where
    P::Proc: Send + Sync,
{
    let configs = baseline.1.configs;
    let mut cells = Vec::new();
    let mut frames = (0u64, 0u64);
    for shards in [1usize, 4] {
        let cfg = DistConfig {
            shards,
            workers: 1,
            symmetric: false,
        };
        // Warm-up doubles as the conformance gate.
        let out = explore_sharded(protocol, inputs, limits, cfg)
            .expect("sharded run explores cleanly");
        assert_eq!(&out, baseline, "{name}: {shards}-shard run diverged");
        if shards == 4 {
            frames = (out.1.frames_exchanged, out.1.frame_bytes);
        }
        let mut best = f64::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            let out = explore_sharded(protocol, inputs, limits, cfg)
                .expect("sharded run explores cleanly");
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(out.1.configs, configs, "{name}: nondeterministic run");
            best = best.min(secs);
        }
        cells.push(Cell {
            engine: "sharded",
            workers: shards,
            secs: best,
            configs_per_sec: configs as f64 / best,
        });
    }
    let speedup = cells[1].configs_per_sec / cells[0].configs_per_sec;
    (speedup, frames.0, frames.1, cells)
}

fn run_engine<P: Protocol>(
    packed: bool,
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    workers: usize,
) -> (ExploreOutcome, ExploreStats)
where
    P::Proc: Send + Sync,
{
    if packed {
        Explorer::new()
            .workers(workers)
            .limits(limits)
            .explore_stats(protocol, inputs)
            .expect("workload explores cleanly")
    } else {
        legacy_explore_stats(protocol, inputs, limits, workers, false)
            .expect("workload explores cleanly")
    }
}

/// Capture-overhead telemetry for the real-thread backend: how much the
/// compact event log perturbs the run it observes. The capture is gated
/// first — the merged trace must replay through the deterministic model to
/// the bit-identical [`cbh_model::ConsensusReport`]; an overhead number for
/// an unfaithful capture would be meaningless — then plain and traced runs
/// are timed in back-to-back pairs with the best of each side, so host load
/// drift cancels out of the ratio (the same pairing the w1 spill slowdown
/// uses, and for the same reason). Returns
/// `(trace_frames, trace_bytes, trace_capture_overhead)`.
fn trace_telemetry<P: Protocol>(
    name: &str,
    protocol: &P,
    inputs: &[u64],
    iters: usize,
) -> (u64, u64, f64)
where
    P::Proc: Send + Sync,
{
    const THREAD_BUDGET: u64 = 200_000;
    // Lockstep gate; doubles as the warm-up for the timed pairs below.
    let outcome = run_threaded_traced(protocol, inputs, THREAD_BUDGET)
        .unwrap_or_else(|e| panic!("{name}: traced threaded run errored: {e}"));
    let replayed = replay_schedule(protocol, inputs, &outcome.trace.schedule())
        .unwrap_or_else(|e| panic!("{name}: captured trace fails to replay: {e}"));
    assert_eq!(
        replayed, outcome.report,
        "{name}: capture is not lockstep-faithful"
    );
    let trace_frames = outcome.trace.len() as u64;
    let trace_bytes = outcome.trace.to_bytes().len() as u64;

    let mut best_plain = f64::MAX;
    let mut best_traced = f64::MAX;
    for _ in 0..iters.max(5) {
        let start = Instant::now();
        run_threaded_bounded(protocol, inputs, THREAD_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: plain threaded run errored: {e}"));
        best_plain = best_plain.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        run_threaded_traced(protocol, inputs, THREAD_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: traced threaded run errored: {e}"));
        best_traced = best_traced.min(start.elapsed().as_secs_f64());
    }
    (trace_frames, trace_bytes, best_traced / best_plain)
}

fn bench_row<P: Protocol>(
    name: &'static str,
    protocol: P,
    inputs: &[u64],
    depth: usize,
    iters: usize,
) -> RowReport
where
    P::Proc: Send + Sync,
{
    let limits = ExploreLimits {
        depth,
        max_configs: 1_000_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    // Conformance gate: a throughput number is only meaningful if the two
    // engines are exploring the same space to the same verdict.
    let packed = run_engine(true, &protocol, inputs, limits, 1);
    let legacy = run_engine(false, &protocol, inputs, limits, 1);
    assert_eq!(packed, legacy, "{name}: packed and legacy engines diverged");
    let configs = packed.1.configs;

    let mut cells = Vec::new();
    for &workers in &WORKER_COUNTS {
        for (engine, is_packed) in [("packed", true), ("legacy", false)] {
            // Warm-up once (thread pools, intern tables, allocator), then
            // keep the best of `iters` timed runs: explorations are
            // deterministic, so the minimum is the least-noise estimate.
            run_engine(is_packed, &protocol, inputs, limits, workers);
            let mut best = f64::MAX;
            for _ in 0..iters {
                let start = Instant::now();
                let out = run_engine(is_packed, &protocol, inputs, limits, workers);
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(out.1.configs, configs, "{name}: nondeterministic run");
                best = best.min(secs);
            }
            cells.push(Cell {
                engine,
                workers,
                secs: best,
                configs_per_sec: configs as f64 / best,
            });
        }
    }

    // Spill trajectory: the same workload with the frontier budget pinned to
    // ~10% of the unbounded run's resident peak. Bit-identical outcomes are
    // asserted (the budget may only move bytes, never change the space), and
    // the slowdown vs the in-memory cells above is the number the
    // memory-bounded frontier is accountable for. Rows whose entire frontier
    // peaks below a few KB are skipped (`spill_slowdown_w1: null`): there a
    // "budget" is all constant arena-setup cost and the quotient measures
    // the filesystem, not the engine.
    const SPILL_MEASURABLE: usize = 4 * 1024;
    let peak_resident_bytes = packed.1.peak_resident_bytes;
    let spill_budget = if peak_resident_bytes >= SPILL_MEASURABLE {
        (peak_resident_bytes / 10).max(1)
    } else {
        0
    };
    let spill_limits = ExploreLimits {
        memory_budget: Some(spill_budget),
        ..limits
    };
    let mut bytes_spilled = 0u64;
    // Tiered-store breakdown: defaults to the unbudgeted run's telemetry so
    // rows without spill cells still report their seen/intern footprint.
    let mut seen_resident_bytes = packed.1.seen_resident_bytes;
    let mut intern_resident_bytes = packed.1.intern_resident_bytes;
    let mut fpset_disk_bytes = 0u64;
    let mut spill_slowdown_w1 = f64::NAN;
    let spill_workers: &[usize] = if spill_budget > 0 { &[1, 8] } else { &[] };
    for &workers in spill_workers {
        run_engine(true, &protocol, inputs, spill_limits, workers);
        let mut best = f64::MAX;
        // The w1 slowdown is a *paired* measurement: each iteration times an
        // unbounded run immediately before its budgeted run, and the ratio is
        // taken between the two bests. The unbounded cell measured at the top
        // of the row is minutes older by now, and quotients across that gap
        // absorb host load drift into the ratio; back-to-back pairs cancel it.
        let mut best_unbounded = f64::MAX;
        // Ratios are far more noise-sensitive than the absolute cells: a
        // single slow iteration on either side skews the quotient, so the
        // paired w1 cells get extra iterations regardless of `iters`.
        let pair_iters = if workers == 1 { iters.max(7) } else { iters };
        for _ in 0..pair_iters {
            if workers == 1 {
                let start = Instant::now();
                run_engine(true, &protocol, inputs, limits, workers);
                best_unbounded = best_unbounded.min(start.elapsed().as_secs_f64());
            }
            let start = Instant::now();
            let out = run_engine(true, &protocol, inputs, spill_limits, workers);
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(out, packed, "{name}: spilling run diverged");
            assert!(out.1.bytes_spilled > 0, "{name}: spill cell never spilled");
            if workers == 1 {
                bytes_spilled = out.1.bytes_spilled;
                seen_resident_bytes = out.1.seen_resident_bytes;
                intern_resident_bytes = out.1.intern_resident_bytes;
                fpset_disk_bytes = out.1.fpset_disk_bytes;
            }
            best = best.min(secs);
        }
        if workers == 1 {
            spill_slowdown_w1 = best / best_unbounded;
        }
        cells.push(Cell {
            engine: "packed-spill",
            workers,
            secs: best,
            configs_per_sec: configs as f64 / best,
        });
    }

    let (checkpoint_bytes, checkpoint_ms) = checkpoint_costs(name, &protocol, inputs, limits, &packed);
    let (speedup_shards4_vs_1, frames_exchanged, frame_bytes, sharded) =
        sharded_cells(name, &protocol, inputs, limits, &packed, iters);
    cells.extend(sharded);
    let (trace_frames, trace_bytes, trace_capture_overhead) =
        trace_telemetry(name, &protocol, inputs, iters);

    RowReport {
        name,
        configs,
        peak_resident_bytes,
        spill_budget,
        bytes_spilled,
        seen_resident_bytes,
        intern_resident_bytes,
        fpset_disk_bytes,
        spill_slowdown_w1,
        checkpoint_bytes,
        checkpoint_ms,
        speedup_shards4_vs_1,
        frames_exchanged,
        frame_bytes,
        trace_frames,
        trace_bytes,
        trace_capture_overhead,
        cells,
    }
}

/// Checkpoint-cost telemetry: one snapshotting 1-worker run at a
/// quarter-of-the-row cadence. The run must stay bit-identical to the
/// plain one (snapshots may cost time, never change the exploration), and
/// its `checkpoint_bytes`/`checkpoint_ms` land in the artifact so snapshot
/// size and stall history accumulate per commit.
fn checkpoint_costs<P: Protocol>(
    name: &str,
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    baseline: &(ExploreOutcome, ExploreStats),
) -> (u64, u64)
where
    P::Proc: Send + Sync,
{
    let path = std::env::temp_dir().join(format!(
        "cbh-bench-ckpt-{}-{name}.ck",
        std::process::id()
    ));
    let out = Explorer::new()
        .limits(ExploreLimits {
            checkpoint_every: Some((baseline.1.configs as u64 / 4).max(1)),
            ..limits
        })
        .checkpoint_to(&path)
        .explore_stats(protocol, inputs)
        .expect("checkpointed run explores cleanly");
    assert_eq!(&out, baseline, "{name}: checkpointed run diverged");
    assert!(
        out.1.checkpoint_bytes > 0,
        "{name}: checkpointed run wrote no snapshots"
    );
    let _ = std::fs::remove_file(&path);
    (out.1.checkpoint_bytes, out.1.checkpoint_ms)
}

/// The deep-horizon row: a state space past 10⁶ configs, measured
/// packed-only at 1 and 8 workers. The legacy engine is deliberately
/// skipped — at its ~5–10× lower throughput the row would dominate the
/// whole harness — and so are the spill cells (the memory-budget suites
/// already pin spilling semantics). What the row *does* reach is the regime
/// the small rows can't: claim-table occupancy high enough for real probe
/// chains, intern tables big enough that the per-worker caches are
/// load-bearing, and a frontier wide enough for adaptive batching to leave
/// its minimum.
fn bench_deep_row<P: Protocol>(
    name: &'static str,
    protocol: P,
    inputs: &[u64],
    depth: usize,
    iters: usize,
) -> RowReport
where
    P::Proc: Send + Sync,
{
    let limits = ExploreLimits {
        depth,
        max_configs: 3_000_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    // Conformance gate at full scale: the racing claim path must reproduce
    // the sequential committer bit-for-bit. These two runs double as the
    // warm-ups for the timed cells below.
    let w1 = run_engine(true, &protocol, inputs, limits, 1);
    let w8 = run_engine(true, &protocol, inputs, limits, 8);
    assert_eq!(w1, w8, "{name}: packed w1 and w8 diverged");
    let configs = w1.1.configs;
    assert!(
        configs >= 1_000_000,
        "{name}: deep-horizon row shrank below 10^6 configs ({configs})"
    );

    let mut cells = Vec::new();
    for workers in [1usize, 8] {
        let mut best = f64::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            let out = run_engine(true, &protocol, inputs, limits, workers);
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(out.1.configs, configs, "{name}: nondeterministic run");
            best = best.min(secs);
        }
        cells.push(Cell {
            engine: "packed",
            workers,
            secs: best,
            configs_per_sec: configs as f64 / best,
        });
    }

    let (checkpoint_bytes, checkpoint_ms) = checkpoint_costs(name, &protocol, inputs, limits, &w1);
    let (speedup_shards4_vs_1, frames_exchanged, frame_bytes, sharded) =
        sharded_cells(name, &protocol, inputs, limits, &w1, iters);
    cells.extend(sharded);
    let (trace_frames, trace_bytes, trace_capture_overhead) =
        trace_telemetry(name, &protocol, inputs, iters);

    RowReport {
        name,
        configs,
        peak_resident_bytes: w1.1.peak_resident_bytes,
        spill_budget: 0,
        bytes_spilled: 0,
        seen_resident_bytes: w1.1.seen_resident_bytes,
        intern_resident_bytes: w1.1.intern_resident_bytes,
        fpset_disk_bytes: 0,
        spill_slowdown_w1: f64::NAN,
        checkpoint_bytes,
        checkpoint_ms,
        speedup_shards4_vs_1,
        frames_exchanged,
        frame_bytes,
        trace_frames,
        trace_bytes,
        trace_capture_overhead,
        cells,
    }
}

fn cps(report: &RowReport, engine: &str, workers: usize) -> f64 {
    report
        .cells
        .iter()
        .find(|c| c.engine == engine && c.workers == workers)
        .map(|c| c.configs_per_sec)
        .unwrap_or(f64::NAN)
}

fn json_escape_free(s: &str) -> &str {
    // All emitted strings are static identifiers without quotes/backslashes.
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

/// Writes `"key": ratio` with `null` for cells the row never measured
/// (e.g. legacy speedups on the packed-only deep-horizon row).
fn write_ratio(out: &mut String, key: &str, value: f64) {
    if value.is_finite() {
        let _ = writeln!(out, "      \"{key}\": {value:.3},");
    } else {
        let _ = writeln!(out, "      \"{key}\": null,");
    }
}

fn render_json(rows: &[RowReport], hw_threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"bench_explore/v7\",\n");
    // Hardware parallelism actually available to the run: throughput and
    // scaling numbers are meaningless without it (packed w8 on a 1-thread
    // host measures the scheduler, not the engine).
    let _ = writeln!(out, "  \"hw_threads\": {hw_threads},");
    let _ = writeln!(
        out,
        "  \"worker_counts\": [{}],",
        WORKER_COUNTS.map(|w| w.to_string()).join(", ")
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape_free(row.name));
        let _ = writeln!(out, "      \"configs\": {},", row.configs);
        let _ = writeln!(
            out,
            "      \"peak_resident_bytes\": {},",
            row.peak_resident_bytes
        );
        let _ = writeln!(out, "      \"spill_budget\": {},", row.spill_budget);
        let _ = writeln!(out, "      \"bytes_spilled\": {},", row.bytes_spilled);
        let _ = writeln!(
            out,
            "      \"seen_resident_bytes\": {},",
            row.seen_resident_bytes
        );
        let _ = writeln!(
            out,
            "      \"intern_resident_bytes\": {},",
            row.intern_resident_bytes
        );
        let _ = writeln!(out, "      \"fpset_disk_bytes\": {},", row.fpset_disk_bytes);
        let _ = writeln!(out, "      \"checkpoint_bytes\": {},", row.checkpoint_bytes);
        let _ = writeln!(out, "      \"checkpoint_ms\": {},", row.checkpoint_ms);
        let _ = writeln!(out, "      \"frames_exchanged\": {},", row.frames_exchanged);
        let _ = writeln!(out, "      \"frame_bytes\": {},", row.frame_bytes);
        let _ = writeln!(out, "      \"trace_frames\": {},", row.trace_frames);
        let _ = writeln!(out, "      \"trace_bytes\": {},", row.trace_bytes);
        write_ratio(&mut out, "trace_capture_overhead", row.trace_capture_overhead);
        write_ratio(&mut out, "speedup_shards4_vs_1", row.speedup_shards4_vs_1);
        write_ratio(&mut out, "spill_slowdown_w1", row.spill_slowdown_w1);
        write_ratio(
            &mut out,
            "speedup_packed_vs_legacy_w8",
            cps(row, "packed", 8) / cps(row, "legacy", 8),
        );
        write_ratio(
            &mut out,
            "speedup_packed_vs_legacy_w1",
            cps(row, "packed", 1) / cps(row, "legacy", 1),
        );
        write_ratio(
            &mut out,
            "speedup_packed_w8_vs_w1",
            cps(row, "packed", 8) / cps(row, "packed", 1),
        );
        out.push_str("      \"cells\": [\n");
        for (j, cell) in row.cells.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"engine\": \"{}\", \"workers\": {}, \"secs\": {:.6}, \"configs_per_sec\": {:.1}}}",
                json_escape_free(cell.engine),
                cell.workers,
                cell.secs,
                cell.configs_per_sec
            );
            out.push_str(if j + 1 < row.cells.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < rows.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema check for a written artifact: the exact version string, every
/// per-file and per-row field, and structural balance. A renamed or dropped
/// field fails CI's validation step instead of silently corrupting the
/// accumulated throughput history.
fn validate_schema(text: &str) -> Result<(), String> {
    if !text.contains("\"schema\": \"bench_explore/v7\"") {
        return Err("schema tag is not bench_explore/v7".to_string());
    }
    const TOP_KEYS: [&str; 3] = ["hw_threads", "worker_counts", "rows"];
    const ROW_KEYS: [&str; 20] = [
        "name",
        "configs",
        "peak_resident_bytes",
        "spill_budget",
        "bytes_spilled",
        "seen_resident_bytes",
        "intern_resident_bytes",
        "fpset_disk_bytes",
        "checkpoint_bytes",
        "checkpoint_ms",
        "frames_exchanged",
        "frame_bytes",
        "trace_frames",
        "trace_bytes",
        "trace_capture_overhead",
        "speedup_shards4_vs_1",
        "spill_slowdown_w1",
        "speedup_packed_w8_vs_w1",
        "speedup_packed_vs_legacy_w8",
        "cells",
    ];
    const CELL_KEYS: [&str; 4] = ["engine", "workers", "secs", "configs_per_sec"];
    let rows = text.matches("\"name\":").count();
    if rows == 0 {
        return Err("no rows".to_string());
    }
    for key in TOP_KEYS {
        if !text.contains(&format!("\"{key}\":")) {
            return Err(format!("missing top-level field {key:?}"));
        }
    }
    for key in ROW_KEYS {
        let found = text.matches(&format!("\"{key}\":")).count();
        if found != rows {
            return Err(format!(
                "field {key:?} appears {found} times for {rows} rows"
            ));
        }
    }
    let cells = text.matches("\"engine\":").count();
    if cells < rows {
        return Err(format!("{cells} cells for {rows} rows"));
    }
    for key in CELL_KEYS {
        let found = text.matches(&format!("\"{key}\":")).count();
        if found != cells {
            return Err(format!(
                "field {key:?} appears {found} times for {cells} cells"
            ));
        }
    }
    for (open, close) in [('{', '}'), ('[', ']')] {
        let opens = text.matches(open).count();
        let closes = text.matches(close).count();
        if opens != closes {
            return Err(format!("unbalanced {open}{close}: {opens} vs {closes}"));
        }
    }
    if !text.trim_end().ends_with('}') {
        return Err("file does not end with a closing brace".to_string());
    }
    Ok(())
}

fn fmt_cps(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.0}")
    } else {
        "-".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let file = args.get(i + 1).expect("--validate requires a file path");
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("--validate: cannot read {file}: {e}"));
        match validate_schema(&text) {
            Ok(()) => {
                eprintln!("{file}: valid bench_explore/v7 artifact");
                return;
            }
            Err(why) => {
                eprintln!("{file}: schema validation failed: {why}");
                std::process::exit(1);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".to_string());
    let iters = if quick { 1 } else { 3 };
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let rows = vec![
        bench_row("maxreg_n2_d18", MaxRegConsensus::new(2), &[0, 1], 18, iters),
        bench_row("maxreg_n3_d12", MaxRegConsensus::new(3), &[0, 1, 2], 12, iters),
        bench_row("cas_n3_d12", CasConsensus::new(3), &[0, 1, 2], 12, iters),
        bench_row(
            "tas_reset_n3_d16",
            tas_reset_consensus(3),
            &[0, 1, 2],
            16,
            iters,
        ),
        bench_row(
            "write01_n3_d14",
            write01_consensus(3),
            &[0, 1, 2],
            14,
            iters,
        ),
        bench_deep_row(
            "maxreg_n4_d26_deep",
            MaxRegConsensus::new(4),
            &[0, 1, 2, 3],
            26,
            iters,
        ),
    ];

    eprintln!(
        "row                 configs  packed-w1   packed-w8   legacy-w1   legacy-w8  p/l @w8  spill-w1  slow  spilledKB  s4/s1  trace"
    );
    for row in &rows {
        let spill_cps = cps(row, "packed-spill", 1);
        let (spill_col, slow_col) = if spill_cps.is_finite() {
            (
                format!("{spill_cps:.0}"),
                format!("{:.2}x", row.spill_slowdown_w1),
            )
        } else {
            ("-".to_string(), "-".to_string())
        };
        let pl_w8 = cps(row, "packed", 8) / cps(row, "legacy", 8);
        let pl_col = if pl_w8.is_finite() {
            format!("{pl_w8:.2}x")
        } else {
            "-".to_string()
        };
        eprintln!(
            "{:<19} {:>7}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7} {:>9} {:>5} {:>9}  {:>5}  {:>5}",
            row.name,
            row.configs,
            fmt_cps(cps(row, "packed", 1)),
            fmt_cps(cps(row, "packed", 8)),
            fmt_cps(cps(row, "legacy", 1)),
            fmt_cps(cps(row, "legacy", 8)),
            pl_col,
            spill_col,
            slow_col,
            row.bytes_spilled / 1024,
            format!("{:.2}x", row.speedup_shards4_vs_1),
            format!("{:.2}x", row.trace_capture_overhead),
        );
    }

    let json = render_json(&rows, hw_threads);
    std::fs::write(&out_path, &json).expect("write BENCH_explore.json");
    eprintln!("wrote {out_path}");

    // Parallel-scaling watchdog: runs after the artifact is written so a
    // flagged run still leaves its numbers behind. Only meaningful with real
    // hardware parallelism — on a single-thread host, 8 workers time-slicing
    // one core would "regress" on every row and the flag would just measure
    // the scheduler.
    if hw_threads < 2 {
        eprintln!(
            "note: hw_threads={hw_threads}; skipping parallel-scaling check (no parallelism to measure)"
        );
        return;
    }
    let mut flagged = false;
    for row in &rows {
        let ratio = cps(row, "packed", 8) / cps(row, "packed", 1);
        if ratio.is_finite() && ratio < SCALING_FLOOR {
            eprintln!(
                "warning: {}: packed w8 runs at {ratio:.2}x of w1 — parallel scaling regression",
                row.name
            );
            flagged = true;
        }
    }
    if flagged {
        std::process::exit(2);
    }
}
