//! `dist_explore`: release-mode multi-process sharded exploration smoke.
//!
//! The tier-1 dist matrix shards *in process* (threads over socketpairs,
//! states shipped by reference into one shared packed context). This smoke
//! runs the real thing: it re-spawns itself as N shard **processes**, each
//! with its own address space and packed context, connected to the
//! coordinator over a Unix-domain listener — so frames genuinely cross
//! process boundaries and admitted remote candidates are replayed from the
//! root on the owner's side. The deep-horizon row (`MaxRegConsensus::new(4)`
//! at depth 26, ≥1.5M configurations) runs at 1, 2 and 4 shards and every
//! run must be bit-identical — outcome and semantic stats — to the
//! single-process engine baseline. A second column squeezes every shard to
//! ~10% of the baseline's peak resident bytes, forcing the spill and
//! disk-run paths in every child.
//!
//! Usage: `dist_explore [--quick] [--budget-frac F]` (parent),
//! `dist_explore --shard-child ID SHARDS SOCKET [--quick] [--budget B]`
//! (internal). `--quick` shrinks the row for debug-build smoke runs;
//! `--budget-frac 0` skips the budget column. Exits nonzero on any
//! divergence; prints one summary line per shard count on success.

use cbh_core::maxreg::MaxRegConsensus;
use cbh_verify::checker::{ExploreLimits, ExploreOutcome, ExploreStats, Explorer};
use cbh_verify::dist::{accept_shards, coordinate, shard_serve, DistConfig};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Shard workers: modest, the smoke measures identity not throughput.
const SHARD_WORKERS: usize = 2;

fn row(quick: bool, budget: Option<usize>) -> (MaxRegConsensus, [u64; 4], ExploreLimits) {
    let limits = ExploreLimits {
        depth: if quick { 14 } else { 26 },
        max_configs: 3_000_000,
        solo_check_budget: None,
        memory_budget: budget,
        checkpoint_every: None,
    };
    (MaxRegConsensus::new(4), [0, 1, 2, 3], limits)
}

/// Shard-child mode: connect, announce, serve rounds until halted.
fn run_shard_child(shard: usize, shards: usize, socket: &str, quick: bool, budget: Option<usize>) -> ! {
    let (protocol, inputs, limits) = row(quick, budget);
    let sock = UnixStream::connect(socket).expect("connect to coordinator");
    let cfg = DistConfig {
        shards,
        workers: SHARD_WORKERS,
        symmetric: false,
    };
    shard_serve(&protocol, &inputs, limits, cfg, shard, sock).expect("shard serves");
    std::process::exit(0);
}

/// Spawns `shards` child processes against a fresh listener and coordinates
/// them through the full row.
fn run_distributed(
    shards: usize,
    quick: bool,
    budget: Option<usize>,
) -> (ExploreOutcome, ExploreStats) {
    let (protocol, inputs, limits) = row(quick, budget);
    let socket = std::env::temp_dir().join(format!(
        "cbh-dist-smoke-{}-{shards}-{}.sock",
        std::process::id(),
        budget.map_or(0, |b| b + 1)
    ));
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket).expect("bind coordinator socket");
    let exe = std::env::current_exe().expect("own path");
    let mut children = Vec::new();
    for shard in 0..shards {
        let mut args = vec![
            "--shard-child".to_string(),
            shard.to_string(),
            shards.to_string(),
            socket.to_string_lossy().into_owned(),
        ];
        if quick {
            args.push("--quick".to_string());
        }
        if let Some(b) = budget {
            args.push("--budget".to_string());
            args.push(b.to_string());
        }
        children.push(
            Command::new(&exe)
                .args(&args)
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn shard child"),
        );
    }
    let streams = accept_shards(&listener, shards).expect("all shards report in");
    let cfg = DistConfig {
        shards,
        workers: SHARD_WORKERS,
        symmetric: false,
    };
    let result = coordinate(&protocol, &inputs, limits, cfg, streams).expect("coordinate");
    for mut child in children {
        let status = child.wait().expect("reap shard child");
        assert!(status.success(), "shard child exited with {status}");
    }
    let _ = std::fs::remove_file(&socket);
    result
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    if args.iter().any(|a| a == "--shard-child") {
        let i = args.iter().position(|a| a == "--shard-child").unwrap();
        let shard: usize = args[i + 1].parse().expect("shard id");
        let shards: usize = args[i + 2].parse().expect("shard count");
        let socket = args[i + 3].clone();
        let budget = flag_val("--budget").map(|b| b.parse().expect("budget bytes"));
        run_shard_child(shard, shards, &socket, quick, budget);
    }
    let budget_frac: f64 = flag_val("--budget-frac")
        .map(|f| f.parse().expect("budget fraction"))
        .unwrap_or(0.1);

    let (protocol, inputs, limits) = row(quick, None);
    let started = Instant::now();
    let baseline = Explorer::new()
        .workers(4)
        .limits(limits)
        .explore_stats(&protocol, &inputs)
        .expect("baseline explores");
    let configs = baseline.1.configs;
    if !quick {
        assert!(
            configs >= 1_500_000,
            "deep-horizon row shrank to {configs} configs"
        );
    }
    eprintln!(
        "baseline: {configs} configs in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    for shards in [1usize, 2, 4] {
        let t = Instant::now();
        let dist = run_distributed(shards, quick, None);
        assert_eq!(
            dist, baseline,
            "{shards}-shard multi-process run diverged from the engine"
        );
        eprintln!(
            "{shards} shard(s): bit-identical ({configs} configs, \
             {} frames / {} bytes exchanged) in {:.1}s",
            dist.1.frames_exchanged,
            dist.1.frame_bytes,
            t.elapsed().as_secs_f64()
        );
    }

    if budget_frac > 0.0 {
        // Budget column: every shard capped to a sliver of the baseline's
        // peak — shards spill to their pid-salted arenas and the answer
        // must not move.
        let budget = (baseline.1.peak_resident_bytes as f64 * budget_frac) as usize;
        let t = Instant::now();
        let dist = run_distributed(2, quick, Some(budget));
        assert_eq!(
            dist, baseline,
            "2-shard run under a {budget}-byte per-shard budget diverged"
        );
        eprintln!(
            "2 shards @ {budget}B/shard budget: bit-identical in {:.1}s",
            t.elapsed().as_secs_f64()
        );
    }
    eprintln!("dist_explore OK");
}
