//! Regenerates Table 1 of the paper, with *measured* space next to each
//! claimed bound.
//!
//! For every row, the witnessing protocol runs under contended seeded-random
//! schedules at several `n` (and `ℓ`, for buffers); the harness prints the
//! paper's bound formulas and the locations the runs actually touched, and
//! flags any mismatch. Lower-bound rows additionally run their executable
//! adversary from `cbh-verify`.

use cbh_bench::{contended_run, spread_inputs};
use cbh_core::bitwise::{increment_log_consensus, tas_reset_consensus, write01_consensus};
use cbh_core::buffer::buffer_consensus;
use cbh_core::cas::CasConsensus;
use cbh_core::counter::{
    AddCounterFamily, AddFlavor, MultiplyCounterFamily, MultiplyFlavor, SetBitCounterFamily,
};
use cbh_core::hierarchy::{render_table, table};
use cbh_core::increment::IncrementFlavor;
use cbh_core::maxreg::MaxRegConsensus;
use cbh_core::racing::RacingConsensus;
use cbh_core::registers::register_consensus;
use cbh_core::swap::SwapConsensus;
use cbh_core::tracks::track_consensus;
use cbh_core::util::BitWrite;
use cbh_model::Protocol;
use cbh_verify::adversary::{
    fetch_inc_adversary, max_register_interleave, tas_escalation,
};
use cbh_verify::strawmen::{OneFetchIncWord, OneMaxRegister};

fn measure<P: Protocol>(protocol: &P, n: usize) -> usize {
    let inputs = spread_inputs(n);
    let mut worst = 0;
    for seed in 0..3 {
        let report = contended_run(protocol, &inputs, seed);
        worst = worst.max(report.locations_touched);
    }
    worst
}

fn row(name: &str, claimed: &str, measured: &str, ok: bool) {
    println!(
        "  {:<44} claimed {:<12} measured {:<18} {}",
        name,
        claimed,
        measured,
        if ok { "✓" } else { "✗ MISMATCH" }
    );
}

fn main() {
    println!("Table 1 — A Complexity-Based Hierarchy for Multiprocessor Synchronization");
    println!("(PODC 2016). SP(I, n) bounds as published:\n");
    println!("{}", render_table());
    println!("Reproduction (measured = worst locations touched over seeds):\n");

    let ns = [3usize, 5, 8];

    // Row: {read, test-and-set}, {read, write(1)} — SP = ∞. The Lemma 9.1
    // adversary keeps the system bivalent while pushing it through ever more
    // locations; any target is reachable, which is the row's content.
    for write in [BitWrite::Write1, BitWrite::TestAndSet] {
        let mut growth = Vec::new();
        let mut all_bivalent = true;
        for target in [6usize, 10, 14] {
            let esc = tas_escalation(&track_consensus(3, write), &[0, 1, 2], target, 8_000)
                .expect("escalation runs");
            growth.push(esc.locations_touched);
            all_bivalent &= esc.still_bivalent;
        }
        let monotone = growth.windows(2).all(|w| w[0] < w[1]);
        row(
            &format!("tracks[{write:?}] Lemma 9.1 escalation, targets 6/10/14"),
            "∞ (unbounded)",
            &format!("{growth:?}, bivalent={all_bivalent}"),
            monotone && all_bivalent && growth[2] >= 14,
        );
    }

    // Row: {read, write(0), write(1)} — n lower, O(n log n) upper.
    for &n in &ns {
        let p = write01_consensus(n);
        let measured = measure(&p, n);
        let cap = p.total_locations();
        row(
            &format!("write01 bit-by-bit (n={n})"),
            "O(n log n)",
            &format!("{measured} (layout {cap})"),
            measured <= cap,
        );
    }

    // Row: {read, write(x)} — n.
    for &n in &ns {
        let measured = measure(&register_consensus(n), n);
        row(&format!("n registers (n={n})"), "n", &measured.to_string(), measured == n);
    }

    // Row: {read, test-and-set, reset} — Ω(√n), O(n log n).
    for &n in &ns {
        let p = tas_reset_consensus(n);
        let measured = measure(&p, n);
        row(
            &format!("tas+reset bit-by-bit (n={n})"),
            "O(n log n)",
            &format!("{measured} (layout {})", p.total_locations()),
            measured <= p.total_locations(),
        );
    }

    // Row: {read, swap} — n−1.
    for &n in &ns {
        let measured = measure(&SwapConsensus::new(n), n);
        row(
            &format!("swap laps (n={n})"),
            "n−1",
            &measured.to_string(),
            measured == n - 1,
        );
    }

    // Row: ℓ-buffers — ⌈n/ℓ⌉ upper, ⌈(n−1)/ℓ⌉ lower.
    for (n, ell) in [(6usize, 1usize), (6, 2), (6, 3), (7, 2), (8, 4)] {
        let measured = measure(&buffer_consensus(n, ell), n);
        row(
            &format!("ℓ-buffers (n={n}, ℓ={ell})"),
            "⌈n/ℓ⌉",
            &measured.to_string(),
            measured == n.div_ceil(ell),
        );
    }

    // Row: {read, write, (fetch-and-)increment} — 2 lower, O(log n) upper.
    for &n in &ns {
        let p = increment_log_consensus(n, IncrementFlavor::Increment);
        let measured = measure(&p, n);
        let formula = cbh_core::hierarchy::increment_locations(n as u64) as usize;
        row(
            &format!("increment bit-by-bit (n={n})"),
            "O(log n)",
            &format!("{measured} (4⌈log n⌉−2 = {formula})"),
            measured <= formula,
        );
    }
    let fi = fetch_inc_adversary(&OneFetchIncWord::new()).expect("adversary runs");
    row(
        "Theorem 5.1 adversary vs 1-location strawman",
        "violation",
        &fi.to_string(),
        fi.violated(),
    );

    // Row: max-registers — exactly 2.
    for &n in &ns {
        let measured = measure(&MaxRegConsensus::new(n), n);
        row(
            &format!("two max-registers (n={n})"),
            "2",
            &measured.to_string(),
            measured == 2,
        );
    }
    let mr = max_register_interleave(&OneMaxRegister::new()).expect("adversary runs");
    row(
        "Theorem 4.1 adversary vs 1-max-register strawman",
        "violation",
        &mr.to_string(),
        mr.violated(),
    );

    // Row: single-location sets.
    for &n in &ns {
        let singles: Vec<(String, usize)> = vec![
            (
                "cas".into(),
                measure(&CasConsensus::new(n), n),
            ),
            (
                "multiply".into(),
                measure(
                    &RacingConsensus::new(
                        MultiplyCounterFamily::new(n, MultiplyFlavor::ReadMultiply),
                        n,
                    ),
                    n,
                ),
            ),
            (
                "add".into(),
                measure(
                    &RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::ReadAdd), n),
                    n,
                ),
            ),
            (
                "set-bit".into(),
                measure(&RacingConsensus::new(SetBitCounterFamily::new(n, n), n), n),
            ),
            (
                "fetch-and-add".into(),
                measure(
                    &RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::FetchAndAdd), n),
                    n,
                ),
            ),
            (
                "fetch-and-multiply".into(),
                measure(
                    &RacingConsensus::new(
                        MultiplyCounterFamily::new(n, MultiplyFlavor::FetchAndMultiply),
                        n,
                    ),
                    n,
                ),
            ),
        ];
        for (name, measured) in singles {
            row(
                &format!("{name} (n={n})"),
                "1",
                &measured.to_string(),
                measured == 1,
            );
        }
    }

    println!("\nBound formulas cross-check ({} rows):", table().len());
    for r in table() {
        let lo = r.lower.eval(8, 2);
        let hi = r.upper.eval(8, 2);
        println!(
            "  {:<52} lower {:<12} upper {:<12} (n=8, ℓ=2: {:?} / {:?})",
            r.sets
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            r.lower.formula(),
            r.upper.formula(),
            lo,
            hi
        );
    }
}
