//! `resume_smoke`: release-mode kill-and-resume smoke test.
//!
//! The tier-1 resume matrix kills *logically* (it resumes from retained
//! snapshots of a run that completed). This smoke kills *physically*: it
//! re-spawns itself as a child process exploring the deep-horizon row
//! (`MaxRegConsensus::new(4)` at depth 26 — ≥1.5M configurations) with
//! periodic checkpoints, polls the snapshot header until the child is
//! roughly halfway through, SIGKILLs it mid-flight, then resumes from
//! whatever snapshot survived and asserts the final `(ExploreOutcome,
//! ExploreStats)` is **bit-identical** to an uninterrupted run. That
//! closes the loop the in-process tests cannot: atomic snapshot writes
//! (temp + fsync + rename) must keep the file decodable when the process
//! dies at an arbitrary instruction, including mid-write.
//!
//! Usage: `resume_smoke [--quick]` (parent), `resume_smoke --child PATH`
//! (internal). `--quick` shrinks the row for debug-build smoke runs.
//! Exits nonzero on any divergence; prints a one-line summary on success.

use cbh_core::maxreg::MaxRegConsensus;
use cbh_verify::checker::{ExploreLimits, ExploreOutcome, ExploreStats, Explorer};
use cbh_verify::snapshot::Snapshot;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Snapshot cadence: small enough for a dozen-plus snapshots across the
/// row, so the kill lands well between the first and the last.
const CHECKPOINT_EVERY: u64 = 100_000;
const QUICK_CHECKPOINT_EVERY: u64 = 2_000;

fn row(quick: bool) -> (MaxRegConsensus, [u64; 4], ExploreLimits) {
    let limits = ExploreLimits {
        depth: if quick { 14 } else { 26 },
        max_configs: 3_000_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: Some(if quick {
            QUICK_CHECKPOINT_EVERY
        } else {
            CHECKPOINT_EVERY
        }),
    };
    (MaxRegConsensus::new(4), [0, 1, 2, 3], limits)
}

fn explorer(limits: ExploreLimits) -> Explorer {
    Explorer::new().workers(4).limits(limits)
}

/// Child mode: explore with checkpoints until killed (or done).
fn run_child(path: &str, quick: bool) -> ! {
    let (protocol, inputs, limits) = row(quick);
    explorer(limits)
        .checkpoint_to(path)
        .explore_stats(&protocol, &inputs)
        .expect("child exploration runs");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let path = args.get(i + 1).expect("--child requires a path").clone();
        run_child(&path, quick);
    }

    let (protocol, inputs, limits) = row(quick);
    let started = Instant::now();
    let baseline: (ExploreOutcome, ExploreStats) = explorer(limits)
        .explore_stats(&protocol, &inputs)
        .expect("baseline explores");
    let configs = baseline.1.configs as u64;
    if !quick {
        assert!(
            configs >= 1_500_000,
            "deep-horizon row shrank to {configs} configs; the smoke needs \
             a long enough run to kill halfway"
        );
    }
    eprintln!(
        "baseline: {configs} configs in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    let path = std::env::temp_dir().join(format!("cbh-resume-smoke-{}.ck", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    let _ = std::fs::remove_file(&path);

    let exe = std::env::current_exe().expect("own path");
    let mut child_args = vec!["--child".to_string(), path_str.clone()];
    if quick {
        child_args.push("--quick".to_string());
    }
    let mut child = Command::new(&exe)
        .args(&child_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child");

    // Poll the snapshot header until the child crosses ~50%, then SIGKILL it
    // at an arbitrary point of whatever it is doing.
    let target = configs / 2;
    let deadline = Instant::now() + Duration::from_secs(600);
    let mut peeked = 0u64;
    loop {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("child never reached {target} configs (last snapshot: {peeked})");
        }
        if let Ok(Some(status)) = child.try_wait() {
            // Lost the race: the child finished before the poll saw 50%.
            // The resume below then starts from the final snapshot, which
            // must still reproduce the baseline — but say so.
            eprintln!("note: child finished (status {status}) before the kill; resuming from its last snapshot");
            break;
        }
        if let Ok(n) = Snapshot::peek_configs(&path) {
            peeked = n;
            if n >= target {
                child.kill().expect("SIGKILL child");
                child.wait().expect("reap child");
                eprintln!("killed child at snapshot {n}/{configs} configs");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(if quick { 2 } else { 20 }));
    }

    let resumed_from = Snapshot::peek_configs(&path).expect("a durable snapshot survives the kill");
    let resume_start = Instant::now();
    let resumed = explorer(limits)
        .checkpoint_to(&path_str)
        .explore_resumable(&protocol, &inputs)
        .expect("resume explores");
    assert_eq!(
        resumed, baseline,
        "resumed run diverged from the uninterrupted baseline"
    );
    assert!(
        resumed_from <= configs,
        "snapshot claims more configs than the run has"
    );
    let _ = std::fs::remove_file(&path);
    cleanup_stale_tmp(&path);
    eprintln!(
        "resume_smoke OK: killed at {resumed_from}/{configs} configs, resumed \
         bit-identically in {:.1}s",
        resume_start.elapsed().as_secs_f64()
    );
}

/// A kill mid-write can orphan the snapshot's temp file; it is inert (the
/// rename never committed) but should not accumulate.
fn cleanup_stale_tmp(path: &Path) {
    if let Some(name) = path.file_name() {
        let tmp = path.with_file_name(format!("{}.tmp", name.to_string_lossy()));
        let _ = std::fs::remove_file(tmp);
    }
}
