//! Shared measurement helpers for the Table 1 harness and the Criterion
//! benches.

use cbh_model::Protocol;
use cbh_sim::{adversarial_then_solo, ConsensusReport, RandomScheduler};

/// A standard contended workload: `steps` of seeded-random adversarial
/// scheduling followed by solo finishes, asserting agreement and validity.
///
/// # Panics
///
/// Panics if the protocol errors or violates consensus — benches must measure
/// *correct* runs only.
pub fn contended_run<P: Protocol>(protocol: &P, inputs: &[u64], seed: u64) -> ConsensusReport {
    let steps = 2_000 * inputs.len() as u64;
    let report = adversarial_then_solo(
        protocol,
        inputs,
        RandomScheduler::seeded(seed),
        steps,
        50_000_000,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    report
        .check(inputs)
        .unwrap_or_else(|v| panic!("{}: {v}", protocol.name()));
    report
}

/// A solo workload: process 0 runs alone from the initial configuration.
///
/// # Panics
///
/// Panics if the solo run fails to decide (an obstruction-freedom violation).
pub fn solo_run<P: Protocol>(protocol: &P, inputs: &[u64]) -> ConsensusReport {
    let mut machine = cbh_sim::Machine::start(protocol, inputs)
        .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    machine
        .run_solo(0, 50_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()))
        .unwrap_or_else(|| panic!("{}: solo run failed to decide", protocol.name()));
    machine.report()
}

/// The mixed input vector used across benches: a contended spread with
/// duplicates, always containing value 0 and `n−1`.
pub fn spread_inputs(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| match i % 3 {
            0 => 0,
            1 => (n - 1) as u64,
            _ => (i as u64) % n as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::maxreg::MaxRegConsensus;

    #[test]
    fn helpers_produce_checked_reports() {
        let protocol = MaxRegConsensus::new(4);
        let inputs = spread_inputs(4);
        let contended = contended_run(&protocol, &inputs, 3);
        assert!(contended.unanimous().is_some());
        let solo = solo_run(&protocol, &inputs);
        assert_eq!(solo.decisions[0], Some(inputs[0]));
    }

    #[test]
    fn spread_inputs_cover_extremes() {
        let inputs = spread_inputs(9);
        assert!(inputs.contains(&0));
        assert!(inputs.contains(&8));
        assert!(inputs.iter().all(|&v| v < 9));
    }
}
