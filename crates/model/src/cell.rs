//! Per-location semantics: plain words and `ℓ`-buffers.

use crate::{Instruction, ModelError, Result, Value};
use cbh_bigint::BigInt;
use std::collections::VecDeque;
use std::fmt;

/// The state of a single memory location.
///
/// Plain instruction sets operate on a [`CellState::Word`]. The buffer sets
/// `B_ℓ` of Section 6 operate on a [`CellState::Buffer`], whose state *is* the
/// sequence of the `ℓ` most recent writes — exactly the information an
/// `ℓ-buffer-read` may return.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum CellState {
    /// A single word.
    Word(Value),
    /// An `ℓ`-buffer: the inputs of the `ℓ` most recent `ℓ-buffer-write`s,
    /// oldest first.
    Buffer {
        /// The capacity `ℓ ≥ 1`.
        cap: usize,
        /// Most recent writes, oldest first; never longer than `cap`.
        entries: VecDeque<Value>,
    },
}

impl CellState {
    /// A word initialised to `v`.
    pub fn word(v: Value) -> Self {
        CellState::Word(v)
    }

    /// An empty `ℓ`-buffer.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`; the paper requires `ℓ ≥ 1`.
    pub fn buffer(cap: usize) -> Self {
        assert!(cap >= 1, "ℓ-buffer capacity must be at least 1");
        CellState::Buffer {
            cap,
            entries: VecDeque::new(),
        }
    }

    /// Estimated heap-resident footprint in bytes, including the inline
    /// enum. Feeds the memory-budget accounting for interned cell states.
    pub fn resident_bytes(&self) -> usize {
        let inline = std::mem::size_of::<CellState>();
        match self {
            CellState::Word(v) => inline + v.resident_bytes(),
            CellState::Buffer { entries, .. } => {
                inline + entries.iter().map(Value::resident_bytes).sum::<usize>()
            }
        }
    }

    /// The word contents, if this is a word cell.
    pub fn as_word(&self) -> Option<&Value> {
        match self {
            CellState::Word(v) => Some(v),
            CellState::Buffer { .. } => None,
        }
    }

    /// Applies one instruction atomically, returning the instruction's result.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TypeMismatch`] when an arithmetic instruction hits
    /// a non-integer word or a buffer/word instruction hits the wrong cell
    /// kind. Uniformity is *not* checked here — that is [`crate::Memory`]'s
    /// job; the cell implements raw semantics.
    pub fn apply(&mut self, instr: &Instruction) -> Result<Value> {
        match self {
            CellState::Word(word) => Self::apply_word(word, instr),
            CellState::Buffer { cap, entries } => Self::apply_buffer(*cap, entries, instr),
        }
    }

    /// The write a multiple assignment performs on this cell kind: a plain
    /// `write(v)` on words, an `ℓ-buffer-write(v)` on buffers.
    pub fn multi_assign_write(&mut self, v: Value) {
        match self {
            CellState::Word(word) => *word = v,
            CellState::Buffer { cap, entries } => Self::buffer_push(*cap, entries, v),
        }
    }

    fn apply_word(word: &mut Value, instr: &Instruction) -> Result<Value> {
        use Instruction as I;
        match instr {
            I::Read | I::ReadMax => Ok(word.clone()),
            I::Write(v) => {
                *word = v.clone();
                Ok(Value::Bot)
            }
            I::Swap(v) => Ok(std::mem::replace(word, v.clone())),
            I::CompareAndSwap { expected, new } => {
                let old = word.clone();
                if old == *expected {
                    *word = new.clone();
                }
                Ok(old)
            }
            I::TestAndSet => {
                let cur = Self::int_of(word)?.clone();
                if cur.is_zero() {
                    *word = Value::one();
                }
                Ok(Value::Int(cur))
            }
            I::Reset => {
                *word = Value::zero();
                Ok(Value::Bot)
            }
            I::FetchAndAdd(x) => {
                let cur = Self::int_of(word)?.clone();
                *word = Value::Int(&cur + x);
                Ok(Value::Int(cur))
            }
            I::Add(x) => {
                let cur = Self::int_of(word)?;
                *word = Value::Int(cur + x);
                Ok(Value::Bot)
            }
            I::Increment => {
                let cur = Self::int_of(word)?;
                *word = Value::Int(cur + &BigInt::one());
                Ok(Value::Bot)
            }
            I::Decrement => {
                let cur = Self::int_of(word)?;
                *word = Value::Int(cur - &BigInt::one());
                Ok(Value::Bot)
            }
            I::FetchAndIncrement => {
                let cur = Self::int_of(word)?.clone();
                *word = Value::Int(&cur + &BigInt::one());
                Ok(Value::Int(cur))
            }
            I::Multiply(x) => {
                let cur = Self::int_of(word)?;
                *word = Value::Int(cur * x);
                Ok(Value::Bot)
            }
            I::FetchAndMultiply(x) => {
                let cur = Self::int_of(word)?.clone();
                *word = Value::Int(&cur * x);
                Ok(Value::Int(cur))
            }
            I::SetBit(i) => {
                let mut cur = Self::int_of(word)?.clone();
                cur.set_bit(*i);
                *word = Value::Int(cur);
                Ok(Value::Bot)
            }
            I::WriteMax(v) => {
                let new = v
                    .as_int()
                    .ok_or_else(|| Self::mismatch("an integer argument", v))?;
                let cur = Self::int_of(word)?;
                if new > cur {
                    *word = v.clone();
                }
                Ok(Value::Bot)
            }
            I::BufferRead | I::BufferWrite(_) => {
                Err(Self::mismatch("an ℓ-buffer cell", word))
            }
        }
    }

    fn apply_buffer(
        cap: usize,
        entries: &mut VecDeque<Value>,
        instr: &Instruction,
    ) -> Result<Value> {
        use Instruction as I;
        match instr {
            I::BufferRead => {
                let mut out = Vec::with_capacity(cap);
                out.resize(cap - entries.len(), Value::Bot);
                out.extend(entries.iter().cloned());
                Ok(Value::Seq(out))
            }
            I::BufferWrite(v) => {
                Self::buffer_push(cap, entries, v.clone());
                Ok(Value::Bot)
            }
            other => Err(ModelError::TypeMismatch {
                expected: "a word cell",
                found: format!("an ℓ-buffer (instruction {other})"),
            }),
        }
    }

    fn buffer_push(cap: usize, entries: &mut VecDeque<Value>, v: Value) {
        entries.push_back(v);
        while entries.len() > cap {
            entries.pop_front();
        }
    }

    fn int_of(word: &Value) -> Result<&BigInt> {
        word.as_int()
            .ok_or_else(|| Self::mismatch("an integer word", word))
    }

    fn mismatch(expected: &'static str, found: &impl fmt::Display) -> ModelError {
        ModelError::TypeMismatch {
            expected,
            found: found.to_string(),
        }
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellState::Word(v) => write!(f, "{v}"),
            CellState::Buffer { cap, entries } => {
                write!(f, "buf{cap}[")?;
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Debug for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction as I;

    fn word0() -> CellState {
        CellState::word(Value::zero())
    }

    #[test]
    fn read_write_swap_cas() {
        let mut c = word0();
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(0));
        assert_eq!(c.apply(&I::write(7)).unwrap(), Value::Bot);
        assert_eq!(c.apply(&I::Swap(Value::int(9))).unwrap(), Value::int(7));
        // CAS succeeds only on a match, returns the old value either way.
        let miss = c
            .apply(&I::CompareAndSwap {
                expected: Value::int(1),
                new: Value::int(5),
            })
            .unwrap();
        assert_eq!(miss, Value::int(9));
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(9));
        let hit = c
            .apply(&I::CompareAndSwap {
                expected: Value::int(9),
                new: Value::int(5),
            })
            .unwrap();
        assert_eq!(hit, Value::int(9));
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(5));
    }

    #[test]
    fn test_and_set_uses_papers_stronger_definition() {
        // Returns the stored number; sets to 1 only if it contained 0.
        let mut c = word0();
        assert_eq!(c.apply(&I::TestAndSet).unwrap(), Value::int(0));
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(1));
        let mut c = CellState::word(Value::int(6));
        assert_eq!(c.apply(&I::TestAndSet).unwrap(), Value::int(6));
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(6), "6 is untouched");
    }

    #[test]
    fn arithmetic_family() {
        let mut c = word0();
        assert_eq!(c.apply(&I::fetch_and_add(2)).unwrap(), Value::int(0));
        assert_eq!(c.apply(&I::fetch_and_add(2)).unwrap(), Value::int(2));
        c.apply(&I::add(-5)).unwrap();
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(-1));
        c.apply(&I::Increment).unwrap();
        c.apply(&I::Decrement).unwrap();
        c.apply(&I::Decrement).unwrap();
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(-2));
        assert_eq!(c.apply(&I::FetchAndIncrement).unwrap(), Value::int(-2));
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(-1));
    }

    #[test]
    fn multiply_family() {
        let mut c = CellState::word(Value::one());
        c.apply(&I::multiply(6)).unwrap();
        assert_eq!(c.apply(&I::FetchAndMultiply(7.into())).unwrap(), Value::int(6));
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(42));
    }

    #[test]
    fn set_bit_is_idempotent_per_bit() {
        let mut c = word0();
        c.apply(&I::SetBit(3)).unwrap();
        c.apply(&I::SetBit(3)).unwrap();
        c.apply(&I::SetBit(0)).unwrap();
        assert_eq!(c.apply(&I::Read).unwrap(), Value::int(9));
    }

    #[test]
    fn write_max_keeps_maximum() {
        let mut c = word0();
        c.apply(&I::WriteMax(Value::int(5))).unwrap();
        c.apply(&I::WriteMax(Value::int(3))).unwrap();
        assert_eq!(c.apply(&I::ReadMax).unwrap(), Value::int(5));
        c.apply(&I::WriteMax(Value::int(8))).unwrap();
        assert_eq!(c.apply(&I::ReadMax).unwrap(), Value::int(8));
    }

    #[test]
    fn buffer_pads_then_slides() {
        let mut c = CellState::buffer(3);
        assert_eq!(
            c.apply(&I::BufferRead).unwrap(),
            Value::seq([Value::Bot, Value::Bot, Value::Bot])
        );
        for k in 1..=2 {
            c.apply(&I::BufferWrite(Value::int(k))).unwrap();
        }
        assert_eq!(
            c.apply(&I::BufferRead).unwrap(),
            Value::seq([Value::Bot, Value::int(1), Value::int(2)])
        );
        for k in 3..=5 {
            c.apply(&I::BufferWrite(Value::int(k))).unwrap();
        }
        assert_eq!(
            c.apply(&I::BufferRead).unwrap(),
            Value::seq([Value::int(3), Value::int(4), Value::int(5)])
        );
    }

    #[test]
    fn one_buffer_is_a_register() {
        let mut c = CellState::buffer(1);
        c.apply(&I::BufferWrite(Value::int(4))).unwrap();
        c.apply(&I::BufferWrite(Value::int(6))).unwrap();
        assert_eq!(c.apply(&I::BufferRead).unwrap(), Value::seq([Value::int(6)]));
    }

    #[test]
    fn type_mismatches_are_errors() {
        let mut c = CellState::word(Value::Bot);
        assert!(c.apply(&I::Increment).is_err(), "⊥ is not a number");
        assert!(c.apply(&I::BufferRead).is_err());
        let mut b = CellState::buffer(2);
        assert!(b.apply(&I::Read).is_err());
        assert!(b.apply(&I::Increment).is_err());
        let mut w = word0();
        assert!(w.apply(&I::WriteMax(Value::Bot)).is_err());
    }

    #[test]
    fn multi_assign_write_dispatches_on_cell_kind() {
        let mut w = word0();
        w.multi_assign_write(Value::int(3));
        assert_eq!(w.apply(&I::Read).unwrap(), Value::int(3));
        let mut b = CellState::buffer(2);
        b.multi_assign_write(Value::int(4));
        assert_eq!(
            b.apply(&I::BufferRead).unwrap(),
            Value::seq([Value::Bot, Value::int(4)])
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_buffer_rejected() {
        let _ = CellState::buffer(0);
    }
}
