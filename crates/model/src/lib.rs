//! The shared-memory model of the space-hierarchy paper, made executable.
//!
//! Section 2 of *"A Complexity-Based Hierarchy for Multiprocessor
//! Synchronization"* (PODC 2016) defines an asynchronous system of `n ≥ 2`
//! processes applying deterministic synchronization **instructions** to a set of
//! identical **memory locations**, where every location supports the *same* set
//! of instructions (the *uniformity requirement*). Each step is one atomic
//! instruction on one location, chosen by an adversarial scheduler.
//!
//! This crate is that model:
//!
//! - [`Value`] — what a memory word holds (unbounded integers, `⊥`, sequences);
//! - [`Instruction`] / [`Op`] — every instruction the paper uses, plus atomic
//!   multi-location assignment (Section 7);
//! - [`InstructionSet`] — the uniform instruction sets of Table 1, enforced by
//!   the memory;
//! - [`CellState`] / [`Memory`] — per-location semantics (plain words,
//!   `ℓ`-buffers, max-register ordering);
//! - [`Process`] / [`Protocol`] — deterministic processes as cloneable state
//!   machines, so schedulers, adversaries and model checkers can replay and
//!   branch configurations;
//! - [`fingerprint_of`] / [`Fp128Hasher`] — stable 128-bit fingerprints of
//!   values, cells, memories and process states, the currency of the
//!   state-space engine's seen-sets;
//! - [`Schedule`] — pid sequences with a stable wire format, so
//!   counterexamples and shrunken fuzzer reproducers replay across versions.
//!
//! # Examples
//!
//! Solve 2-process wait-free binary consensus with one location supporting
//! `{fetch-and-add(2), test-and-set()}` — the paper's introductory example:
//!
//! ```
//! use cbh_model::{Instruction, InstructionSet, Memory, MemorySpec, Op, Value};
//!
//! let spec = MemorySpec::bounded(InstructionSet::FaaTas, 1);
//! let mut mem = Memory::new(&spec);
//! // Process with input 0 performs fetch-and-add(2):
//! let r0 = mem.apply(&Op::single(0, Instruction::fetch_and_add(2))).unwrap();
//! // Process with input 1 performs test-and-set():
//! let r1 = mem.apply(&Op::single(0, Instruction::TestAndSet)).unwrap();
//! assert_eq!(r0, Value::int(0)); // even and not 0-from-TAS => decides 0
//! assert_eq!(r1, Value::int(2)); // even => decides 0: agreement
//! ```

mod cell;
mod error;
mod fingerprint;
mod instruction;
mod iset;
mod memory;
pub mod packed;
mod process;
mod schedule;
pub mod trace;
mod value;

pub use cell::CellState;
pub use error::ModelError;
pub use fingerprint::{fingerprint_of, Fp128Hasher};
pub use instruction::{Instruction, InstructionKind, Op};
pub use iset::InstructionSet;
pub use memory::{Locations, Memory, MemorySpec, MemoryUndo};
pub use packed::delta::{
    apply_delta, apply_delta_into, decode_flat, encode_delta, encode_flat, DeltaError,
};
pub use packed::frame::{
    crc32, decode_frame, decode_frame_exact, encode_frame, FrameError, FrameReader,
    StateChainDecoder, StateChainEncoder, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_PAYLOAD,
};
pub use packed::{PackedCache, PackedCtx, PackedState, PackedStepOutcome, PackedUndo};
pub use process::{Action, ConsensusInput, Process, Protocol};
pub use schedule::{Schedule, ScheduleParseError};
pub use trace::{CompactTrace, OpKind, TraceError, TraceFrame, TRACE_MAGIC, TRACE_VERSION};
pub use value::Value;

/// Result alias for fallible model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
