//! The contents of a memory word.

use cbh_bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;

/// A value stored in (or returned from) a memory location.
///
/// The paper's locations hold unbounded integers, but two constructions need
/// more structure and the model gives it to them directly:
///
/// - `⊥` ([`Value::Bot`]) — the initial contents of an `ℓ`-buffer and the
///   padding returned by `ℓ-buffer-read` before `ℓ` writes have happened
///   (Section 6);
/// - sequences ([`Value::Seq`]) — the vector returned by `ℓ-buffer-read`, the
///   `(history, value)` pairs written by the history-object simulation
///   (Lemma 6.1), and the lap vectors of the swap protocol (Algorithm 1).
///
/// The derived [`Ord`] is total: `⊥ <` integers `<` sequences, integers by
/// numeric order, sequences lexicographically. Only the *max-register*
/// instructions depend on an order, and they restrict themselves to integers;
/// the total order exists so values can live in ordered containers.
///
/// # Examples
///
/// ```
/// use cbh_model::Value;
///
/// let v = Value::seq([Value::int(3), Value::Bot]);
/// assert_eq!(v.to_string(), "(3, ⊥)");
/// assert!(Value::Bot < Value::int(-100));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Value {
    /// The distinguished "no value" symbol `⊥`.
    #[default]
    Bot,
    /// An unbounded integer.
    Int(BigInt),
    /// An ordered sequence of values.
    Seq(Vec<Value>),
}

impl Value {
    /// Builds an integer value from any machine integer.
    ///
    /// ```
    /// use cbh_model::Value;
    /// assert_eq!(Value::int(-3).to_string(), "-3");
    /// ```
    pub fn int(v: impl Into<BigInt>) -> Self {
        Value::Int(v.into())
    }

    /// Builds a sequence value.
    pub fn seq(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Seq(items.into_iter().collect())
    }

    /// A two-element sequence, used for `(history, value)` pairs.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Seq(vec![a, b])
    }

    /// Returns `true` for `⊥`.
    pub fn is_bot(&self) -> bool {
        matches!(self, Value::Bot)
    }

    /// The integer contents, if this is an integer.
    pub fn as_int(&self) -> Option<&BigInt> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The sequence contents, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The integer as `u64`, if this is a small nonnegative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|v| v.to_u64())
    }

    /// The integer as `i64`, if this is a small integer.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_int().and_then(|v| v.to_i64())
    }

    /// Conventional zero word: the integer `0`.
    pub fn zero() -> Self {
        Value::Int(BigInt::zero())
    }

    /// Conventional unit word: the integer `1`.
    pub fn one() -> Self {
        Value::Int(BigInt::one())
    }

    /// Estimated heap-resident footprint of this value in bytes, including
    /// the inline enum itself. Used by the memory-budget accounting; an
    /// estimate (out-of-line `BigInt` limbs are charged a flat 32 bytes),
    /// not an allocator-exact measurement.
    pub fn resident_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Bot => inline,
            Value::Int(i) => inline + if i.is_inline() { 0 } else { 32 },
            Value::Seq(items) => {
                inline + items.iter().map(Value::resident_bytes).sum::<usize>()
            }
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Bot => 0,
            Value::Int(_) => 1,
            Value::Seq(_) => 2,
        }
    }
}


impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<BigInt> for Value {
    fn from(v: BigInt) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::int(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::int(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bot => write!(f, "⊥"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Seq(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_dispatch_on_variant() {
        assert!(Value::Bot.is_bot());
        assert_eq!(Value::int(7).as_u64(), Some(7));
        assert_eq!(Value::int(-7).as_i64(), Some(-7));
        assert_eq!(Value::int(-7).as_u64(), None);
        assert_eq!(Value::Bot.as_int(), None);
        assert_eq!(
            Value::seq([Value::Bot, Value::int(1)]).as_seq().map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn total_order_ranks_variants() {
        let bot = Value::Bot;
        let small = Value::int(-1000);
        let seq = Value::seq([]);
        assert!(bot < small && small < seq);
        assert!(Value::int(2) < Value::int(10));
        assert!(Value::seq([Value::int(1)]) < Value::seq([Value::int(1), Value::Bot]));
        assert!(Value::seq([Value::int(1)]) < Value::seq([Value::int(2)]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bot.to_string(), "⊥");
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(
            Value::pair(Value::Bot, Value::int(1)).to_string(),
            "(⊥, 1)"
        );
        assert_eq!(Value::seq([]).to_string(), "()");
    }

    #[test]
    fn default_is_bot() {
        assert_eq!(Value::default(), Value::Bot);
    }
}
