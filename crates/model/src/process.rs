//! Processes and protocols as deterministic, cloneable state machines.

use crate::{MemorySpec, Op};
use std::fmt::Debug;
use std::hash::Hash;

/// What a process will do when next allocated a step.
///
/// In every reachable configuration each undecided process is *poised* to
/// perform one specific instruction on one specific location (Section 2); a
/// decided process takes no further steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Poised to perform this atomic step.
    Invoke(Op),
    /// Decided: outputs this consensus value and halts.
    Decide(u64),
}

impl Action {
    /// The pending operation, if the process has not decided.
    pub fn op(&self) -> Option<&Op> {
        match self {
            Action::Invoke(op) => Some(op),
            Action::Decide(_) => None,
        }
    }

    /// The decision, if the process has decided.
    pub fn decision(&self) -> Option<u64> {
        match self {
            Action::Invoke(_) => None,
            Action::Decide(v) => Some(*v),
        }
    }
}

/// A deterministic process: a state machine over atomic memory steps.
///
/// The contract mirrors the paper's model exactly:
///
/// 1. [`Process::action`] reports what the process is poised to do. It must be
///    a pure function of the process state.
/// 2. If the action is [`Action::Invoke`], the scheduler may execute it and
///    feed the instruction's result to [`Process::absorb`], after which the
///    process may do *unbounded local computation* to choose its next action.
/// 3. If the action is [`Action::Decide`], the process never moves again.
///
/// Implementations must be [`Clone`] + [`Eq`] + [`Hash`] so configurations can
/// be branched (the adversaries of the lower-bound proofs literally clone a
/// configuration and run the two futures the proof compares) and memoised by
/// the bounded model checker.
pub trait Process: Clone + Debug + Eq + Hash {
    /// What this process is poised to do.
    fn action(&self) -> Action;

    /// Absorbs the result of the op this process was poised to perform.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called while [`Process::action`] is
    /// [`Action::Decide`] — the scheduler must never step a decided process.
    fn absorb(&mut self, result: crate::Value);

    /// Estimated heap bytes owned by this state beyond
    /// `size_of::<Self>()`, charged by memory-budgeted explorers when the
    /// state is interned or cached. The default of `0` is exact for the
    /// plain-old-data states of every Table 1 protocol; implementations
    /// whose states own growing allocations (a `Vec` history, say) should
    /// override it — and should derive the figure from *lengths*, not
    /// capacities, so it is a deterministic function of the semantic state.
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Inputs to a consensus instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConsensusInput {
    /// Process identifier in `0..n`.
    pub pid: usize,
    /// This process's proposal in `0..m`.
    pub input: u64,
}

/// A consensus protocol: a recipe for memory plus one process per participant.
///
/// `m`-valued consensus among `n` processes (Section 2): every process starts
/// with an input in `0..m`, decisions must be the input of some process
/// (validity) and all equal (agreement), and every process must decide in a
/// solo execution from any reachable configuration (obstruction-freedom).
pub trait Protocol {
    /// The process state machine this protocol runs.
    type Proc: Process;

    /// Human-readable protocol name (used by the Table 1 harness).
    fn name(&self) -> String;

    /// Number of participating processes `n ≥ 2`.
    fn n(&self) -> usize;

    /// Size of the input domain `m` (`m = n` for `n`-consensus, 2 for binary).
    fn domain(&self) -> u64;

    /// The memory this protocol runs on.
    fn memory_spec(&self) -> MemorySpec;

    /// Creates the initial state of process `pid` with proposal `input`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `pid ≥ n` or `input ≥ domain`.
    fn spawn(&self, pid: usize, input: u64) -> Self::Proc;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, Value};

    #[test]
    fn action_accessors() {
        let inv = Action::Invoke(Op::single(0, Instruction::Read));
        assert!(inv.op().is_some());
        assert_eq!(inv.decision(), None);
        let dec = Action::Decide(3);
        assert_eq!(dec.decision(), Some(3));
        assert!(dec.op().is_none());
    }

    /// A minimal process used to exercise the trait contract.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct OneShot {
        done: bool,
    }

    impl Process for OneShot {
        fn action(&self) -> Action {
            if self.done {
                Action::Decide(0)
            } else {
                Action::Invoke(Op::read(0))
            }
        }
        fn absorb(&mut self, _result: Value) {
            self.done = true;
        }
    }

    #[test]
    fn process_state_machine_roundtrip() {
        let mut p = OneShot { done: false };
        assert!(matches!(p.action(), Action::Invoke(_)));
        p.absorb(Value::zero());
        assert_eq!(p.action(), Action::Decide(0));
        let q = p.clone();
        assert_eq!(p, q);
    }
}
