//! Model-level errors.

use crate::InstructionSet;
use std::fmt;

/// An error raised by the shared-memory machine.
///
/// Protocol implementations in this repository never trigger these in correct
/// runs; they exist so the machine *enforces* the paper's model (uniformity,
/// typed words) instead of silently accepting out-of-model steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The instruction is not a member of the memory's uniform instruction set
    /// (Section 2's uniformity requirement).
    UnsupportedInstruction {
        /// The memory's instruction set.
        iset: InstructionSet,
        /// Rendered instruction that was rejected.
        instr: String,
    },
    /// An arithmetic instruction was applied to a non-integer word, or a
    /// buffer instruction to a plain word (or vice versa).
    TypeMismatch {
        /// What the instruction needed.
        expected: &'static str,
        /// Rendered actual contents.
        found: String,
    },
    /// A location index beyond a bounded memory.
    OutOfBounds {
        /// Requested location.
        loc: usize,
        /// Number of locations in the memory.
        len: usize,
    },
    /// A multiple assignment listed the same location twice.
    DuplicateMultiAssignTarget {
        /// The repeated location.
        loc: usize,
    },
    /// A simulated object entered its broken state (`⊥` forever), e.g. the
    /// bounded counter of Lemma 3.2 after an out-of-range increment.
    ObjectBroken {
        /// Which object broke.
        object: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnsupportedInstruction { iset, instr } => {
                write!(f, "instruction {instr} is not in the uniform set {iset}")
            }
            ModelError::TypeMismatch { expected, found } => {
                write!(f, "instruction expected {expected} but location holds {found}")
            }
            ModelError::OutOfBounds { loc, len } => {
                write!(f, "location {loc} out of bounds for memory of {len} locations")
            }
            ModelError::DuplicateMultiAssignTarget { loc } => {
                write!(f, "multiple assignment targets location {loc} twice")
            }
            ModelError::ObjectBroken { object } => {
                write!(f, "simulated object {object} is broken (returns ⊥)")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offender() {
        let e = ModelError::OutOfBounds { loc: 9, len: 2 };
        assert!(e.to_string().contains('9'));
        let e = ModelError::UnsupportedInstruction {
            iset: InstructionSet::Cas,
            instr: "read()".into(),
        };
        assert!(e.to_string().contains("compare-and-swap"));
    }
}
