//! Schedules as serializable values.
//!
//! A *schedule* is the adversary's complete decision record: the sequence of
//! process ids stepped, in order. The model checker reconstructs one per
//! counterexample, the conformance fuzzer shrinks them, and the scripted
//! scheduler replays them. [`Schedule`] gives that pid sequence a stable,
//! human-readable wire format — pids joined by commas (`"0,1,1,0"`), the
//! empty schedule rendering as the empty string — so a shrunken reproducer
//! saved in a test or a bug report today still parses and replays after
//! refactors.

use std::fmt;
use std::ops::Deref;
use std::str::FromStr;

/// A pid sequence: which process steps, in order.
///
/// Dereferences to `[usize]`, so all slice combinators apply.
///
/// # Examples
///
/// ```
/// use cbh_model::Schedule;
///
/// let schedule = Schedule::new([0, 1, 1, 0]);
/// let wire = schedule.to_string();
/// assert_eq!(wire, "0,1,1,0");
/// assert_eq!(wire.parse::<Schedule>().unwrap(), schedule);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Schedule(Vec<usize>);

impl Schedule {
    /// Builds a schedule from a pid sequence.
    pub fn new(pids: impl IntoIterator<Item = usize>) -> Self {
        Schedule(pids.into_iter().collect())
    }

    /// The pid sequence as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Consumes the schedule, yielding the pid sequence.
    pub fn into_vec(self) -> Vec<usize> {
        self.0
    }

    /// Appends one step.
    pub fn push(&mut self, pid: usize) {
        self.0.push(pid);
    }
}

impl Deref for Schedule {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        &self.0
    }
}

impl From<Vec<usize>> for Schedule {
    fn from(pids: Vec<usize>) -> Self {
        Schedule(pids)
    }
}

impl FromIterator<usize> for Schedule {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Schedule(iter.into_iter().collect())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, pid) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{pid}")?;
        }
        Ok(())
    }
}

/// Why a schedule string failed to parse.
///
/// Each malformation class gets its own variant, so tooling that ingests
/// wire strings (shrinkers, bug-report replayers, CI artifacts) can
/// distinguish a truncated file (`TrailingComma`), a corrupted pid
/// (`Overflow`), and plain garbage (`InvalidToken`) instead of pattern
/// matching on message text. Nothing is ever silently dropped or clamped:
/// any malformed input is an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleParseError {
    /// Two adjacent commas (or a leading comma) left a segment empty.
    EmptySegment {
        /// Zero-based index of the empty comma-separated segment.
        index: usize,
    },
    /// The string ends with a comma — the signature of a truncated write.
    TrailingComma,
    /// A segment is all digits but exceeds the pid range.
    Overflow {
        /// Zero-based index of the overflowing segment.
        index: usize,
        /// The digit run that does not fit a pid.
        token: String,
    },
    /// A segment is not a pid at all.
    InvalidToken {
        /// Zero-based index of the offending segment.
        index: usize,
        /// The trimmed segment text.
        token: String,
    },
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleParseError::EmptySegment { index } => {
                write!(f, "schedule token #{index} is empty")
            }
            ScheduleParseError::TrailingComma => {
                write!(f, "schedule ends with a trailing comma")
            }
            ScheduleParseError::Overflow { index, token } => {
                write!(f, "schedule token #{index} ({token:?}) overflows the pid range")
            }
            ScheduleParseError::InvalidToken { index, token } => {
                write!(f, "schedule token #{index} ({token:?}) is not a process id")
            }
        }
    }
}

impl std::error::Error for ScheduleParseError {}

impl FromStr for Schedule {
    type Err = ScheduleParseError;

    /// Parses the comma-separated wire format; surrounding whitespace per
    /// token is tolerated, and the empty (or all-whitespace) string is the
    /// empty schedule.
    fn from_str(s: &str) -> Result<Self, ScheduleParseError> {
        if s.trim().is_empty() {
            return Ok(Schedule::default());
        }
        let segments: Vec<&str> = s.split(',').collect();
        let mut pids = Vec::with_capacity(segments.len());
        for (index, raw) in segments.iter().enumerate() {
            let token = raw.trim();
            if token.is_empty() {
                return Err(if index == segments.len() - 1 {
                    ScheduleParseError::TrailingComma
                } else {
                    ScheduleParseError::EmptySegment { index }
                });
            }
            match token.parse::<usize>() {
                Ok(pid) => pids.push(pid),
                Err(_) => {
                    return Err(if token.bytes().all(|b| b.is_ascii_digit()) {
                        ScheduleParseError::Overflow {
                            index,
                            token: token.to_string(),
                        }
                    } else {
                        ScheduleParseError::InvalidToken {
                            index,
                            token: token.to_string(),
                        }
                    });
                }
            }
        }
        Ok(Schedule(pids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_format_round_trips() {
        for pids in [vec![], vec![0], vec![0, 1, 1, 0], vec![7, 0, 3, 3, 3]] {
            let schedule = Schedule::new(pids.clone());
            let parsed: Schedule = schedule.to_string().parse().unwrap();
            assert_eq!(parsed, schedule);
            assert_eq!(parsed.as_slice(), pids.as_slice());
        }
    }

    #[test]
    fn empty_and_whitespace_parse_to_the_empty_schedule() {
        assert!("".parse::<Schedule>().unwrap().is_empty());
        assert!("  ".parse::<Schedule>().unwrap().is_empty());
        assert_eq!(Schedule::default().to_string(), "");
    }

    #[test]
    fn whitespace_around_tokens_is_tolerated() {
        let parsed: Schedule = " 0, 1 ,2 ".parse().unwrap();
        assert_eq!(parsed.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn bad_tokens_are_reported_with_position_and_kind() {
        let err = "0,x,2".parse::<Schedule>().unwrap_err();
        assert_eq!(
            err,
            ScheduleParseError::InvalidToken {
                index: 1,
                token: "x".into()
            }
        );
        assert!(err.to_string().contains("token #1"));
        assert_eq!(
            "0,,1".parse::<Schedule>().unwrap_err(),
            ScheduleParseError::EmptySegment { index: 1 }
        );
        assert_eq!(
            ",0".parse::<Schedule>().unwrap_err(),
            ScheduleParseError::EmptySegment { index: 0 }
        );
        assert!("0;1".parse::<Schedule>().is_err());
    }

    #[test]
    fn trailing_commas_and_overflow_have_typed_errors() {
        assert_eq!(
            "0,1,".parse::<Schedule>().unwrap_err(),
            ScheduleParseError::TrailingComma
        );
        // A lone comma is an empty *first* segment — the leading hole is
        // reported before the trailing one.
        assert_eq!(
            ",".parse::<Schedule>().unwrap_err(),
            ScheduleParseError::EmptySegment { index: 0 }
        );
        // One digit past usize::MAX must not silently truncate or wrap.
        let over = format!("0,{}9", usize::MAX);
        assert_eq!(
            over.parse::<Schedule>().unwrap_err(),
            ScheduleParseError::Overflow {
                index: 1,
                token: format!("{}9", usize::MAX)
            }
        );
        // The largest pid still parses.
        let max = format!("{}", usize::MAX);
        assert_eq!(
            max.parse::<Schedule>().unwrap().as_slice(),
            &[usize::MAX]
        );
    }

    #[test]
    fn slice_api_is_available_through_deref() {
        let mut schedule = Schedule::from(vec![2, 0]);
        schedule.push(1);
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.iter().copied().max(), Some(2));
        assert_eq!(schedule.clone().into_vec(), vec![2, 0, 1]);
        let collected: Schedule = schedule.iter().copied().collect();
        assert_eq!(collected, schedule);
    }
}
