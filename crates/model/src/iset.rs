//! Uniform instruction sets (the rows of Table 1 plus the intro examples).

use crate::{Instruction, ModelError};
use cbh_bigint::BigInt;
use std::fmt;

/// A uniform set of instructions supported by *every* memory location.
///
/// The paper's *uniformity requirement* (Section 2) says all locations support
/// the same instruction set; [`crate::Memory`] enforces it by rejecting any
/// instruction the set does not contain. Each variant corresponds to a row of
/// Table 1 (several single-location rows share a variant each) or to one of the
/// introduction's combination examples.
///
/// # Examples
///
/// ```
/// use cbh_model::{Instruction, InstructionSet};
///
/// let iset = InstructionSet::ReadWrite1;
/// assert!(iset.supports(&Instruction::Read));
/// assert!(iset.supports(&Instruction::write(1)));
/// assert!(!iset.supports(&Instruction::write(0)), "only write(1) is allowed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionSet {
    /// `{read(), test-and-set()}` — Table 1 row 1a (`SP = ∞` for `n ≥ 3`).
    ReadTas,
    /// `{read(), write(1)}` — Table 1 row 1b (`SP = ∞` for `n ≥ 3`).
    ReadWrite1,
    /// `{read(), write(1), write(0)}` — row 2 (`n` lower, `O(n log n)` upper).
    ReadWrite01,
    /// `{read(), write(x)}` — row 3 (`SP = n`, registers).
    ReadWrite,
    /// `{read(), test-and-set(), reset()}` — row 4 (`Ω(√n)`, `O(n log n)`).
    ReadTasReset,
    /// `{read(), swap(x)}` — row 5 (`Ω(√n)` lower, `n−1` upper).
    ReadSwap,
    /// `{ℓ-buffer-read(), ℓ-buffer-write(x)}` = `B_ℓ` — row 6
    /// (`⌈(n−1)/ℓ⌉` lower, `⌈n/ℓ⌉` upper). The payload is `ℓ ≥ 1`.
    Buffer(usize),
    /// `{read(), write(x), increment()}` — row 7a (2 lower, `O(log n)` upper).
    ReadWriteIncrement,
    /// `{read(), write(x), fetch-and-increment()}` — row 7b.
    ReadWriteFetchIncrement,
    /// `{read-max(), write-max(x)}` — row 8 (`SP = 2`).
    MaxRegister,
    /// `{compare-and-swap(x, y)}` — row 9 (`SP = 1`).
    Cas,
    /// `{read(), set-bit(x)}` — row 9 (`SP = 1`).
    ReadSetBit,
    /// `{read(), add(x)}` — row 9 (`SP = 1`).
    ReadAdd,
    /// `{read(), multiply(x)}` — row 9 (`SP = 1`).
    ReadMultiply,
    /// `{fetch-and-add(x)}` — row 9 (`SP = 1`).
    FetchAndAdd,
    /// `{fetch-and-multiply(x)}` — row 9 (`SP = 1`).
    FetchAndMultiply,
    /// `{fetch-and-add(2), test-and-set()}` — introduction example 1
    /// (wait-free binary consensus for any `n` with one location).
    FaaTas,
    /// `{read(), decrement(), multiply(x)}` — introduction example 2.
    ReadDecMul,
}

impl InstructionSet {
    /// All instruction sets, in Table 1 order followed by the intro examples.
    pub const ALL: [InstructionSet; 18] = [
        InstructionSet::ReadTas,
        InstructionSet::ReadWrite1,
        InstructionSet::ReadWrite01,
        InstructionSet::ReadWrite,
        InstructionSet::ReadTasReset,
        InstructionSet::ReadSwap,
        InstructionSet::Buffer(2),
        InstructionSet::ReadWriteIncrement,
        InstructionSet::ReadWriteFetchIncrement,
        InstructionSet::MaxRegister,
        InstructionSet::Cas,
        InstructionSet::ReadSetBit,
        InstructionSet::ReadAdd,
        InstructionSet::ReadMultiply,
        InstructionSet::FetchAndAdd,
        InstructionSet::FetchAndMultiply,
        InstructionSet::FaaTas,
        InstructionSet::ReadDecMul,
    ];

    /// Returns `true` if `instr` belongs to this uniform set.
    pub fn supports(&self, instr: &Instruction) -> bool {
        use Instruction as I;
        match self {
            InstructionSet::ReadTas => matches!(instr, I::Read | I::TestAndSet),
            InstructionSet::ReadWrite1 => match instr {
                I::Read => true,
                I::Write(v) => v.as_u64() == Some(1),
                _ => false,
            },
            InstructionSet::ReadWrite01 => match instr {
                I::Read => true,
                I::Write(v) => matches!(v.as_u64(), Some(0) | Some(1)),
                _ => false,
            },
            InstructionSet::ReadWrite => matches!(instr, I::Read | I::Write(_)),
            InstructionSet::ReadTasReset => {
                matches!(instr, I::Read | I::TestAndSet | I::Reset)
            }
            InstructionSet::ReadSwap => matches!(instr, I::Read | I::Swap(_)),
            InstructionSet::Buffer(_) => matches!(instr, I::BufferRead | I::BufferWrite(_)),
            InstructionSet::ReadWriteIncrement => {
                matches!(instr, I::Read | I::Write(_) | I::Increment)
            }
            InstructionSet::ReadWriteFetchIncrement => {
                matches!(instr, I::Read | I::Write(_) | I::FetchAndIncrement)
            }
            InstructionSet::MaxRegister => matches!(instr, I::ReadMax | I::WriteMax(_)),
            InstructionSet::Cas => matches!(instr, I::CompareAndSwap { .. }),
            InstructionSet::ReadSetBit => matches!(instr, I::Read | I::SetBit(_)),
            InstructionSet::ReadAdd => matches!(instr, I::Read | I::Add(_)),
            InstructionSet::ReadMultiply => matches!(instr, I::Read | I::Multiply(_)),
            InstructionSet::FetchAndAdd => matches!(instr, I::FetchAndAdd(_)),
            InstructionSet::FetchAndMultiply => matches!(instr, I::FetchAndMultiply(_)),
            InstructionSet::FaaTas => match instr {
                I::TestAndSet => true,
                I::FetchAndAdd(x) => *x == BigInt::from(2u64),
                _ => false,
            },
            InstructionSet::ReadDecMul => {
                matches!(instr, I::Read | I::Decrement | I::Multiply(_))
            }
        }
    }

    /// Checks membership and produces a uniformity-violation error otherwise.
    pub fn check(&self, instr: &Instruction) -> Result<(), ModelError> {
        if self.supports(instr) {
            Ok(())
        } else {
            Err(ModelError::UnsupportedInstruction {
                iset: *self,
                instr: instr.to_string(),
            })
        }
    }

    /// The buffer capacity `ℓ` if this is a buffer set, else `None`.
    pub fn buffer_capacity(&self) -> Option<usize> {
        match self {
            InstructionSet::Buffer(l) => Some(*l),
            _ => None,
        }
    }

    /// Returns `true` if the set contains plain `read()` and `write(x)` for
    /// every `x` — the precondition of the bit-by-bit construction (Lemma 5.2).
    pub fn has_read_write(&self) -> bool {
        self.supports(&Instruction::Read)
            && self.supports(&Instruction::Write(crate::Value::int(2)))
    }
}

impl fmt::Display for InstructionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionSet::ReadTas => "{read, test-and-set}",
            InstructionSet::ReadWrite1 => "{read, write(1)}",
            InstructionSet::ReadWrite01 => "{read, write(1), write(0)}",
            InstructionSet::ReadWrite => "{read, write(x)}",
            InstructionSet::ReadTasReset => "{read, test-and-set, reset}",
            InstructionSet::ReadSwap => "{read, swap(x)}",
            InstructionSet::Buffer(l) => return write!(f, "{{{l}-buffer-read, {l}-buffer-write(x)}}"),
            InstructionSet::ReadWriteIncrement => "{read, write(x), increment}",
            InstructionSet::ReadWriteFetchIncrement => "{read, write(x), fetch-and-increment}",
            InstructionSet::MaxRegister => "{read-max, write-max(x)}",
            InstructionSet::Cas => "{compare-and-swap(x,y)}",
            InstructionSet::ReadSetBit => "{read, set-bit(x)}",
            InstructionSet::ReadAdd => "{read, add(x)}",
            InstructionSet::ReadMultiply => "{read, multiply(x)}",
            InstructionSet::FetchAndAdd => "{fetch-and-add(x)}",
            InstructionSet::FetchAndMultiply => "{fetch-and-multiply(x)}",
            InstructionSet::FaaTas => "{fetch-and-add(2), test-and-set}",
            InstructionSet::ReadDecMul => "{read, decrement, multiply(x)}",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn write1_rejects_other_values() {
        let s = InstructionSet::ReadWrite1;
        assert!(s.supports(&Instruction::write(1)));
        assert!(!s.supports(&Instruction::write(0)));
        assert!(!s.supports(&Instruction::write(7)));
        assert!(!s.supports(&Instruction::Write(Value::Bot)));
    }

    #[test]
    fn write01_allows_both_bits_only() {
        let s = InstructionSet::ReadWrite01;
        assert!(s.supports(&Instruction::write(0)));
        assert!(s.supports(&Instruction::write(1)));
        assert!(!s.supports(&Instruction::write(2)));
    }

    #[test]
    fn faatas_pins_the_addend() {
        let s = InstructionSet::FaaTas;
        assert!(s.supports(&Instruction::fetch_and_add(2)));
        assert!(!s.supports(&Instruction::fetch_and_add(1)));
        assert!(s.supports(&Instruction::TestAndSet));
        assert!(!s.supports(&Instruction::Read));
    }

    #[test]
    fn buffers_support_only_buffer_ops() {
        let s = InstructionSet::Buffer(3);
        assert!(s.supports(&Instruction::BufferRead));
        assert!(s.supports(&Instruction::BufferWrite(Value::int(5))));
        assert!(!s.supports(&Instruction::Read));
        assert_eq!(s.buffer_capacity(), Some(3));
        assert_eq!(InstructionSet::ReadWrite.buffer_capacity(), None);
    }

    #[test]
    fn check_reports_uniformity_violation() {
        let err = InstructionSet::MaxRegister
            .check(&Instruction::Read)
            .unwrap_err();
        assert!(err.to_string().contains("read()"));
    }

    #[test]
    fn has_read_write_identifies_lemma_5_2_preconditions() {
        assert!(InstructionSet::ReadWrite.has_read_write());
        assert!(InstructionSet::ReadWriteIncrement.has_read_write());
        assert!(InstructionSet::ReadWriteFetchIncrement.has_read_write());
        assert!(!InstructionSet::ReadWrite01.has_read_write());
        assert!(!InstructionSet::MaxRegister.has_read_write());
    }

    #[test]
    fn every_set_displays_with_braces() {
        for s in InstructionSet::ALL {
            let d = s.to_string();
            assert!(d.starts_with('{') && d.ends_with('}'), "{d}");
        }
    }
}
