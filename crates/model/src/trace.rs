//! Compact execution traces captured from physically-scheduled runs.
//!
//! The real-thread backend (`cbh-sync`) observes a *physical* schedule: which
//! thread's instruction entered which cell's critical section, in what global
//! order. [`CompactTrace`] is the model-side value of that observation — a
//! merged sequence of fixed-stride frames, one per applied instruction — with
//! a binary wire format in the style of the workspace's other codecs (header
//! magic + version, little-endian `u32` words, total decode with typed
//! errors; compare [`crate::packed::frame`] and
//! [`ScheduleParseError`](crate::ScheduleParseError)).
//!
//! The load-bearing property is *linearizability of the merged order*: each
//! frame's sequence number is drawn from one global atomic counter **inside
//! the critical section of the cell(s) the instruction targets**, so for any
//! two instructions touching a common location, sequence order equals
//! application order, and instructions on disjoint locations commute. The
//! merged order is therefore a legal sequential execution of the run, and
//! [`CompactTrace::schedule`] lowers it to the existing [`Schedule`] wire
//! format so `cbh_sim::replay_schedule` re-executes it deterministically —
//! the replay must reproduce the threaded run's decisions, step count and
//! locations touched bit for bit.
//!
//! # Wire format
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "CBHT" (little-endian u32)
//! 4       4     version (currently 1)
//! 8       4     n       (process count)
//! 12      4     frames  (frame count)
//! 16      20×k  frames: k × { seq, pid, kind, loc, step } as u32 LE
//! ```
//!
//! Frames are stored in merged (sequence) order, so a valid body has
//! `seq == index` for every frame — the redundancy makes truncation and
//! splicing detectable. `kind` is 0 for a single instruction, 1 for an
//! atomic multiple assignment. `step` is the per-process step index
//! (0, 1, 2, … for each pid independently), which pins program order.

use crate::Schedule;
use std::fmt;

/// Wire magic: `"CBHT"` as a little-endian `u32`.
pub const TRACE_MAGIC: u32 = u32::from_le_bytes(*b"CBHT");

/// Current wire version.
pub const TRACE_VERSION: u32 = 1;

/// Words per frame on the wire (`seq, pid, kind, loc, step`).
pub const TRACE_FRAME_WORDS: usize = 5;

const HEADER_BYTES: usize = 16;
const FRAME_BYTES: usize = TRACE_FRAME_WORDS * 4;

/// What kind of atomic step a frame records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// One instruction on one location.
    Single,
    /// An atomic multiple assignment ([`crate::Op::MultiAssign`]); the
    /// frame's `loc` is the first declared target (0 when empty).
    MultiAssign,
}

impl OpKind {
    fn to_wire(self) -> u32 {
        match self {
            OpKind::Single => 0,
            OpKind::MultiAssign => 1,
        }
    }

    fn from_wire(raw: u32) -> Option<Self> {
        match raw {
            0 => Some(OpKind::Single),
            1 => Some(OpKind::MultiAssign),
            _ => None,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Single => write!(f, "single"),
            OpKind::MultiAssign => write!(f, "multi-assign"),
        }
    }
}

/// One applied instruction, as observed by the capture layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceFrame {
    /// Global merge position: drawn inside the instruction's critical
    /// section, so per-location sequence order is application order.
    pub seq: u32,
    /// The process that applied the instruction.
    pub pid: u32,
    /// Single instruction or multiple assignment.
    pub kind: OpKind,
    /// The targeted location (first declared target for a multi-assign).
    pub loc: u32,
    /// This process's step index (its `step`-th applied instruction).
    pub step: u32,
}

/// Why a byte string is not a valid trace.
///
/// Decoding is *total*: every malformed input maps to one of these variants,
/// never a panic — corrupt or truncated capture files are data, not bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Fewer bytes than the fixed header (or than the declared body needs).
    Truncated {
        /// Bytes a well-formed input of this shape requires.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first word is not [`TRACE_MAGIC`].
    BadMagic {
        /// The word found instead.
        found: u32,
    },
    /// A version this decoder does not speak.
    UnsupportedVersion {
        /// The version word found.
        found: u32,
    },
    /// Bytes past the declared frame count — the signature of a splice.
    TrailingBytes {
        /// How many bytes are left over.
        extra: usize,
    },
    /// A frame's kind word is neither single nor multi-assign.
    BadKind {
        /// Frame index.
        at: usize,
        /// The offending kind word.
        kind: u32,
    },
    /// A frame names a process outside `0..n`.
    PidOutOfRange {
        /// Frame index.
        at: usize,
        /// The offending pid.
        pid: u32,
        /// The trace's process count.
        n: u32,
    },
    /// A frame's sequence number is not its merge position: the body was
    /// reordered, truncated mid-merge, or spliced.
    NonContiguousSeq {
        /// Frame index.
        at: usize,
        /// The sequence number found (a valid body has `seq == at`).
        seq: u32,
    },
    /// A frame's per-process step index breaks that process's program order
    /// (each pid's steps must read 0, 1, 2, … in merge order).
    StepMismatch {
        /// Frame index.
        at: usize,
        /// The process whose program order broke.
        pid: u32,
        /// The step index program order requires here.
        expected: u32,
        /// The step index found.
        found: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated { needed, have } => {
                write!(f, "trace truncated: {have} bytes, need {needed}")
            }
            TraceError::BadMagic { found } => {
                write!(f, "not a trace: magic {found:#010x} != {TRACE_MAGIC:#010x}")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found} (speak {TRACE_VERSION})")
            }
            TraceError::TrailingBytes { extra } => {
                write!(f, "{extra} bytes past the declared frame count")
            }
            TraceError::BadKind { at, kind } => {
                write!(f, "frame {at}: unknown op kind {kind}")
            }
            TraceError::PidOutOfRange { at, pid, n } => {
                write!(f, "frame {at}: pid {pid} out of range for n={n}")
            }
            TraceError::NonContiguousSeq { at, seq } => {
                write!(f, "frame {at}: sequence number {seq} breaks merge order")
            }
            TraceError::StepMismatch {
                at,
                pid,
                expected,
                found,
            } => write!(
                f,
                "frame {at}: pid {pid} step {found} breaks program order (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A merged, validated capture of one physically-scheduled run.
///
/// Construction ([`CompactTrace::from_frames`], [`CompactTrace::from_bytes`])
/// enforces the invariants replay relies on: frames in gapless sequence
/// order, every pid in range, every process's step indices contiguous from
/// zero. A value of this type therefore always lowers to a replayable
/// [`Schedule`].
///
/// # Examples
///
/// ```
/// use cbh_model::trace::{CompactTrace, OpKind, TraceFrame};
///
/// let frames = vec![
///     TraceFrame { seq: 0, pid: 1, kind: OpKind::Single, loc: 0, step: 0 },
///     TraceFrame { seq: 1, pid: 0, kind: OpKind::Single, loc: 0, step: 0 },
///     TraceFrame { seq: 2, pid: 1, kind: OpKind::Single, loc: 2, step: 1 },
/// ];
/// let trace = CompactTrace::from_frames(2, frames).unwrap();
/// assert_eq!(trace.schedule().as_slice(), &[1, 0, 1]);
/// let decoded = CompactTrace::from_bytes(&trace.to_bytes()).unwrap();
/// assert_eq!(decoded, trace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompactTrace {
    n: u32,
    frames: Vec<TraceFrame>,
}

impl CompactTrace {
    /// Validates `frames` (already in merge order) as a trace of an
    /// `n`-process run.
    ///
    /// # Errors
    ///
    /// [`TraceError::NonContiguousSeq`], [`TraceError::PidOutOfRange`] or
    /// [`TraceError::StepMismatch`] when the frames are not a gapless,
    /// program-order-respecting merge.
    pub fn from_frames(n: usize, frames: Vec<TraceFrame>) -> Result<Self, TraceError> {
        let n = u32::try_from(n).map_err(|_| TraceError::PidOutOfRange {
            at: 0,
            pid: u32::MAX,
            n: u32::MAX,
        })?;
        let mut per_pid_steps = vec![0u32; n as usize];
        for (at, frame) in frames.iter().enumerate() {
            if frame.seq as usize != at {
                return Err(TraceError::NonContiguousSeq { at, seq: frame.seq });
            }
            if frame.pid >= n {
                return Err(TraceError::PidOutOfRange {
                    at,
                    pid: frame.pid,
                    n,
                });
            }
            let expected = per_pid_steps[frame.pid as usize];
            if frame.step != expected {
                return Err(TraceError::StepMismatch {
                    at,
                    pid: frame.pid,
                    expected,
                    found: frame.step,
                });
            }
            per_pid_steps[frame.pid as usize] += 1;
        }
        Ok(CompactTrace { n, frames })
    }

    /// The process count of the captured run.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// The frames, in merge (sequence) order.
    pub fn frames(&self) -> &[TraceFrame] {
        &self.frames
    }

    /// Number of applied instructions in the capture.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the run applied no instructions.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Lowers the merged order to the existing [`Schedule`] wire format: the
    /// pid sequence, one entry per applied instruction. Replaying it through
    /// `cbh_sim::replay_schedule` re-executes the captured linearization.
    pub fn schedule(&self) -> Schedule {
        Schedule::new(self.frames.iter().map(|f| f.pid as usize))
    }

    /// Encodes the trace in the wire format described at the module level.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.frames.len() * FRAME_BYTES);
        for word in [
            TRACE_MAGIC,
            TRACE_VERSION,
            self.n,
            self.frames.len() as u32,
        ] {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for frame in &self.frames {
            for word in [
                frame.seq,
                frame.pid,
                frame.kind.to_wire(),
                frame.loc,
                frame.step,
            ] {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out
    }

    /// Decodes and validates a wire-format trace.
    ///
    /// Total: every malformed input yields a typed [`TraceError`]. The
    /// declared frame count is checked against the actual byte length
    /// *before* any allocation, so a corrupted count cannot balloon memory.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] variant; see each for the malformation it names.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let word = |at: usize| -> u32 {
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
        };
        if bytes.len() < HEADER_BYTES {
            return Err(TraceError::Truncated {
                needed: HEADER_BYTES,
                have: bytes.len(),
            });
        }
        if word(0) != TRACE_MAGIC {
            return Err(TraceError::BadMagic { found: word(0) });
        }
        if word(4) != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion { found: word(4) });
        }
        let n = word(8);
        let count = word(12) as usize;
        let needed = HEADER_BYTES + count.saturating_mul(FRAME_BYTES);
        match bytes.len() {
            have if have < needed => return Err(TraceError::Truncated { needed, have }),
            have if have > needed => {
                return Err(TraceError::TrailingBytes {
                    extra: bytes.len() - needed,
                })
            }
            _ => {}
        }
        let mut frames = Vec::with_capacity(count);
        for at in 0..count {
            let base = HEADER_BYTES + at * FRAME_BYTES;
            let raw_kind = word(base + 8);
            let kind = OpKind::from_wire(raw_kind)
                .ok_or(TraceError::BadKind { at, kind: raw_kind })?;
            frames.push(TraceFrame {
                seq: word(base),
                pid: word(base + 4),
                kind,
                loc: word(base + 12),
                step: word(base + 16),
            });
        }
        CompactTrace::from_frames(n as usize, frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompactTrace {
        let frames = vec![
            TraceFrame {
                seq: 0,
                pid: 0,
                kind: OpKind::Single,
                loc: 0,
                step: 0,
            },
            TraceFrame {
                seq: 1,
                pid: 2,
                kind: OpKind::MultiAssign,
                loc: 1,
                step: 0,
            },
            TraceFrame {
                seq: 2,
                pid: 0,
                kind: OpKind::Single,
                loc: 3,
                step: 1,
            },
        ];
        CompactTrace::from_frames(3, frames).unwrap()
    }

    #[test]
    fn wire_format_round_trips() {
        for trace in [sample(), CompactTrace::from_frames(2, Vec::new()).unwrap()] {
            let bytes = trace.to_bytes();
            assert_eq!(CompactTrace::from_bytes(&bytes).unwrap(), trace);
        }
    }

    #[test]
    fn schedule_lowering_is_the_pid_sequence() {
        assert_eq!(sample().schedule().as_slice(), &[0, 2, 0]);
        assert!(CompactTrace::from_frames(1, Vec::new())
            .unwrap()
            .schedule()
            .is_empty());
    }

    #[test]
    fn every_header_malformation_is_typed() {
        let good = sample().to_bytes();
        assert_eq!(
            CompactTrace::from_bytes(&good[..7]),
            Err(TraceError::Truncated { needed: 16, have: 7 })
        );
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            CompactTrace::from_bytes(&bad),
            Err(TraceError::BadMagic { .. })
        ));
        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(
            CompactTrace::from_bytes(&bad),
            Err(TraceError::UnsupportedVersion { found: 9 })
        );
        // Body truncated mid-frame / extra bytes appended.
        assert!(matches!(
            CompactTrace::from_bytes(&good[..good.len() - 3]),
            Err(TraceError::Truncated { .. })
        ));
        let mut long = good.clone();
        long.push(0);
        assert_eq!(
            CompactTrace::from_bytes(&long),
            Err(TraceError::TrailingBytes { extra: 1 })
        );
        // A huge declared count on a short body reports Truncated without
        // allocating for the phantom frames.
        let mut bloated = good.clone();
        bloated[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            CompactTrace::from_bytes(&bloated),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn body_invariants_are_enforced() {
        let frame = |seq, pid, step| TraceFrame {
            seq,
            pid,
            kind: OpKind::Single,
            loc: 0,
            step,
        };
        assert_eq!(
            CompactTrace::from_frames(2, vec![frame(1, 0, 0)]),
            Err(TraceError::NonContiguousSeq { at: 0, seq: 1 })
        );
        assert_eq!(
            CompactTrace::from_frames(2, vec![frame(0, 2, 0)]),
            Err(TraceError::PidOutOfRange { at: 0, pid: 2, n: 2 })
        );
        assert_eq!(
            CompactTrace::from_frames(2, vec![frame(0, 1, 0), frame(1, 1, 2)]),
            Err(TraceError::StepMismatch {
                at: 1,
                pid: 1,
                expected: 1,
                found: 2
            })
        );
        // The same malformations are caught on the byte path too.
        let tampered = {
            let mut bytes = sample().to_bytes();
            // Second frame's kind word → garbage.
            bytes[16 + FRAME_BYTES + 8] = 7;
            bytes
        };
        assert_eq!(
            CompactTrace::from_bytes(&tampered),
            Err(TraceError::BadKind { at: 1, kind: 7 })
        );
    }

    #[test]
    fn errors_render_their_context() {
        let err = TraceError::StepMismatch {
            at: 4,
            pid: 1,
            expected: 2,
            found: 5,
        };
        let text = err.to_string();
        assert!(text.contains("frame 4") && text.contains("pid 1"), "{text}");
    }
}
