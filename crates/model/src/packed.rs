//! Packed configurations: the flat, cache-friendly execution core.
//!
//! A [`crate::Memory`]-plus-processes configuration is a tree of heap values
//! (`Vec<P>`, per-cell `BigInt`s and `VecDeque`s), so branching an execution
//! costs a deep clone and hashing a configuration walks the whole tree. The
//! state-space engine visits millions of configurations and branches at
//! every edge; this module gives it a representation where both operations
//! are flat:
//!
//! - **process states are interned**: every distinct `P` is stored once in a
//!   sharded, append-only table together with its 128-bit content hash and
//!   its poised decision; a configuration holds `u32` ids;
//! - **memory cells are one tagged `u64` word each**: small integers and `⊥`
//!   are stored inline, everything else (big integers, sequences, buffers)
//!   is interned in a second table;
//! - a [`PackedState`] is therefore three flat arrays (`u32` process ids,
//!   `Option<u64>` recorded decisions, `u64` cell words) plus two counters —
//!   cloning one is a few `memcpy`s, independent of how much heap the
//!   semantic state owns.
//!
//! [`PackedCtx::step`] applies one atomic step **in place** and returns a
//! [`PackedUndo`] that reverts it in O(step footprint);
//! [`PackedCtx::edge_digest`] computes a successor's incremental Zobrist
//! digest *without mutating anything* — the read-only preview the parallel
//! explorer's workers run concurrently. Step semantics (uniformity checks,
//! bounds, growth, multi-assignment validation, error values) are routed
//! through the same [`CellState::apply`] the [`crate::Memory`] uses, so a
//! packed step and a [`crate::Memory::apply`] step can never drift apart.
//!
//! Intern tables are sharded behind read-writer locks and append-only:
//! entries are immutable once published, reads take a shard read lock, and
//! ids are opaque (digests hash *content*, never ids, so outcomes are
//! independent of interning order — the property that lets worker threads
//! intern concurrently without affecting determinism).

use crate::{
    fingerprint_of, Action, CellState, Fp128Hasher, Instruction, InstructionSet, Memory,
    ModelError, Op, Process, Value,
};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

pub mod delta;
pub mod frame;

// ---------------------------------------------------------------------------
// Cell word encoding
// ---------------------------------------------------------------------------

/// Tag bits (low 2) of a packed cell word.
const TAG_MASK: u64 = 0b11;
/// Inline small integer: the high 62 bits are the value, two's complement.
const TAG_INT: u64 = 0b00;
/// The word `⊥`.
const TAG_BOT: u64 = 0b01;
/// Interned cell: the high bits are a table id.
const TAG_REF: u64 = 0b10;

/// Largest magnitude storable inline: signed 62-bit range.
const INLINE_MAX: i64 = (1 << 61) - 1;
const INLINE_MIN: i64 = -(1 << 61);

/// Interner ids: low bit = "poised to decide" flag (process table only),
/// next four bits = shard, rest = index within the shard.
const ID_SHARD_BITS: u32 = 4;
const ID_SHARDS: usize = 1 << ID_SHARD_BITS;
const ID_FLAG_DECIDED: u32 = 1;

fn make_id(local: usize, shard: usize, decided: bool) -> u32 {
    let local = u32::try_from(local).expect("intern table overflow");
    assert!(local < (1 << (31 - ID_SHARD_BITS)), "intern table overflow");
    (local << (ID_SHARD_BITS + 1)) | ((shard as u32) << 1) | u32::from(decided)
}

fn id_shard(id: u32) -> usize {
    ((id >> 1) & (ID_SHARDS as u32 - 1)) as usize
}

fn id_local(id: u32) -> usize {
    (id >> (ID_SHARD_BITS + 1)) as usize
}

fn id_decided(id: u32) -> bool {
    id & ID_FLAG_DECIDED != 0
}

// ---------------------------------------------------------------------------
// Sharded append-only interner
// ---------------------------------------------------------------------------

/// One interner shard: content-hash → id plus the entry storage. Entries are
/// never mutated after insertion, so readers only need the shard read lock
/// for the duration of a lookup.
struct Shard<T, M> {
    ids: HashMap<u128, u32>,
    entries: Vec<(T, M)>,
}

impl<T, M> Default for Shard<T, M> {
    fn default() -> Self {
        Shard {
            ids: HashMap::new(),
            entries: Vec::new(),
        }
    }
}

/// Estimated per-entry bookkeeping overhead of one interned entry beyond its
/// payload: the `ids` map entry (u128 key + u32 id + table slack) plus the
/// `entries` vec slot bookkeeping.
const INTERN_ENTRY_OVERHEAD: usize = 48;

/// Sharded intern table: `T` keyed by its 128-bit content fingerprint, with
/// per-entry metadata `M` computed once at insertion.
struct Interner<T, M> {
    shards: Vec<RwLock<Shard<T, M>>>,
    /// Estimated resident bytes across all shards. Entries are append-only
    /// and never freed (their ids are embedded in packed states, including
    /// spilled ones), so this only ever grows; budget pressure is relieved
    /// by evicting the per-worker read-through caches, not the table.
    bytes: AtomicUsize,
}

impl<T: Clone + Eq + Hash, M: Copy> Interner<T, M> {
    fn new() -> Self {
        Interner {
            shards: (0..ID_SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Estimated resident bytes of the table (entries + id maps).
    fn resident_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Interns `value`, computing `meta(&value, hash)` on first sight.
    /// `decided` becomes the id's flag bit. `cost` estimates the entry's
    /// resident bytes, charged once on first insertion.
    fn intern(
        &self,
        value: T,
        decided: bool,
        meta: impl FnOnce(&T, u128) -> M,
        cost: impl FnOnce(&T) -> usize,
    ) -> u32 {
        let hash = fingerprint_of(&value);
        self.intern_prehashed(hash, value, decided, meta, cost)
    }

    /// [`Interner::intern`] with the content hash already computed — the
    /// entry point for cache-missing callers that hashed the value to probe
    /// their cache first. `hash` must be `fingerprint_of(&value)`.
    fn intern_prehashed(
        &self,
        hash: u128,
        value: T,
        decided: bool,
        meta: impl FnOnce(&T, u128) -> M,
        cost: impl FnOnce(&T) -> usize,
    ) -> u32 {
        let shard_index = (hash as usize) & (ID_SHARDS - 1);
        let shard = &self.shards[shard_index];
        {
            // One read critical section for both the lookup and the
            // collision check: re-acquiring the same RwLock recursively can
            // deadlock against a queued writer.
            let guard = shard.read().unwrap();
            if let Some(&id) = guard.ids.get(&hash) {
                debug_assert!(
                    guard.entries[id_local(id)].0 == value,
                    "128-bit content fingerprint collision in intern table"
                );
                return id;
            }
        }
        let mut guard = shard.write().unwrap();
        if let Some(&id) = guard.ids.get(&hash) {
            return id; // another thread won the race
        }
        let m = meta(&value, hash);
        self.bytes
            .fetch_add(cost(&value) + INTERN_ENTRY_OVERHEAD, Ordering::Relaxed);
        let id = make_id(guard.entries.len(), shard_index, decided);
        guard.entries.push((value, m));
        guard.ids.insert(hash, id);
        id
    }

    /// Reads the entry behind `id` under the shard read lock.
    fn with<R>(&self, id: u32, f: impl FnOnce(&T, &M) -> R) -> R {
        let guard = self.shards[id_shard(id)].read().unwrap();
        let (value, meta) = &guard.entries[id_local(id)];
        f(value, meta)
    }
}

/// Cached per-process metadata: content hash and poised decision.
#[derive(Clone, Copy)]
struct ProcMeta {
    hash: u128,
    decision: Option<u64>,
}

/// Resident bytes of one process entry (interned or cached): the inline
/// `(state, meta)` pair plus whatever heap the state owns. Without the
/// [`Process::heap_bytes`] term, a protocol whose states carry growing
/// allocations interns unbounded memory that no budget ever sees.
fn proc_entry_bytes<P: Process>(p: &P) -> usize {
    std::mem::size_of::<(P, ProcMeta)>() + p.heap_bytes()
}

/// Cached per-cell metadata: content hash.
#[derive(Clone, Copy)]
struct CellMeta {
    hash: u128,
}

// ---------------------------------------------------------------------------
// Per-worker read-through cache
// ---------------------------------------------------------------------------

/// A per-worker **read-through cache** over a [`PackedCtx`]'s intern tables.
///
/// Interner entries are immutable once published and ids are stable, so a
/// cached `id → entry` or `content-hash → id` mapping can never go stale:
/// the cache needs no invalidation protocol, only population. Each worker
/// thread of the parallel explorer owns one, turning the shard read-locks
/// of the hot expansion loop into thread-local hash lookups — the shared
/// tables are consulted (and the cache grown) only on first sight of a
/// process state or interned cell.
///
/// Caching is **semantically invisible**: every `*_cached` method on
/// [`PackedCtx`] returns exactly what its uncached twin returns, because
/// both read the same immutable entries. A cache is bound to the context
/// whose ids it stores; using it with another context is a logic error
/// (same contract as [`PackedState`] itself).
pub struct PackedCache<P: Process> {
    /// Interned id → (process state, its metadata).
    procs: HashMap<u32, (P, ProcMeta)>,
    /// Content hash → interned id: the intern-write fast path.
    proc_ids: HashMap<u128, u32>,
    /// Interned cell id → (cell, content hash).
    cells: HashMap<u32, (CellState, u128)>,
    /// Content hash → encoded word: the encode fast path.
    cell_words: HashMap<u128, u64>,
    /// Estimated resident bytes across the four maps.
    bytes: usize,
}

/// Estimated per-entry map overhead in a [`PackedCache`] beyond the payload.
const CACHE_ENTRY_OVERHEAD: usize = 48;

impl<P: Process> PackedCache<P> {
    /// An empty cache (allocation-free until the first miss is recorded).
    pub fn new() -> Self {
        PackedCache {
            procs: HashMap::new(),
            proc_ids: HashMap::new(),
            cells: HashMap::new(),
            cell_words: HashMap::new(),
            bytes: 0,
        }
    }

    /// Cached entries across all four maps (observability/tests).
    pub fn len(&self) -> usize {
        self.procs.len() + self.proc_ids.len() + self.cells.len() + self.cell_words.len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes of the cached entries.
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Generational eviction: if the cache has outgrown `cap`, drop every
    /// cached entry (and the map allocations) and start over. Read-through
    /// misses repopulate the currently-hot entries, so a wholesale clear
    /// behaves like an approximate LRU at a fraction of the bookkeeping
    /// cost. Returns `true` if an eviction happened.
    pub fn evict_if_over(&mut self, cap: usize) -> bool {
        if self.bytes <= cap {
            return false;
        }
        self.procs = HashMap::new();
        self.proc_ids = HashMap::new();
        self.cells = HashMap::new();
        self.cell_words = HashMap::new();
        self.bytes = 0;
        true
    }

    fn charge(&mut self, payload: usize) {
        self.bytes += payload + CACHE_ENTRY_OVERHEAD;
    }
}

impl<P: Process> Default for PackedCache<P> {
    fn default() -> Self {
        PackedCache::new()
    }
}

// ---------------------------------------------------------------------------
// PackedState
// ---------------------------------------------------------------------------

/// A flat configuration: interned process ids, recorded decisions, tagged
/// cell words, the touched-location high-water mark and a step counter.
///
/// Only meaningful relative to the [`PackedCtx`] that produced it (ids index
/// that context's tables). Equality and hashing compare the flat encoding,
/// which within one context coincides with semantic equality *plus* the
/// step counter; the engine's [`PackedCtx::digest`] excludes the counter,
/// mirroring [`crate::fingerprint_of`]-based machine fingerprints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedState {
    procs: Vec<u32>,
    decided: Vec<Option<u64>>,
    cells: Vec<u64>,
    touched: usize,
    steps: u64,
}

impl PackedState {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Steps applied since the state was packed (bookkeeping, not hashed by
    /// [`PackedCtx::digest`]).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Locations ever targeted by an instruction — Table 1's space measure.
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// Currently allocated locations.
    pub fn cells_len(&self) -> usize {
        self.cells.len()
    }

    /// Approximate heap-plus-inline footprint of this state in bytes — the
    /// cost a memory-budgeted frontier accounts per resident entry. Computed
    /// from lengths (not capacities) so the figure is a deterministic
    /// function of the semantic configuration.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<PackedState>()
            + self.procs.len() * std::mem::size_of::<u32>()
            + self.decided.len() * std::mem::size_of::<Option<u64>>()
            + self.cells.len() * std::mem::size_of::<u64>()
    }
}

/// Undo token for one [`PackedCtx::step`]: the pre-step words of exactly
/// what the step could have changed.
#[derive(Debug, Clone)]
pub struct PackedUndo {
    pid: usize,
    prev_decided: Option<u64>,
    invoked: Option<InvokeUndo>,
}

#[derive(Debug, Clone)]
struct InvokeUndo {
    prev_proc: u32,
    prev_len: usize,
    prev_touched: usize,
    /// Pre-step words of changed cells that existed before the step
    /// (grown-and-written locations are handled by the length truncate).
    prev_words: Vec<(usize, u64)>,
}

/// What one packed step did — mirrors `cbh_sim`'s step outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedStepOutcome {
    /// The process performed its poised instruction and absorbed `Value`.
    Invoked(Value),
    /// The process was poised to decide; the decision was recorded and no
    /// memory step was taken.
    AlreadyDecided(u64),
}

/// One memory edit produced by the pure op-application routine: the cells to
/// rewrite, the post-step allocation length and touch high-water mark.
#[derive(Debug)]
struct MemEdit {
    changes: Vec<(usize, CellState)>,
    new_len: usize,
    new_touched: usize,
}

// ---------------------------------------------------------------------------
// PackedCtx
// ---------------------------------------------------------------------------

/// The shared context packed states execute against: memory policy (uniform
/// instruction set, growth, default cell) plus the intern tables.
///
/// Cheap to share behind an `Arc`; all methods take `&self`, including
/// interning writes (shard locks serialize them), so a parallel explorer's
/// workers and committer use one context concurrently.
pub struct PackedCtx<P: Process> {
    n: usize,
    iset: InstructionSet,
    growable: bool,
    default_cell: CellState,
    /// Pre-encoded word a grown location starts as.
    default_word: u64,
    /// Content hash of the default cell (grown-location digest components).
    default_hash: u128,
    /// Content hash of the `⊥` word cell, the other inline variant.
    bot_hash: u128,
    procs: Interner<P, ProcMeta>,
    cells: Interner<CellState, CellMeta>,
}

impl<P: Process> PackedCtx<P> {
    /// A context matching `memory`'s policy for `n` processes.
    pub fn for_memory(memory: &Memory, n: usize) -> Self {
        let default_cell = memory.default_cell().clone();
        let procs = Interner::new();
        let cells = Interner::new();
        let mut ctx = PackedCtx {
            n,
            iset: memory.iset(),
            growable: memory.growable(),
            default_hash: fingerprint_of(&default_cell),
            bot_hash: fingerprint_of(&CellState::word(Value::Bot)),
            default_word: 0,
            default_cell,
            procs,
            cells,
        };
        ctx.default_word = ctx.encode_cell(ctx.default_cell.clone());
        ctx
    }

    /// A context for the memory `spec` describes.
    pub fn for_spec(spec: &crate::MemorySpec, n: usize) -> Self {
        Self::for_memory(&Memory::new(spec), n)
    }

    /// Number of processes states in this context pack.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Estimated resident bytes of the shared intern tables (process states
    /// plus interned cells). Two relaxed atomic loads — cheap enough to poll
    /// from an explorer's commit loop so `memory_budget` accounting can see
    /// the interners grow. Entries are append-only (ids are embedded in
    /// packed states, including spilled ones), so the figure never shrinks.
    pub fn intern_resident_bytes(&self) -> usize {
        self.procs.resident_bytes() + self.cells.resident_bytes()
    }

    // -- encoding -----------------------------------------------------------
    //
    // Every accessor comes in an `_opt` form threading an optional
    // [`PackedCache`]: `Some(cache)` reads through the caller's thread-local
    // cache (populating it on miss), `None` hits the shared tables directly.
    // The legacy uncached names are thin `_opt(None, ..)` wrappers so the
    // cached and uncached paths share one implementation and cannot drift.

    /// Reads the process entry behind `id` through the cache if one is given.
    fn proc_entry<R>(
        &self,
        cache: Option<&mut PackedCache<P>>,
        id: u32,
        f: impl FnOnce(&P, &ProcMeta) -> R,
    ) -> R {
        match cache {
            Some(cache) => {
                if !cache.procs.contains_key(&id) {
                    let entry = self.procs.with(id, |p, meta| (p.clone(), *meta));
                    cache.charge(proc_entry_bytes(&entry.0));
                    cache.procs.insert(id, entry);
                }
                let (p, meta) = cache.procs.get(&id).expect("just inserted");
                f(p, meta)
            }
            None => self.procs.with(id, f),
        }
    }

    /// Reads the interned-cell entry behind `id` through the cache if given.
    fn cell_entry<R>(
        &self,
        cache: Option<&mut PackedCache<P>>,
        id: u32,
        f: impl FnOnce(&CellState, u128) -> R,
    ) -> R {
        match cache {
            Some(cache) => {
                if !cache.cells.contains_key(&id) {
                    let entry = self.cells.with(id, |cell, meta| (cell.clone(), meta.hash));
                    cache.charge(entry.0.resident_bytes());
                    cache.cells.insert(id, entry);
                }
                let (cell, hash) = cache.cells.get(&id).expect("just inserted");
                f(cell, *hash)
            }
            None => self.cells.with(id, |cell, meta| f(cell, meta.hash)),
        }
    }

    /// Canonical word for a cell: small integers and `⊥` inline, everything
    /// else interned. Canonical means word equality ⟺ cell equality.
    fn encode_cell_opt(&self, cache: Option<&mut PackedCache<P>>, cell: CellState) -> u64 {
        match &cell {
            CellState::Word(Value::Bot) => TAG_BOT,
            CellState::Word(Value::Int(i)) => match i.to_i64() {
                Some(v) if (INLINE_MIN..=INLINE_MAX).contains(&v) => {
                    ((v << 2) as u64) | TAG_INT
                }
                _ => self.intern_cell_opt(cache, cell),
            },
            _ => self.intern_cell_opt(cache, cell),
        }
    }

    fn encode_cell(&self, cell: CellState) -> u64 {
        self.encode_cell_opt(None, cell)
    }

    fn intern_cell_opt(&self, cache: Option<&mut PackedCache<P>>, cell: CellState) -> u64 {
        match cache {
            Some(cache) => {
                let hash = fingerprint_of(&cell);
                if let Some(&word) = cache.cell_words.get(&hash) {
                    return word;
                }
                let id = self.cells.intern_prehashed(
                    hash,
                    cell,
                    false,
                    |_, hash| CellMeta { hash },
                    CellState::resident_bytes,
                );
                let word = ((id as u64) << 2) | TAG_REF;
                cache.charge(std::mem::size_of::<(u128, u64)>());
                cache.cell_words.insert(hash, word);
                word
            }
            None => {
                let id = self.cells.intern(
                    cell,
                    false,
                    |_, hash| CellMeta { hash },
                    CellState::resident_bytes,
                );
                ((id as u64) << 2) | TAG_REF
            }
        }
    }

    /// Decodes a word back to its cell.
    fn decode_cell_opt(&self, cache: Option<&mut PackedCache<P>>, word: u64) -> CellState {
        match word & TAG_MASK {
            TAG_BOT => CellState::word(Value::Bot),
            TAG_INT => CellState::word(Value::int((word as i64) >> 2)),
            TAG_REF => self.cell_entry(cache, (word >> 2) as u32, |cell, _| cell.clone()),
            _ => unreachable!("unused cell word tag"),
        }
    }

    /// Content hash of the cell a word encodes, without decoding interned
    /// entries (their hash is cached).
    fn word_hash_opt(&self, cache: Option<&mut PackedCache<P>>, word: u64) -> u128 {
        match word & TAG_MASK {
            TAG_BOT => self.bot_hash,
            TAG_INT => fingerprint_of(&CellState::word(Value::int((word as i64) >> 2))),
            TAG_REF => self.cell_entry(cache, (word >> 2) as u32, |_, hash| hash),
            _ => unreachable!("unused cell word tag"),
        }
    }

    fn intern_proc_opt(&self, cache: Option<&mut PackedCache<P>>, p: P) -> u32 {
        match cache {
            Some(cache) => {
                let hash = fingerprint_of(&p);
                if let Some(&id) = cache.proc_ids.get(&hash) {
                    return id;
                }
                let decision = p.action().decision();
                let meta = ProcMeta { hash, decision };
                let id = self.procs.intern_prehashed(
                    hash,
                    p.clone(),
                    decision.is_some(),
                    |_, _| meta,
                    proc_entry_bytes,
                );
                cache.charge(std::mem::size_of::<(u128, u32)>());
                cache.proc_ids.insert(hash, id);
                if !cache.procs.contains_key(&id) {
                    cache.charge(proc_entry_bytes(&p));
                    cache.procs.insert(id, (p, meta));
                }
                id
            }
            None => {
                let decision = p.action().decision();
                self.procs.intern(
                    p,
                    decision.is_some(),
                    |_, hash| ProcMeta { hash, decision },
                    proc_entry_bytes,
                )
            }
        }
    }

    fn intern_proc(&self, p: P) -> u32 {
        self.intern_proc_opt(None, p)
    }

    /// The process state behind `id`, cloned out of the table.
    pub fn proc_state(&self, id: u32) -> P {
        self.proc_state_opt(None, id)
    }

    fn proc_state_opt(&self, cache: Option<&mut PackedCache<P>>, id: u32) -> P {
        self.proc_entry(cache, id, |p, _| p.clone())
    }

    fn proc_action_opt(&self, cache: Option<&mut PackedCache<P>>, id: u32) -> Action {
        self.proc_entry(cache, id, |p, _| p.action())
    }

    fn proc_hash_opt(&self, cache: Option<&mut PackedCache<P>>, id: u32) -> u128 {
        self.proc_entry(cache, id, |_, meta| meta.hash)
    }

    fn proc_decision_opt(&self, cache: Option<&mut PackedCache<P>>, id: u32) -> Option<u64> {
        if !id_decided(id) {
            return None; // fast path: flag bit avoids the table read
        }
        self.proc_entry(cache, id, |_, meta| meta.decision)
    }

    fn proc_decision(&self, id: u32) -> Option<u64> {
        self.proc_decision_opt(None, id)
    }

    // -- semantic queries ----------------------------------------------------

    /// The decision of `pid` — recorded, or poised (mirrors the machine's
    /// semantic decision query).
    pub fn decision(&self, state: &PackedState, pid: usize) -> Option<u64> {
        state.decided[pid].or_else(|| self.proc_decision(state.procs[pid]))
    }

    /// [`PackedCtx::decision`] through a worker-local cache.
    pub fn decision_cached(
        &self,
        cache: &mut PackedCache<P>,
        state: &PackedState,
        pid: usize,
    ) -> Option<u64> {
        state.decided[pid].or_else(|| self.proc_decision_opt(Some(cache), state.procs[pid]))
    }

    /// `true` if `pid` has not decided.
    pub fn is_active(&self, state: &PackedState, pid: usize) -> bool {
        state.decided[pid].is_none() && !id_decided(state.procs[pid])
    }

    /// `true` if any process can still move.
    pub fn has_active(&self, state: &PackedState) -> bool {
        (0..state.n()).any(|pid| self.is_active(state, pid))
    }

    /// The id of `pid`'s process state (for callers that cache table reads).
    pub fn proc_id(&self, state: &PackedState, pid: usize) -> u32 {
        state.procs[pid]
    }

    // -- pack / unpack -------------------------------------------------------

    /// Packs a configuration given as parts (the machine's fields).
    pub fn pack(
        &self,
        procs: &[P],
        decided: &[Option<u64>],
        memory: &Memory,
        steps: u64,
    ) -> PackedState {
        debug_assert_eq!(memory.iset(), self.iset, "context/memory mismatch");
        PackedState {
            procs: procs.iter().map(|p| self.intern_proc(p.clone())).collect(),
            decided: decided.to_vec(),
            cells: (0..memory.len())
                .map(|loc| self.encode_cell(memory.cell(loc).expect("loc < len").clone()))
                .collect(),
            touched: memory.touched(),
            steps,
        }
    }

    /// Unpacks a configuration into its semantic parts: process states,
    /// recorded decisions, a rebuilt [`Memory`], and the step counter.
    pub fn unpack(&self, state: &PackedState) -> (Vec<P>, Vec<Option<u64>>, Memory, u64) {
        self.unpack_opt(None, state)
    }

    /// [`PackedCtx::unpack`] through a worker-local cache.
    pub fn unpack_cached(
        &self,
        cache: &mut PackedCache<P>,
        state: &PackedState,
    ) -> (Vec<P>, Vec<Option<u64>>, Memory, u64) {
        self.unpack_opt(Some(cache), state)
    }

    fn unpack_opt(
        &self,
        mut cache: Option<&mut PackedCache<P>>,
        state: &PackedState,
    ) -> (Vec<P>, Vec<Option<u64>>, Memory, u64) {
        let procs = state
            .procs
            .iter()
            .map(|&id| self.proc_state_opt(cache.as_deref_mut(), id))
            .collect();
        let cells = state
            .cells
            .iter()
            .map(|&w| self.decode_cell_opt(cache.as_deref_mut(), w))
            .collect();
        let memory = Memory::from_raw_parts(
            self.iset,
            self.growable,
            cells,
            self.default_cell.clone(),
            state.touched,
        );
        (procs, state.decided.clone(), memory, state.steps)
    }

    // -- step application ----------------------------------------------------

    /// Pure op application against the packed memory: computes the result
    /// value and the cell edit without mutating anything, with exactly the
    /// checks, ordering and error values of [`Memory::apply`].
    fn apply_op_opt(
        &self,
        mut cache: Option<&mut PackedCache<P>>,
        state: &PackedState,
        op: &Op,
    ) -> Result<(Value, MemEdit), ModelError> {
        let len = state.cells.len();
        let ensure = |loc: usize| -> Result<(), ModelError> {
            if loc < len || self.growable {
                Ok(())
            } else {
                Err(ModelError::OutOfBounds { loc, len })
            }
        };
        match op {
            Op::Single { loc, instr } => {
                self.iset.check(instr)?;
                ensure(*loc)?;
                let mut cell = if *loc < len {
                    self.decode_cell_opt(cache.as_deref_mut(), state.cells[*loc])
                } else {
                    self.default_cell.clone()
                };
                let result = cell.apply(instr)?;
                let changes = if instr.is_trivial() && *loc < len {
                    Vec::new() // a trivial op on an existing cell edits nothing
                } else {
                    vec![(*loc, cell)]
                };
                Ok((
                    result,
                    MemEdit {
                        changes,
                        new_len: len.max(loc + 1),
                        new_touched: state.touched.max(loc + 1),
                    },
                ))
            }
            Op::MultiAssign(writes) => {
                for (i, (loc, _)) in writes.iter().enumerate() {
                    if writes[..i].iter().any(|(l, _)| l == loc) {
                        return Err(ModelError::DuplicateMultiAssignTarget { loc: *loc });
                    }
                }
                // Validate all targets before computing any write: the step
                // is atomic and must fail atomically, like `Memory::apply`.
                for (loc, v) in writes {
                    let probe = if self.iset.buffer_capacity().is_some() {
                        Instruction::BufferWrite(v.clone())
                    } else {
                        Instruction::Write(v.clone())
                    };
                    self.iset.check(&probe)?;
                    ensure(*loc)?;
                }
                let mut new_len = len;
                let mut new_touched = state.touched;
                let mut changes = Vec::with_capacity(writes.len());
                for (loc, v) in writes {
                    let mut cell = if *loc < len {
                        self.decode_cell_opt(cache.as_deref_mut(), state.cells[*loc])
                    } else {
                        self.default_cell.clone()
                    };
                    cell.multi_assign_write(v.clone());
                    changes.push((*loc, cell));
                    new_len = new_len.max(loc + 1);
                    new_touched = new_touched.max(loc + 1);
                }
                Ok((
                    Value::Bot,
                    MemEdit {
                        changes,
                        new_len,
                        new_touched,
                    },
                ))
            }
        }
    }

    /// Applies one step of `pid` in place, mirroring the machine's step
    /// semantics exactly: a poised decision is recorded (no memory step); an
    /// invocation applies the op, absorbs the result and records any new
    /// decision. Returns the outcome plus an undo token.
    ///
    /// # Errors
    ///
    /// Exactly the [`ModelError`]s of [`Memory::apply`]; the state is
    /// unchanged on error.
    pub fn step(
        &self,
        state: &mut PackedState,
        pid: usize,
    ) -> Result<(PackedStepOutcome, PackedUndo), ModelError> {
        self.step_opt(None, state, pid)
    }

    /// [`PackedCtx::step`] through a worker-local cache.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PackedCtx::step`].
    pub fn step_cached(
        &self,
        cache: &mut PackedCache<P>,
        state: &mut PackedState,
        pid: usize,
    ) -> Result<(PackedStepOutcome, PackedUndo), ModelError> {
        self.step_opt(Some(cache), state, pid)
    }

    fn step_opt(
        &self,
        mut cache: Option<&mut PackedCache<P>>,
        state: &mut PackedState,
        pid: usize,
    ) -> Result<(PackedStepOutcome, PackedUndo), ModelError> {
        let prev_decided = state.decided[pid];
        match self.proc_action_opt(cache.as_deref_mut(), state.procs[pid]) {
            Action::Decide(v) => {
                state.decided[pid] = Some(v);
                Ok((
                    PackedStepOutcome::AlreadyDecided(v),
                    PackedUndo {
                        pid,
                        prev_decided,
                        invoked: None,
                    },
                ))
            }
            Action::Invoke(op) => {
                let (result, edit) = self.apply_op_opt(cache.as_deref_mut(), state, &op)?;
                let prev_len = state.cells.len();
                let prev_touched = state.touched;
                while state.cells.len() < edit.new_len {
                    state.cells.push(self.default_word);
                }
                let mut prev_words = Vec::with_capacity(edit.changes.len());
                for (loc, cell) in edit.changes {
                    if loc < prev_len {
                        prev_words.push((loc, state.cells[loc]));
                    }
                    state.cells[loc] = self.encode_cell_opt(cache.as_deref_mut(), cell);
                }
                state.touched = edit.new_touched;
                let prev_proc = state.procs[pid];
                let mut p = self.proc_state_opt(cache.as_deref_mut(), prev_proc);
                p.absorb(result.clone());
                let new_id = self.intern_proc_opt(cache.as_deref_mut(), p);
                state.procs[pid] = new_id;
                state.steps += 1;
                if let Some(v) = self.proc_decision_opt(cache, new_id) {
                    state.decided[pid] = Some(v);
                }
                Ok((
                    PackedStepOutcome::Invoked(result),
                    PackedUndo {
                        pid,
                        prev_decided,
                        invoked: Some(InvokeUndo {
                            prev_proc,
                            prev_len,
                            prev_touched,
                            prev_words,
                        }),
                    },
                ))
            }
        }
    }

    /// Reverts the step that produced `undo`. Tokens must be consumed in
    /// reverse order of application.
    pub fn undo(&self, state: &mut PackedState, undo: PackedUndo) {
        let PackedUndo {
            pid,
            prev_decided,
            invoked,
        } = undo;
        if let Some(inv) = invoked {
            state.procs[pid] = inv.prev_proc;
            state.cells.truncate(inv.prev_len);
            for (loc, word) in inv.prev_words {
                state.cells[loc] = word;
            }
            state.touched = inv.prev_touched;
            state.steps -= 1;
        }
        state.decided[pid] = prev_decided;
    }

    /// Clones the state and steps `pid` in the copy — the branch primitive.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PackedCtx::step`].
    pub fn branch_step(&self, state: &PackedState, pid: usize) -> Result<PackedState, ModelError> {
        let mut next = state.clone();
        self.step(&mut next, pid)?;
        Ok(next)
    }

    /// [`PackedCtx::branch_step`] through a worker-local cache.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PackedCtx::step`].
    pub fn branch_step_cached(
        &self,
        cache: &mut PackedCache<P>,
        state: &PackedState,
        pid: usize,
    ) -> Result<PackedState, ModelError> {
        let mut next = state.clone();
        self.step_cached(cache, &mut next, pid)?;
        Ok(next)
    }

    // -- digests -------------------------------------------------------------

    /// Full-scan Zobrist digest: a wrapping sum of independent components,
    /// one per (pid, process-state hash, recorded decision), one per
    /// (location, cell hash), one for the touched count. In `symmetric` mode
    /// the process components drop the pid tag, quotienting the digest by
    /// process permutation. Step counters are excluded.
    ///
    /// Equality of digests coincides (up to 128-bit collisions) with
    /// semantic-configuration equality — the same partition
    /// `Machine::fingerprint` induces, through an independent construction.
    pub fn digest(&self, state: &PackedState, symmetric: bool) -> u128 {
        self.digest_opt(None, state, symmetric)
    }

    /// [`PackedCtx::digest`] through a worker-local cache.
    pub fn digest_cached(
        &self,
        cache: &mut PackedCache<P>,
        state: &PackedState,
        symmetric: bool,
    ) -> u128 {
        self.digest_opt(Some(cache), state, symmetric)
    }

    fn digest_opt(
        &self,
        mut cache: Option<&mut PackedCache<P>>,
        state: &PackedState,
        symmetric: bool,
    ) -> u128 {
        let mut fp = comp_touched(state.touched);
        for pid in 0..state.n() {
            fp = fp.wrapping_add(self.comp_proc_opt(cache.as_deref_mut(), state, pid, symmetric));
        }
        for (loc, &word) in state.cells.iter().enumerate() {
            fp = fp.wrapping_add(comp_cell(loc, self.word_hash_opt(cache.as_deref_mut(), word)));
        }
        fp
    }

    fn comp_proc_opt(
        &self,
        cache: Option<&mut PackedCache<P>>,
        state: &PackedState,
        pid: usize,
        symmetric: bool,
    ) -> u128 {
        comp_proc_raw(
            pid,
            self.proc_hash_opt(cache, state.procs[pid]),
            state.decided[pid],
            symmetric,
        )
    }

    /// The digest of `pid`'s successor, derived incrementally from the
    /// parent's digest `base` **without mutating the state or touching the
    /// intern tables** — only the components the step changes are swapped.
    /// This is the read-only edge walk the explorer's workers run in
    /// parallel.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PackedCtx::step`] on the same edge.
    pub fn edge_digest(
        &self,
        state: &PackedState,
        pid: usize,
        base: u128,
        symmetric: bool,
    ) -> Result<u128, ModelError> {
        self.edge_digest_opt(None, state, pid, base, symmetric)
    }

    /// [`PackedCtx::edge_digest`] through a worker-local cache. The preview
    /// never writes to the *shared* tables, but may populate the cache.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PackedCtx::step`] on the same edge.
    pub fn edge_digest_cached(
        &self,
        cache: &mut PackedCache<P>,
        state: &PackedState,
        pid: usize,
        base: u128,
        symmetric: bool,
    ) -> Result<u128, ModelError> {
        self.edge_digest_opt(Some(cache), state, pid, base, symmetric)
    }

    fn edge_digest_opt(
        &self,
        mut cache: Option<&mut PackedCache<P>>,
        state: &PackedState,
        pid: usize,
        base: u128,
        symmetric: bool,
    ) -> Result<u128, ModelError> {
        let id = state.procs[pid];
        let old_comp = self.comp_proc_opt(cache.as_deref_mut(), state, pid, symmetric);
        match self.proc_action_opt(cache.as_deref_mut(), id) {
            Action::Decide(v) => {
                let hash = self.proc_hash_opt(cache.as_deref_mut(), id);
                let new_comp = comp_proc_raw(pid, hash, Some(v), symmetric);
                Ok(base.wrapping_sub(old_comp).wrapping_add(new_comp))
            }
            Action::Invoke(op) => {
                let (result, edit) = self.apply_op_opt(cache.as_deref_mut(), state, &op)?;
                let mut p = self.proc_state_opt(cache.as_deref_mut(), id);
                p.absorb(result);
                let new_decided = p.action().decision().or(state.decided[pid]);
                let mut fp = base
                    .wrapping_sub(old_comp)
                    .wrapping_add(comp_proc_raw(pid, fingerprint_of(&p), new_decided, symmetric));
                let old_len = state.cells.len();
                for (loc, cell) in &edit.changes {
                    if *loc < old_len {
                        let cell_hash = self.word_hash_opt(cache.as_deref_mut(), state.cells[*loc]);
                        fp = fp.wrapping_sub(comp_cell(*loc, cell_hash));
                    }
                    fp = fp.wrapping_add(comp_cell(*loc, fingerprint_of(cell)));
                }
                // Locations the step grew into but did not write hold the
                // default cell: pure component additions.
                for loc in old_len..edit.new_len {
                    if !edit.changes.iter().any(|(l, _)| l == &loc) {
                        fp = fp.wrapping_add(comp_cell(loc, self.default_hash));
                    }
                }
                if edit.new_touched != state.touched {
                    fp = fp
                        .wrapping_sub(comp_touched(state.touched))
                        .wrapping_add(comp_touched(edit.new_touched));
                }
                Ok(fp)
            }
        }
    }
}

fn comp_proc_raw(pid: usize, hash: u128, decided: Option<u64>, symmetric: bool) -> u128 {
    let mut h = Fp128Hasher::new();
    h.write_u8(b'p');
    if !symmetric {
        h.write_usize(pid);
    }
    h.write_u128(hash);
    decided.hash(&mut h);
    h.finish128()
}

fn comp_cell(loc: usize, hash: u128) -> u128 {
    let mut h = Fp128Hasher::new();
    h.write_u8(b'c');
    h.write_usize(loc);
    h.write_u128(hash);
    h.finish128()
}

fn comp_touched(touched: usize) -> u128 {
    let mut h = Fp128Hasher::new();
    h.write_u8(b't');
    h.write_usize(touched);
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction as I, MemorySpec};

    /// Fetch-and-increments `rounds` times, then decides the last value mod 2.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub(crate) struct Adder {
        remaining: u32,
        last: u64,
    }

    impl Process for Adder {
        fn action(&self) -> Action {
            if self.remaining == 0 {
                Action::Decide(self.last % 2)
            } else {
                Action::Invoke(Op::single(0, I::FetchAndIncrement))
            }
        }
        fn absorb(&mut self, result: Value) {
            self.last = result.as_u64().unwrap();
            self.remaining -= 1;
        }
    }

    pub(crate) fn adder_setup(n: usize, rounds: u32) -> (PackedCtx<Adder>, PackedState) {
        let spec = MemorySpec::bounded(InstructionSet::ReadWriteFetchIncrement, 1);
        let memory = Memory::new(&spec);
        let ctx = PackedCtx::for_spec(&spec, n);
        let procs: Vec<Adder> = (0..n).map(|_| Adder { remaining: rounds, last: 0 }).collect();
        let state = ctx.pack(&procs, &vec![None; n], &memory, 0);
        (ctx, state)
    }

    #[test]
    fn step_and_undo_roundtrip() {
        let (ctx, mut state) = adder_setup(2, 2);
        let snapshot = state.clone();
        let fp = ctx.digest(&state, false);
        let (outcome, undo) = ctx.step(&mut state, 0).unwrap();
        assert_eq!(outcome, PackedStepOutcome::Invoked(Value::int(0)));
        assert_ne!(state, snapshot);
        assert_ne!(ctx.digest(&state, false), fp);
        ctx.undo(&mut state, undo);
        assert_eq!(state, snapshot);
        assert_eq!(ctx.digest(&state, false), fp);
    }

    #[test]
    fn edge_digest_matches_full_rehash_and_branch() {
        let (ctx, state) = adder_setup(3, 3);
        let base = ctx.digest(&state, false);
        for sym in [false, true] {
            let base = ctx.digest(&state, sym);
            for pid in 0..3 {
                let preview = ctx.edge_digest(&state, pid, base, sym).unwrap();
                let child = ctx.branch_step(&state, pid).unwrap();
                assert_eq!(preview, ctx.digest(&child, sym), "pid {pid} sym {sym}");
            }
        }
        // The preview leaves the state untouched.
        assert_eq!(base, ctx.digest(&state, false));
    }

    #[test]
    fn cached_paths_agree_with_uncached() {
        let (ctx, state) = adder_setup(3, 2);
        let mut cache = PackedCache::new();
        for sym in [false, true] {
            let base = ctx.digest(&state, sym);
            assert_eq!(ctx.digest_cached(&mut cache, &state, sym), base);
            for pid in 0..3 {
                let preview = ctx.edge_digest(&state, pid, base, sym).unwrap();
                assert_eq!(
                    ctx.edge_digest_cached(&mut cache, &state, pid, base, sym).unwrap(),
                    preview
                );
                let child = ctx.branch_step(&state, pid).unwrap();
                let cached_child = ctx.branch_step_cached(&mut cache, &state, pid).unwrap();
                assert_eq!(cached_child, child, "pid {pid} sym {sym}");
                assert_eq!(
                    ctx.decision_cached(&mut cache, &child, pid),
                    ctx.decision(&child, pid)
                );
            }
        }
        // The cache warmed up and the cached unpack matches the plain one.
        assert!(!cache.is_empty());
        let plain = ctx.unpack(&state);
        assert_eq!(ctx.unpack_cached(&mut cache, &state), plain);
    }

    #[test]
    fn decisions_are_recorded_and_tracked() {
        let (ctx, mut state) = adder_setup(2, 1);
        assert!(ctx.is_active(&state, 0));
        ctx.step(&mut state, 0).unwrap();
        // One round: the process decided after absorbing.
        assert_eq!(ctx.decision(&state, 0), Some(0));
        assert!(!ctx.is_active(&state, 0));
        assert!(ctx.has_active(&state), "p1 still live");
        assert_eq!(state.steps(), 1);
    }

    #[test]
    fn pack_unpack_roundtrips_semantics() {
        let spec = MemorySpec::unbounded(InstructionSet::ReadWrite);
        let mut memory = Memory::new(&spec);
        memory.apply(&Op::single(5, I::write(1u64 << 62))).unwrap(); // non-inline int
        let ctx: PackedCtx<Adder> = PackedCtx::for_spec(&spec, 1);
        let procs = vec![Adder { remaining: 1, last: 7 }];
        let state = ctx.pack(&procs, &[None], &memory, 9);
        let (procs2, decided2, memory2, steps2) = ctx.unpack(&state);
        assert_eq!(procs2, procs);
        assert_eq!(decided2, vec![None]);
        assert_eq!(memory2, memory);
        assert_eq!(steps2, 9);
    }

    #[test]
    fn inline_encoding_bounds() {
        let spec = MemorySpec::bounded(InstructionSet::ReadWrite, 1);
        let ctx: PackedCtx<Adder> = PackedCtx::for_spec(&spec, 1);
        for v in [0i64, 1, -1, INLINE_MAX, INLINE_MIN] {
            let word = ctx.encode_cell(CellState::word(Value::int(v)));
            assert_eq!(word & TAG_MASK, TAG_INT, "{v} should be inline");
            assert_eq!(ctx.decode_cell_opt(None, word), CellState::word(Value::int(v)));
        }
        for cell in [
            CellState::word(Value::int(INLINE_MAX as i128 + 1)),
            CellState::word(Value::seq([Value::Bot])),
            CellState::buffer(2),
        ] {
            let word = ctx.encode_cell(cell.clone());
            assert_eq!(word & TAG_MASK, TAG_REF, "{cell:?} must be interned");
            assert_eq!(ctx.decode_cell_opt(None, word), cell);
            // Canonical: re-encoding yields the identical word.
            assert_eq!(ctx.encode_cell(cell), word);
        }
        assert_eq!(ctx.encode_cell(CellState::word(Value::Bot)), TAG_BOT);
    }

    #[test]
    fn digest_excludes_steps_and_respects_symmetry() {
        let (ctx, state) = adder_setup(2, 2);
        let mut a = state.clone();
        ctx.step(&mut a, 0).unwrap();
        ctx.step(&mut a, 0).unwrap(); // p0 decided; decides are not memory steps
        let mut b = state.clone();
        ctx.step(&mut b, 1).unwrap();
        ctx.step(&mut b, 1).unwrap();
        assert_ne!(ctx.digest(&a, false), ctx.digest(&b, false));
        assert_eq!(
            ctx.digest(&a, true),
            ctx.digest(&b, true),
            "mirrored configurations merge under the symmetric digest"
        );
    }

    #[test]
    fn errors_match_memory_semantics() {
        let spec = MemorySpec::bounded(InstructionSet::Cas, 1);
        let ctx: PackedCtx<Adder> = PackedCtx::for_spec(&spec, 1);
        let memory = Memory::new(&spec);
        let state = ctx.pack(&[], &[], &memory, 0);
        let op = Op::read(0); // read() is not in {compare-and-swap}
        let packed_err = ctx.apply_op_opt(None, &state, &op).unwrap_err();
        let mut mem = Memory::new(&spec);
        assert_eq!(packed_err, mem.apply(&op).unwrap_err());
        let oob = Op::single(3, I::Read);
        assert_eq!(
            ctx.apply_op_opt(None, &state, &oob).unwrap_err(),
            mem.apply(&oob).unwrap_err()
        );
    }
}
