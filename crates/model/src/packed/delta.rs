//! Delta and flat byte codecs for [`PackedState`] — the wire format of the
//! spillable frontier.
//!
//! A breadth-first frontier past a memory budget must leave RAM, and a
//! [`PackedState`] is already three flat arrays, so it serialises without
//! reflection or allocation tricks. Two encodings are provided:
//!
//! - **flat** ([`encode_flat`] / [`decode_flat`]): the whole state,
//!   varint-packed — the self-contained record a spill run starts with;
//! - **delta** ([`encode_delta`] / [`apply_delta`]): a child encoded as the
//!   positional difference against a base state. One step changes one
//!   process id, at most a handful of cell words, and the two counters —
//!   exactly the footprint a [`super::PackedUndo`] reverts — so consecutive
//!   frontier entries (siblings or cousins in admission order) differ in
//!   O(step footprint) positions and the delta is a few bytes where the flat
//!   record is proportional to the configuration.
//!
//! Both decoders are **total**: any input byte slice produces either a state
//! or a typed [`DeltaError`] — never a panic and never a silent truncation.
//! Decoding is strict (trailing bytes are an error), so a record embedded in
//! a larger spill frame is framed by its caller with a length prefix.
//!
//! # Wire format
//!
//! All integers are LEB128 varints (7 value bits per byte, little-endian
//! groups, at most 10 bytes for a `u64`). Cell words are stored as their
//! packed `u64` encoding verbatim — inline small non-negative integers, `⊥`
//! and interner references are all short varints; only inline *negative*
//! integers pay the full 10 bytes.
//!
//! ```text
//! flat  := n:varint  proc_id:varint ×n  decided ×n
//!          cells_len:varint  word:varint ×cells_len
//!          touched:varint  steps:varint
//! delta := steps:varint  touched:varint
//!          k:varint  (index:varint  proc_id:varint) ×k
//!          k:varint  (index:varint  decided)        ×k
//!          cells_len:varint
//!          k:varint  (index:varint  word:varint)    ×k
//! decided := 0x00 | 0x01 value:varint
//! ```
//!
//! A delta's cell changes are the positions where the child differs from the
//! base *viewed at the child's length*: every location the child grew into
//! is recorded (the decoder cannot know the memory's default word), and a
//! shorter child simply truncates. Ids are table indices into the producing
//! [`super::PackedCtx`] — the codec moves bytes, not semantics, so a decoded
//! state is only meaningful next to the context that encoded it.

use super::PackedState;
use std::fmt;

/// Why a byte slice failed to decode. Every variant is a property of the
/// *input*, so corrupt spill records and fuzzed garbage surface as values,
/// not panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The input ended in the middle of a field.
    Truncated,
    /// A varint ran past 10 bytes or past the value range of `u64`.
    VarintOverflow,
    /// A delta named a process or cell index outside the decoded state.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The length it had to be below.
        len: usize,
    },
    /// A tag byte was neither of its legal values.
    InvalidTag(u8),
    /// Decoding finished with input left over (strict framing).
    TrailingBytes {
        /// How many bytes were not consumed.
        remaining: usize,
    },
    /// A length field claims more elements than the input could possibly
    /// encode (guards allocation-size attacks from corrupt records: nothing
    /// is reserved or resized past what the remaining bytes can justify).
    LengthOverflow {
        /// The claimed element count.
        len: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "input truncated mid-field"),
            DeltaError::VarintOverflow => write!(f, "varint exceeds u64"),
            DeltaError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            DeltaError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            DeltaError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete record")
            }
            DeltaError::LengthOverflow { len } => {
                write!(f, "implausible length field {len}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends `value` as a LEB128 varint (the spill wire primitive).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from the front of `bytes`.
///
/// # Errors
///
/// [`DeltaError::Truncated`] if the slice ends mid-varint,
/// [`DeltaError::VarintOverflow`] past 10 bytes or the `u64` range.
pub fn read_varint(bytes: &mut &[u8]) -> Result<u64, DeltaError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = bytes.split_first().ok_or(DeltaError::Truncated)?;
        *bytes = rest;
        let payload = u64::from(byte & 0x7f);
        if shift >= 63 && payload > (u64::MAX >> shift) {
            return Err(DeltaError::VarintOverflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DeltaError::VarintOverflow);
        }
    }
}

/// Reads an element count, rejecting anything the remaining input cannot
/// possibly encode (every element costs at least one byte) — so a corrupt
/// length field can never drive an allocation past the record's own size.
fn read_len(bytes: &mut &[u8]) -> Result<usize, DeltaError> {
    let len = read_varint(bytes)?;
    if len > bytes.len() as u64 {
        return Err(DeltaError::LengthOverflow { len });
    }
    Ok(len as usize)
}

/// Reads a non-allocating counter field (`touched`) as `usize`.
fn read_counter(bytes: &mut &[u8]) -> Result<usize, DeltaError> {
    usize::try_from(read_varint(bytes)?).map_err(|_| DeltaError::VarintOverflow)
}

fn write_decided(out: &mut Vec<u8>, decided: Option<u64>) {
    match decided {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            write_varint(out, v);
        }
    }
}

fn read_decided(bytes: &mut &[u8]) -> Result<Option<u64>, DeltaError> {
    let (&tag, rest) = bytes.split_first().ok_or(DeltaError::Truncated)?;
    *bytes = rest;
    match tag {
        0 => Ok(None),
        1 => Ok(Some(read_varint(bytes)?)),
        other => Err(DeltaError::InvalidTag(other)),
    }
}

fn finish<T>(value: T, bytes: &[u8]) -> Result<T, DeltaError> {
    if bytes.is_empty() {
        Ok(value)
    } else {
        Err(DeltaError::TrailingBytes {
            remaining: bytes.len(),
        })
    }
}

// ---------------------------------------------------------------------------
// Flat records
// ---------------------------------------------------------------------------

/// Appends the varint-packed flat encoding of `state` to `out` — the
/// self-contained record format of a spill run's first entry.
pub fn encode_flat(state: &PackedState, out: &mut Vec<u8>) {
    write_varint(out, state.procs.len() as u64);
    for &id in &state.procs {
        write_varint(out, u64::from(id));
    }
    for &d in &state.decided {
        write_decided(out, d);
    }
    write_varint(out, state.cells.len() as u64);
    for &word in &state.cells {
        write_varint(out, word);
    }
    write_varint(out, state.touched as u64);
    write_varint(out, state.steps);
}

/// Decodes a flat record, consuming the slice exactly.
///
/// # Errors
///
/// Any [`DeltaError`]; arbitrary input never panics.
pub fn decode_flat(mut bytes: &[u8]) -> Result<PackedState, DeltaError> {
    let n = read_len(&mut bytes)?;
    let mut procs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = read_varint(&mut bytes)?;
        let id = u32::try_from(id).map_err(|_| DeltaError::VarintOverflow)?;
        procs.push(id);
    }
    let mut decided = Vec::with_capacity(n);
    for _ in 0..n {
        decided.push(read_decided(&mut bytes)?);
    }
    let cells_len = read_len(&mut bytes)?;
    let mut cells = Vec::with_capacity(cells_len);
    for _ in 0..cells_len {
        cells.push(read_varint(&mut bytes)?);
    }
    let touched = read_counter(&mut bytes)?;
    let steps = read_varint(&mut bytes)?;
    finish(
        PackedState {
            procs,
            decided,
            cells,
            touched,
            steps,
        },
        bytes,
    )
}

// ---------------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------------

/// Appends `child` encoded as a positional delta against `base` to `out`.
///
/// Works for *any* pair with equal process counts — in practice base and
/// child are consecutive frontier entries, where the changed positions are
/// exactly the step footprint a [`super::PackedUndo`] records, so the delta
/// is a few bytes. Round-trips bit-identically:
/// `apply_delta(base, &delta) == child`, field for field.
///
/// # Panics
///
/// Panics if the process counts differ — states from one exploration run
/// always agree on `n`, so a mismatch is caller error, not data corruption.
pub fn encode_delta(base: &PackedState, child: &PackedState, out: &mut Vec<u8>) {
    assert_eq!(
        base.procs.len(),
        child.procs.len(),
        "delta base and child must have the same process count"
    );
    write_varint(out, child.steps);
    write_varint(out, child.touched as u64);
    // Each change list is written count-first, so the encoder scans twice:
    // once to count, once to emit. The arrays are a handful of cache-hot
    // words, so the second scan is cheaper than materialising a change list
    // per record — spill runs encode thousands of records back to back, and
    // this keeps the whole encoder allocation-free.
    let proc_changes = (0..child.procs.len()).filter(|&i| base.procs[i] != child.procs[i]);
    write_varint(out, proc_changes.clone().count() as u64);
    for i in proc_changes {
        write_varint(out, i as u64);
        write_varint(out, u64::from(child.procs[i]));
    }
    let decided_changes = (0..child.decided.len()).filter(|&i| base.decided[i] != child.decided[i]);
    write_varint(out, decided_changes.clone().count() as u64);
    for i in decided_changes {
        write_varint(out, i as u64);
        write_decided(out, child.decided[i]);
    }
    write_varint(out, child.cells.len() as u64);
    // Changed = differs from the base *viewed at the child's length*: grown
    // locations always differ (the base has no word there) and are recorded,
    // so the decoder never has to invent a default word.
    let cell_changes =
        (0..child.cells.len()).filter(|&i| base.cells.get(i) != Some(&child.cells[i]));
    write_varint(out, cell_changes.clone().count() as u64);
    for i in cell_changes {
        write_varint(out, i as u64);
        write_varint(out, child.cells[i]);
    }
}

/// Reconstructs the child `encode_delta(base, child)` encoded, consuming the
/// slice exactly.
///
/// # Errors
///
/// Any [`DeltaError`]; arbitrary input never panics. Note that a *valid*
/// frame applied to the wrong base decodes without error into a state that
/// is not the original child — deltas carry positions, not checksums; pair
/// them with the base they were encoded against (spill runs do this by
/// construction: each record's base is the record before it).
pub fn apply_delta(base: &PackedState, bytes: &[u8]) -> Result<PackedState, DeltaError> {
    let mut state = base.clone();
    apply_delta_into(&mut state, bytes)?;
    Ok(state)
}

/// [`apply_delta`] without the base clone: patches `state` — the delta's
/// base — into the child **in place**, touching only the changed positions.
/// The workhorse of spill-run stream-back, where consecutive records chain
/// (each record's base is the previous record's decoded state) and the base
/// is never needed again.
///
/// # Errors
///
/// Any [`DeltaError`]; arbitrary input never panics. On error `state` may
/// hold a partial patch — callers treat a failed decode as fatal for the
/// run, never as a value.
pub fn apply_delta_into(state: &mut PackedState, mut bytes: &[u8]) -> Result<(), DeltaError> {
    state.steps = read_varint(&mut bytes)?;
    state.touched = read_counter(&mut bytes)?;
    let proc_changes = read_len(&mut bytes)?;
    for _ in 0..proc_changes {
        let index = read_varint(&mut bytes)?;
        let id = read_varint(&mut bytes)?;
        let id = u32::try_from(id).map_err(|_| DeltaError::VarintOverflow)?;
        let len = state.procs.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| state.procs.get_mut(i))
            .ok_or(DeltaError::IndexOutOfRange { index, len })?;
        *slot = id;
    }
    let decided_changes = read_len(&mut bytes)?;
    for _ in 0..decided_changes {
        let index = read_varint(&mut bytes)?;
        let value = read_decided(&mut bytes)?;
        let len = state.decided.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| state.decided.get_mut(i))
            .ok_or(DeltaError::IndexOutOfRange { index, len })?;
        *slot = value;
    }
    // The child's cell count is mostly *unencoded* cells inherited from the
    // base, so it cannot be bounded by the input size alone — but every
    // grown position must appear in the change list, so a well-formed
    // record never exceeds base length + remaining bytes. Rejecting beyond
    // that keeps the resize below allocation-attack scale.
    let cells_len = read_varint(&mut bytes)?;
    if cells_len > (state.cells.len() + bytes.len()) as u64 {
        return Err(DeltaError::LengthOverflow { len: cells_len });
    }
    let cells_len = cells_len as usize;
    // Grown positions are all listed as changes; the placeholder word below
    // is overwritten by a well-formed delta and only survives corrupt input
    // (where any fixed word is as good as any other).
    state.cells.resize(cells_len, super::TAG_BOT);
    let cell_changes = read_len(&mut bytes)?;
    for _ in 0..cell_changes {
        let index = read_varint(&mut bytes)?;
        let word = read_varint(&mut bytes)?;
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| state.cells.get_mut(i))
            .ok_or(DeltaError::IndexOutOfRange {
                index,
                len: cells_len,
            })?;
        *slot = word;
    }
    finish((), bytes)
}

#[cfg(test)]
mod tests {
    use super::super::tests::adder_setup;
    use super::*;

    #[test]
    fn varints_roundtrip_across_the_range() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice), Ok(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // 10 continuation bytes, then more: past the u64 range.
        let mut bytes: &[u8] = &[0xff; 11];
        assert_eq!(read_varint(&mut bytes), Err(DeltaError::VarintOverflow));
        // 10th byte carries bits beyond 2^64.
        let mut bytes: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f];
        assert_eq!(read_varint(&mut bytes), Err(DeltaError::VarintOverflow));
        let mut bytes: &[u8] = &[0x80, 0x80];
        assert_eq!(read_varint(&mut bytes), Err(DeltaError::Truncated));
    }

    #[test]
    fn flat_roundtrip_and_strictness() {
        let (ctx, mut state) = adder_setup(3, 2);
        ctx.step(&mut state, 1).unwrap();
        let mut buf = Vec::new();
        encode_flat(&state, &mut buf);
        assert_eq!(decode_flat(&buf), Ok(state.clone()));
        let mut padded = buf.clone();
        padded.push(0);
        assert_eq!(
            decode_flat(&padded),
            Err(DeltaError::TrailingBytes { remaining: 1 })
        );
        assert_eq!(
            decode_flat(&buf[..buf.len() - 1]),
            Err(DeltaError::Truncated)
        );
    }

    #[test]
    fn delta_roundtrips_one_step() {
        let (ctx, parent) = adder_setup(3, 3);
        for pid in 0..3 {
            let child = ctx.branch_step(&parent, pid).unwrap();
            let mut delta = Vec::new();
            encode_delta(&parent, &child, &mut delta);
            let mut flat = Vec::new();
            encode_flat(&child, &mut flat);
            assert!(delta.len() < flat.len(), "delta must beat the flat record");
            assert_eq!(apply_delta(&parent, &delta), Ok(child));
        }
    }

    #[test]
    fn delta_records_grown_and_truncated_cells() {
        let (ctx, base) = adder_setup(2, 1);
        let mut grown = base.clone();
        ctx.step(&mut grown, 0).unwrap();
        let mut delta = Vec::new();
        encode_delta(&base, &grown, &mut delta);
        assert_eq!(apply_delta(&base, &delta), Ok(grown.clone()));
        // The reverse direction truncates: still an exact round-trip.
        let mut back = Vec::new();
        encode_delta(&grown, &base, &mut back);
        assert_eq!(apply_delta(&grown, &back), Ok(base));
    }

    #[test]
    fn corrupt_deltas_yield_typed_errors() {
        let (ctx, parent) = adder_setup(2, 2);
        let child = ctx.branch_step(&parent, 0).unwrap();
        let mut delta = Vec::new();
        encode_delta(&parent, &child, &mut delta);
        assert_eq!(
            apply_delta(&parent, &delta[..delta.len() - 1]),
            Err(DeltaError::Truncated)
        );
        // An absurd index is caught by the bounds check.
        let mut bad = Vec::new();
        write_varint(&mut bad, 0); // steps
        write_varint(&mut bad, 0); // touched
        write_varint(&mut bad, 1); // one proc change...
        write_varint(&mut bad, 99); // ...at index 99 of 2
        write_varint(&mut bad, 0);
        assert_eq!(
            apply_delta(&parent, &bad),
            Err(DeltaError::IndexOutOfRange { index: 99, len: 2 })
        );
        // A decided tag outside {0, 1}.
        let mut bad = Vec::new();
        for _ in 0..2 {
            write_varint(&mut bad, 0);
        }
        write_varint(&mut bad, 0); // no proc changes
        write_varint(&mut bad, 1); // one decided change
        write_varint(&mut bad, 0); // index 0
        bad.push(7); // invalid tag
        assert_eq!(apply_delta(&parent, &bad), Err(DeltaError::InvalidTag(7)));
    }

    #[test]
    fn implausible_lengths_are_rejected_before_allocating() {
        // A flat record claiming 2^32 processes in a 5-byte input: the count
        // exceeds what the remaining bytes could encode, so it is rejected
        // before any reserve.
        let mut bad = Vec::new();
        write_varint(&mut bad, 1 << 32);
        assert_eq!(
            decode_flat(&bad),
            Err(DeltaError::LengthOverflow { len: 1 << 32 })
        );
        // A delta claiming a multi-gigabyte cell resize against a tiny base:
        // rejected because every grown cell must be paid for in input bytes.
        let (_, parent) = adder_setup(2, 1);
        let mut bad = Vec::new();
        write_varint(&mut bad, 0); // steps
        write_varint(&mut bad, 0); // touched
        write_varint(&mut bad, 0); // no proc changes
        write_varint(&mut bad, 0); // no decided changes
        write_varint(&mut bad, 1 << 33); // cells_len
        write_varint(&mut bad, 0); // no cell changes
        assert_eq!(
            apply_delta(&parent, &bad),
            Err(DeltaError::LengthOverflow { len: 1 << 33 })
        );
    }
}
