//! Length-prefixed, CRC-guarded frames: the shard-exchange wire format.
//!
//! The distributed explorer ships cross-shard successors between processes
//! over Unix-domain sockets. This module is the *transport* layer of that
//! exchange: byte frames with the same header discipline the snapshot
//! format pins (magic, version, CRC32-per-frame, typed total decoders that
//! never panic on hostile bytes), plus delta-chained [`PackedState`]
//! payload helpers built on [`super::delta`] — the first state of a chain
//! rides flat, every later one as a delta against its predecessor, exactly
//! the spill-run discipline of `cbh_verify::frontier`.
//!
//! What the frames *mean* (message kinds, round protocol, admission
//! verdicts) is the consumer's business (`cbh_verify::dist`); this layer
//! only guarantees that a frame either round-trips bit-exactly or fails
//! with a typed [`FrameError`].
//!
//! ## Wire layout
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CBF1"
//!      4     1  format version (1)
//!      5     1  frame kind (opaque to this layer)
//!      6     4  payload length, u32 little-endian
//!     10   len  payload bytes
//! 10+len     4  CRC32 (IEEE) of bytes 4..10+len (version..payload)
//! ```
//!
//! The magic is a resynchronisation sentinel and is deliberately outside
//! the CRC; everything else — version, kind, length, payload — is covered,
//! so a flipped bit fails typed instead of smuggling in a different frame.

use super::delta::{
    apply_delta, decode_flat, encode_delta, encode_flat, read_varint, write_varint, DeltaError,
};
use super::PackedState;
use std::fmt;
use std::io::Read;

/// Frame magic: "CBF1" (Consensus-Bounds Frame, format 1).
pub const FRAME_MAGIC: [u8; 4] = *b"CBF1";

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Hard ceiling on a single frame's payload. A length field past this is
/// rejected *before* any allocation, so hostile bytes cannot ask the
/// decoder for gigabytes.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Frame header bytes preceding the payload (magic + version + kind + len).
pub const FRAME_HEADER_LEN: usize = 10;

/// Trailing CRC bytes.
pub const FRAME_TRAILER_LEN: usize = 4;

/// A typed frame-decoding failure. Total: every byte sequence decodes to
/// frames or to one of these — never a panic, never an oversized
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended inside a frame (header, payload or CRC trailer).
    Truncated,
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic {
        /// The bytes found where the magic belongs.
        found: [u8; 4],
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// The claimed payload length.
        len: u64,
    },
    /// The frame's CRC32 does not match its bytes.
    CrcMismatch {
        /// CRC recorded in the frame trailer.
        expected: u32,
        /// CRC computed over the received bytes.
        found: u32,
    },
    /// A state record inside a payload failed to decode.
    State(DeltaError),
    /// A payload field violated the frame's own framing (a bad chain tag,
    /// a record length past the payload end, a varint field out of range).
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {FRAME_MAGIC:02x?})")
            }
            FrameError::UnsupportedVersion { found } => {
                write!(f, "unsupported frame version {found} (expected {FRAME_VERSION})")
            }
            FrameError::Oversize { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap")
            }
            FrameError::CrcMismatch { expected, found } => {
                write!(f, "frame CRC mismatch: recorded {expected:#010x}, computed {found:#010x}")
            }
            FrameError::State(e) => write!(f, "frame state record: {e}"),
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<DeltaError> for FrameError {
    fn from(e: DeltaError) -> Self {
        FrameError::State(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table generated at compile time — no dependencies
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the same polynomial the snapshot format uses.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

/// Appends one frame carrying `payload` under `kind` to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`] — producers size their
/// batches; only *decoders* must survive hostile lengths.
pub fn encode_frame(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
        payload.len()
    );
    let start = out.len();
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Total byte length of a frame carrying a `payload_len`-byte payload.
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len + FRAME_TRAILER_LEN
}

/// Decodes the frame at the front of `bytes`.
///
/// Returns `Ok(Some((kind, payload, consumed)))` for a complete valid
/// frame, `Ok(None)` when `bytes` is a (possibly empty) *prefix* of a valid
/// frame — the streaming "need more bytes" signal — and a typed error for
/// anything else.
///
/// # Errors
///
/// [`FrameError::BadMagic`], [`FrameError::UnsupportedVersion`] and
/// [`FrameError::Oversize`] fire as soon as the offending header bytes are
/// present; [`FrameError::CrcMismatch`] once the whole frame is.
#[allow(clippy::type_complexity)]
pub fn decode_frame(bytes: &[u8]) -> Result<Option<(u8, &[u8], usize)>, FrameError> {
    let ready = bytes.len().min(4);
    if bytes[..ready] != FRAME_MAGIC[..ready] {
        let mut found = [0u8; 4];
        found[..ready].copy_from_slice(&bytes[..ready]);
        return Err(FrameError::BadMagic { found });
    }
    if bytes.len() > 4 && bytes[4] != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion { found: bytes[4] });
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[6..10].try_into().expect("4 length bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize { len: len as u64 });
    }
    let total = frame_len(len);
    if bytes.len() < total {
        return Ok(None);
    }
    let expected = u32::from_le_bytes(
        bytes[total - FRAME_TRAILER_LEN..total].try_into().expect("4 CRC bytes"),
    );
    let found = crc32(&bytes[4..total - FRAME_TRAILER_LEN]);
    if expected != found {
        return Err(FrameError::CrcMismatch { expected, found });
    }
    Ok(Some((bytes[5], &bytes[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len], total)))
}

/// [`decode_frame`] for inputs claimed complete: a prefix-of-a-frame input
/// is [`FrameError::Truncated`] instead of "wait for more".
///
/// # Errors
///
/// Every [`decode_frame`] error, plus [`FrameError::Truncated`] for
/// incomplete inputs.
pub fn decode_frame_exact(bytes: &[u8]) -> Result<(u8, &[u8], usize), FrameError> {
    decode_frame(bytes)?.ok_or(FrameError::Truncated)
}

// ---------------------------------------------------------------------------
// Streaming reassembly
// ---------------------------------------------------------------------------

/// Reassembles frames from arbitrarily fragmented byte chunks: a socket
/// read may end mid-header or mid-payload, and the next chunk continues
/// exactly where it stopped.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames. Compacted lazily
    /// so every `next_frame` is amortised O(frame size).
    pos: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends one received chunk (any size, including empty).
    pub fn push(&mut self, chunk: &[u8]) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// The next complete frame, if the buffered bytes contain one.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Propagates [`decode_frame`]'s typed errors; the reader is then
    /// poisoned garbage-in-garbage-out (resynchronisation is the caller's
    /// policy, and the distributed explorer treats it as fatal).
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        match decode_frame(&self.buf[self.pos..])? {
            Some((kind, payload, consumed)) => {
                let payload = payload.to_vec();
                self.pos += consumed;
                Ok(Some((kind, payload)))
            }
            None => Ok(None),
        }
    }

    /// `true` if consumed-but-unyielded bytes remain — a closed stream with
    /// a dangling partial frame was truncated mid-frame.
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Reads one chunk from `r` into the buffer; `Ok(0)` is end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates the reader's IO error.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        let mut chunk = [0u8; 16 * 1024];
        let n = r.read(&mut chunk)?;
        self.push(&chunk[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Delta-chained state payloads
// ---------------------------------------------------------------------------

/// Chain tag: a flat-encoded state (chain head).
const CHAIN_FLAT: u8 = 0;
/// Chain tag: a delta against the previous state of the same chain.
const CHAIN_DELTA: u8 = 1;

/// Writes [`PackedState`] records delta-chained in encode order: the first
/// state rides flat, every later one as a delta against its predecessor —
/// the spill-run discipline, applied to a frame payload. One encoder per
/// frame; chains never cross frame boundaries, so every frame decodes
/// independently.
#[derive(Debug, Default)]
pub struct StateChainEncoder {
    prev: Option<PackedState>,
}

impl StateChainEncoder {
    /// A fresh chain.
    pub fn new() -> Self {
        StateChainEncoder::default()
    }

    /// Appends one length-prefixed chain record for `state` to `out`.
    pub fn push(&mut self, state: &PackedState, out: &mut Vec<u8>) {
        let mut record = Vec::new();
        match &self.prev {
            Some(prev) if prev.procs.len() == state.procs.len() => {
                out.push(CHAIN_DELTA);
                encode_delta(prev, state, &mut record);
            }
            _ => {
                out.push(CHAIN_FLAT);
                encode_flat(state, &mut record);
            }
        }
        write_varint(out, record.len() as u64);
        out.extend_from_slice(&record);
        self.prev = Some(state.clone());
    }
}

/// Decodes a [`StateChainEncoder`] record stream.
#[derive(Debug, Default)]
pub struct StateChainDecoder {
    prev: Option<PackedState>,
}

impl StateChainDecoder {
    /// A fresh chain.
    pub fn new() -> Self {
        StateChainDecoder::default()
    }

    /// Decodes the chain record at the front of `bytes`, advancing it.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] for a bad tag, a record length past the
    /// input end, or a delta record with no predecessor;
    /// [`FrameError::State`] when the state bytes themselves are damaged.
    pub fn next(&mut self, bytes: &mut &[u8]) -> Result<PackedState, FrameError> {
        let (&tag, rest) = bytes.split_first().ok_or(FrameError::Truncated)?;
        *bytes = rest;
        let len = read_varint(bytes)? as usize;
        if len > bytes.len() {
            return Err(FrameError::Malformed("chain record length past payload end"));
        }
        let (record, rest) = bytes.split_at(len);
        *bytes = rest;
        let state = match (tag, &self.prev) {
            (CHAIN_FLAT, _) => decode_flat(record)?,
            (CHAIN_DELTA, Some(prev)) => apply_delta(prev, record)?,
            (CHAIN_DELTA, None) => {
                return Err(FrameError::Malformed("delta chain record with no predecessor"))
            }
            _ => return Err(FrameError::Malformed("unknown chain record tag")),
        };
        self.prev = Some(state.clone());
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        encode_frame(7, b"hello", &mut wire);
        encode_frame(9, b"", &mut wire);
        let (kind, payload, used) = decode_frame_exact(&wire).unwrap();
        assert_eq!((kind, payload), (7, &b"hello"[..]));
        let (kind, payload, _) = decode_frame_exact(&wire[used..]).unwrap();
        assert_eq!((kind, payload), (9, &b""[..]));
    }

    #[test]
    fn prefixes_ask_for_more_and_damage_fails_typed() {
        let mut wire = Vec::new();
        encode_frame(3, &[1, 2, 3, 4], &mut wire);
        for cut in 0..wire.len() {
            assert_eq!(decode_frame(&wire[..cut]), Ok(None), "prefix of {cut} bytes");
            assert_eq!(decode_frame_exact(&wire[..cut]), Err(FrameError::Truncated));
        }
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            assert!(decode_frame_exact(&bad).is_err(), "flip at byte {i} accepted");
        }
        assert!(matches!(
            decode_frame(b"XXXXXXXX"),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversize_lengths_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.push(FRAME_VERSION);
        wire.push(0);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::Oversize { .. })));
    }

    #[test]
    fn reader_reassembles_across_arbitrary_splits() {
        let mut wire = Vec::new();
        for k in 0..5u8 {
            encode_frame(k, &vec![k; 3 + k as usize * 7], &mut wire);
        }
        for step in [1usize, 2, 3, 5, 11] {
            let mut reader = FrameReader::new();
            let mut seen = Vec::new();
            for chunk in wire.chunks(step) {
                reader.push(chunk);
                while let Some((kind, payload)) = reader.next_frame().unwrap() {
                    seen.push((kind, payload));
                }
            }
            assert_eq!(seen.len(), 5, "chunk size {step}");
            for (k, (kind, payload)) in seen.iter().enumerate() {
                assert_eq!(*kind, k as u8);
                assert_eq!(payload.len(), 3 + k * 7);
            }
            assert!(!reader.has_partial());
        }
    }
}
