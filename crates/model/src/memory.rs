//! The shared memory: identical locations under one uniform instruction set.

use crate::{CellState, InstructionSet, ModelError, Op, Result, Value};
use std::fmt;

/// How many locations a memory has.
///
/// Theorem 9.3's track algorithm genuinely needs an *unbounded* number of
/// locations (that is the content of Table 1's `∞` row), so the machine
/// supports lazily-grown memory as well as fixed-size memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locations {
    /// Exactly this many locations; out-of-range access is an error.
    Bounded(usize),
    /// Locations are allocated on first touch.
    Unbounded,
}

/// A description of the memory a protocol needs: the uniform instruction set,
/// the number of locations, and their initial contents.
///
/// # Examples
///
/// ```
/// use cbh_model::{InstructionSet, Memory, MemorySpec, Value};
///
/// // Theorem 3.3's multiply-counter memory: one word initialised to 1.
/// let spec = MemorySpec::bounded(InstructionSet::ReadMultiply, 1).with_initial(vec![Value::one()]);
/// let mem = Memory::new(&spec);
/// assert_eq!(mem.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemorySpec {
    iset: InstructionSet,
    locations: Locations,
    /// Initial values for the first `initial.len()` word locations.
    initial: Vec<Value>,
    /// Initial value of every other word location.
    default: Value,
    /// Per-location buffer capacities overriding the instruction set's
    /// uniform `ℓ` (the heterogeneous setting of Section 6.2).
    buffer_caps: Option<Vec<usize>>,
}

impl MemorySpec {
    /// A memory of `count` locations, words initialised to integer 0 (buffers
    /// to empty).
    pub fn bounded(iset: InstructionSet, count: usize) -> Self {
        MemorySpec {
            iset,
            locations: Locations::Bounded(count),
            initial: Vec::new(),
            default: Value::zero(),
            buffer_caps: None,
        }
    }

    /// An unbounded memory, words initialised to integer 0.
    pub fn unbounded(iset: InstructionSet) -> Self {
        MemorySpec {
            iset,
            locations: Locations::Unbounded,
            initial: Vec::new(),
            default: Value::zero(),
            buffer_caps: None,
        }
    }

    /// Overrides the initial values of the first locations.
    pub fn with_initial(mut self, initial: Vec<Value>) -> Self {
        self.initial = initial;
        self
    }

    /// Overrides the default initial word value for all other locations.
    pub fn with_default(mut self, default: Value) -> Self {
        self.default = default;
        self
    }

    /// Gives each buffer location its own capacity — the *heterogeneous*
    /// setting at the end of Section 6.2 (the paper's lower bound becomes
    /// "the capacities must sum to at least `n−1`"). Locations beyond the
    /// vector keep the instruction set's uniform `ℓ`.
    ///
    /// Ignored on non-buffer instruction sets.
    pub fn with_buffer_capacities(mut self, caps: Vec<usize>) -> Self {
        self.buffer_caps = Some(caps);
        self
    }

    /// The capacity of buffer location `loc`, if this is a buffer memory.
    pub fn buffer_capacity_at(&self, loc: usize) -> Option<usize> {
        let uniform = self.iset.buffer_capacity()?;
        Some(
            self.buffer_caps
                .as_ref()
                .and_then(|caps| caps.get(loc).copied())
                .unwrap_or(uniform),
        )
    }

    /// The uniform instruction set.
    pub fn iset(&self) -> InstructionSet {
        self.iset
    }

    /// The location count policy.
    pub fn locations(&self) -> Locations {
        self.locations
    }

    /// The bounded location count, if any.
    pub fn bounded_len(&self) -> Option<usize> {
        match self.locations {
            Locations::Bounded(k) => Some(k),
            Locations::Unbounded => None,
        }
    }

    fn cell_at(&self, loc: usize) -> CellState {
        if let Some(cap) = self.buffer_capacity_at(loc) {
            CellState::buffer(cap)
        } else {
            CellState::word(self.initial.get(loc).unwrap_or(&self.default).clone())
        }
    }

    /// The cell a location beyond the initial allocation starts as — what
    /// unbounded memories grow by. [`Memory`] and the threaded
    /// `SharedMemory` backend must agree on this exactly, or their space
    /// accounting and read results diverge on protocols with non-default
    /// initial values.
    pub fn grown_cell(&self) -> CellState {
        self.cell_at(usize::MAX)
    }
}

/// The shared memory of the machine.
///
/// All state lives in [`CellState`] cells; [`Memory::apply`] enforces the
/// uniformity requirement, bounds, and multi-assignment well-formedness, and
/// counts the locations that have ever been touched (the quantity Table 1
/// measures).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Memory {
    spec_iset: InstructionSet,
    growable: bool,
    cells: Vec<CellState>,
    default_cell: CellState,
    touched: usize,
}

impl Memory {
    /// Builds the initial memory described by `spec`.
    pub fn new(spec: &MemorySpec) -> Self {
        let count = match spec.locations {
            Locations::Bounded(k) => k,
            Locations::Unbounded => spec.initial.len(),
        };
        let cells = (0..count).map(|i| spec.cell_at(i)).collect();
        Memory {
            spec_iset: spec.iset,
            growable: matches!(spec.locations, Locations::Unbounded),
            cells,
            default_cell: spec.grown_cell(),
            touched: 0,
        }
    }

    /// The uniform instruction set of this memory.
    pub fn iset(&self) -> InstructionSet {
        self.spec_iset
    }

    /// Number of currently allocated locations.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no locations are allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of locations ever targeted by an instruction — the space
    /// measure of the hierarchy.
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// A view of location `loc`, if allocated.
    pub fn cell(&self, loc: usize) -> Option<&CellState> {
        self.cells.get(loc)
    }

    /// Applies one atomic step and returns its result.
    ///
    /// Multiple assignments return [`Value::Bot`] (writes return nothing).
    ///
    /// # Errors
    ///
    /// - [`ModelError::UnsupportedInstruction`] on a uniformity violation;
    /// - [`ModelError::OutOfBounds`] beyond a bounded memory;
    /// - [`ModelError::DuplicateMultiAssignTarget`] if a multiple assignment
    ///   lists a location twice;
    /// - [`ModelError::TypeMismatch`] from the cell semantics.
    pub fn apply(&mut self, op: &Op) -> Result<Value> {
        match op {
            Op::Single { loc, instr } => {
                self.spec_iset.check(instr)?;
                self.ensure(*loc)?;
                self.note_touch(*loc);
                self.cells[*loc].apply(instr)
            }
            Op::MultiAssign(writes) => {
                for (i, (loc, _)) in writes.iter().enumerate() {
                    if writes[..i].iter().any(|(l, _)| l == loc) {
                        return Err(ModelError::DuplicateMultiAssignTarget { loc: *loc });
                    }
                }
                // Validate all targets before mutating anything: the step is atomic.
                for (loc, v) in writes {
                    let probe = if self.spec_iset.buffer_capacity().is_some() {
                        crate::Instruction::BufferWrite(v.clone())
                    } else {
                        crate::Instruction::Write(v.clone())
                    };
                    self.spec_iset.check(&probe)?;
                    self.ensure(*loc)?;
                }
                for (loc, v) in writes {
                    self.note_touch(*loc);
                    self.cells[*loc].multi_assign_write(v.clone());
                }
                Ok(Value::Bot)
            }
        }
    }

    /// Applies one atomic step like [`Memory::apply`], additionally returning
    /// a token that [`Memory::undo`] consumes to restore the pre-step memory.
    ///
    /// Snapshots only the locations the op targets, so a branch-and-revert
    /// costs O(locations touched), not O(memory) — this is what lets the
    /// state-space engine walk an edge of the configuration graph and back
    /// without cloning the whole memory. Unlike [`Memory::apply`], a failed
    /// step is rolled back completely before the error is returned.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Memory::apply`].
    pub fn apply_undoable(&mut self, op: &Op) -> Result<(Value, MemoryUndo)> {
        let prev_len = self.cells.len();
        let prev_touched = self.touched;
        let mut prev_cells = Vec::new();
        let trivial = matches!(op, Op::Single { instr, .. } if instr.is_trivial());
        if !trivial {
            for loc in op.touches() {
                if let Some(cell) = self.cells.get(loc) {
                    prev_cells.push((loc, cell.clone()));
                }
            }
        }
        let undo = MemoryUndo {
            prev_cells,
            prev_len,
            prev_touched,
        };
        match self.apply(op) {
            Ok(result) => Ok((result, undo)),
            Err(e) => {
                self.undo(undo);
                Err(e)
            }
        }
    }

    /// Reverts the step that produced `undo`. Tokens must be consumed in
    /// reverse order of application (last step undone first).
    pub fn undo(&mut self, undo: MemoryUndo) {
        self.cells.truncate(undo.prev_len);
        for (loc, cell) in undo.prev_cells {
            self.cells[loc] = cell;
        }
        self.touched = undo.prev_touched;
    }

    fn ensure(&mut self, loc: usize) -> Result<()> {
        if loc < self.cells.len() {
            return Ok(());
        }
        if self.growable {
            // Growth is geometric-free: allocate exactly up to `loc` so the
            // `len()` statistic stays meaningful for space accounting.
            while self.cells.len() <= loc {
                self.cells.push(self.default_cell.clone());
            }
            Ok(())
        } else {
            Err(ModelError::OutOfBounds {
                loc,
                len: self.cells.len(),
            })
        }
    }

    fn note_touch(&mut self, loc: usize) {
        // `touched` counts distinct locations; cells record a touch lazily by
        // comparing against the high-water mark of touched prefix. Distinct
        // tracking uses the allocation itself for unbounded memories and a
        // saturating max for bounded ones.
        self.touched = self.touched.max(loc + 1);
    }

    /// `true` if locations are allocated on first touch (the packed encoder
    /// needs the growth policy and default cell to mirror [`Memory::apply`]).
    pub(crate) fn growable(&self) -> bool {
        self.growable
    }

    /// The cell a grown location starts as.
    pub(crate) fn default_cell(&self) -> &CellState {
        &self.default_cell
    }

    /// Rebuilds a memory from its semantic parts — the unpacking half of the
    /// packed representation. `touched` must be a value [`Memory::apply`]
    /// could have produced for these cells.
    pub(crate) fn from_raw_parts(
        iset: InstructionSet,
        growable: bool,
        cells: Vec<CellState>,
        default_cell: CellState,
        touched: usize,
    ) -> Self {
        Memory {
            spec_iset: iset,
            growable,
            cells,
            default_cell,
            touched,
        }
    }
}

/// Undo token returned by [`Memory::apply_undoable`]: the pre-step contents
/// of exactly the locations the op could have changed.
#[derive(Debug, Clone)]
pub struct MemoryUndo {
    prev_cells: Vec<(usize, CellState)>,
    prev_len: usize,
    prev_touched: usize,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory{{{}; ", self.spec_iset)?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}:{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction as I;

    #[test]
    fn uniformity_is_enforced() {
        let spec = MemorySpec::bounded(InstructionSet::MaxRegister, 2);
        let mut mem = Memory::new(&spec);
        assert!(mem.apply(&Op::read(0)).is_err(), "read() is not read-max()");
        assert!(mem.apply(&Op::single(0, I::ReadMax)).is_ok());
    }

    #[test]
    fn bounded_memory_rejects_out_of_range() {
        let spec = MemorySpec::bounded(InstructionSet::ReadWrite, 2);
        let mut mem = Memory::new(&spec);
        assert_eq!(
            mem.apply(&Op::read(2)),
            Err(ModelError::OutOfBounds { loc: 2, len: 2 })
        );
    }

    #[test]
    fn unbounded_memory_grows_on_touch() {
        let spec = MemorySpec::unbounded(InstructionSet::ReadWrite1);
        let mut mem = Memory::new(&spec);
        assert_eq!(mem.len(), 0);
        mem.apply(&Op::single(17, I::write(1))).unwrap();
        assert_eq!(mem.len(), 18);
        assert_eq!(mem.touched(), 18);
        assert_eq!(mem.apply(&Op::read(17)).unwrap(), Value::int(1));
        assert_eq!(mem.apply(&Op::read(3)).unwrap(), Value::int(0));
    }

    #[test]
    fn initial_values_and_default() {
        let spec = MemorySpec::bounded(InstructionSet::ReadMultiply, 3)
            .with_initial(vec![Value::one()])
            .with_default(Value::int(9));
        let mut mem = Memory::new(&spec);
        assert_eq!(mem.apply(&Op::read(0)).unwrap(), Value::one());
        assert_eq!(mem.apply(&Op::read(1)).unwrap(), Value::int(9));
    }

    #[test]
    fn buffer_memory_builds_buffer_cells() {
        let spec = MemorySpec::bounded(InstructionSet::Buffer(2), 1);
        let mut mem = Memory::new(&spec);
        mem.apply(&Op::single(0, I::BufferWrite(Value::int(5)))).unwrap();
        assert_eq!(
            mem.apply(&Op::single(0, I::BufferRead)).unwrap(),
            Value::seq([Value::Bot, Value::int(5)])
        );
    }

    #[test]
    fn multi_assign_is_atomic_and_validated() {
        let spec = MemorySpec::bounded(InstructionSet::Buffer(1), 3);
        let mut mem = Memory::new(&spec);
        mem.apply(&Op::multi_assign([(0, Value::int(1)), (2, Value::int(2))]))
            .unwrap();
        assert_eq!(
            mem.apply(&Op::single(2, I::BufferRead)).unwrap(),
            Value::seq([Value::int(2)])
        );
        let dup = Op::multi_assign([(1, Value::int(1)), (1, Value::int(2))]);
        assert_eq!(
            mem.apply(&dup),
            Err(ModelError::DuplicateMultiAssignTarget { loc: 1 })
        );
        // Out-of-bounds target leaves nothing mutated.
        let before = mem.clone();
        let bad = Op::multi_assign([(0, Value::int(9)), (7, Value::int(9))]);
        assert!(mem.apply(&bad).is_err());
        assert_eq!(mem, before, "atomicity: failed multi-assign has no effect");
    }

    #[test]
    fn multi_assign_on_plain_words_requires_write_in_set() {
        let spec = MemorySpec::bounded(InstructionSet::ReadWrite, 2);
        let mut mem = Memory::new(&spec);
        mem.apply(&Op::multi_assign([(0, Value::int(4)), (1, Value::int(5))]))
            .unwrap();
        assert_eq!(mem.apply(&Op::read(1)).unwrap(), Value::int(5));
        // ... but not on a set without general write.
        let spec = MemorySpec::bounded(InstructionSet::ReadTas, 2);
        let mut mem = Memory::new(&spec);
        assert!(mem.apply(&Op::multi_assign([(0, Value::int(4))])).is_err());
    }

    #[test]
    fn apply_undoable_roundtrips_every_op_kind() {
        let spec = MemorySpec::bounded(InstructionSet::ReadWriteFetchIncrement, 2);
        let mut mem = Memory::new(&spec);
        mem.apply(&Op::single(0, I::write(5))).unwrap();
        let before = mem.clone();
        let (result, undo) = mem
            .apply_undoable(&Op::single(0, I::FetchAndIncrement))
            .unwrap();
        assert_eq!(result, Value::int(5));
        assert_ne!(mem, before);
        mem.undo(undo);
        assert_eq!(mem, before, "undo restores cells and touched count");
        // Growth is rolled back too.
        let mut mem = Memory::new(&MemorySpec::unbounded(InstructionSet::ReadWrite));
        let before = mem.clone();
        let (_, undo) = mem.apply_undoable(&Op::single(9, I::write(1))).unwrap();
        assert_eq!(mem.len(), 10);
        mem.undo(undo);
        assert_eq!(mem, before);
        // A failed step leaves memory untouched (stronger than `apply`).
        let mut mem = Memory::new(&MemorySpec::bounded(InstructionSet::ReadWrite, 1));
        let before = mem.clone();
        assert!(mem.apply_undoable(&Op::single(0, I::TestAndSet)).is_err());
        assert_eq!(mem, before);
    }

    #[test]
    fn touched_tracks_space_usage() {
        let spec = MemorySpec::bounded(InstructionSet::ReadWrite, 10);
        let mut mem = Memory::new(&spec);
        assert_eq!(mem.touched(), 0);
        mem.apply(&Op::read(4)).unwrap();
        assert_eq!(mem.touched(), 5);
        mem.apply(&Op::read(1)).unwrap();
        assert_eq!(mem.touched(), 5);
    }
}
