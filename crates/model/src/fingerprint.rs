//! Stable 128-bit fingerprints for configurations and model values.
//!
//! The bounded model checker memoises visited configurations. Storing whole
//! cloned configurations in the seen-set costs a deep clone per visit;
//! storing a 128-bit fingerprint costs 16 bytes and one hash pass. At 128
//! bits, the collision probability across even 10⁹ distinct configurations
//! is ≈ 10¹⁸⁄2¹²⁸ ≈ 3·10⁻²¹ — far below the probability of a hardware
//! fault — which is the same trade TLC-style explicit-state model checkers
//! make.
//!
//! [`Fp128Hasher`] is FNV-1a over 128 bits. Unlike `std`'s default hasher it
//! is **deterministic across runs and platforms**: it has no random seed and
//! every integer write is little-endian normalised. Anything implementing
//! [`Hash`](std::hash::Hash) — in particular every
//! [`Process`](crate::Process) — can be fingerprinted via [`fingerprint_of`].
//!
//! # Examples
//!
//! ```
//! use cbh_model::{fingerprint_of, Value};
//!
//! let a = Value::seq([Value::int(3), Value::Bot]);
//! let b = Value::seq([Value::int(3), Value::Bot]);
//! assert_eq!(a.fingerprint(), b.fingerprint());
//! assert_ne!(a.fingerprint(), Value::Bot.fingerprint());
//! assert_eq!(a.fingerprint(), fingerprint_of(&a));
//! ```

use std::hash::{Hash, Hasher};

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Post-mix with full avalanche (xor-shift/multiply rounds, both invertible,
/// so no entropy is lost).
///
/// Raw FNV-1a has a structured tail: two inputs differing only in their last
/// bytes produce digests differing by a small multiple of the prime. That is
/// harmless for plain hash-table use but fatal for *additive* composition —
/// the state-space engine sums component digests Zobrist-style, and without
/// this mix a `+1` on one process and a `−1` on another cancel exactly,
/// aliasing distinct configurations. The finalizer destroys that linearity.
fn avalanche(mut x: u128) -> u128 {
    x ^= x >> 83;
    x = x.wrapping_mul(0x2d35_8dcc_aa6c_78a5_8d25_f624_5e96_aa35);
    x ^= x >> 59;
    x = x.wrapping_mul(0x8b72_b5be_bcb7_2b3d_94d0_4979_1afc_82a1);
    x ^= x >> 83;
    x
}

/// A deterministic 128-bit FNV-1a hasher.
///
/// Implements [`Hasher`] so any `Hash` type can feed it; call
/// [`Fp128Hasher::finish128`] for the full 128-bit digest ([`Hasher::finish`]
/// folds it to 64 bits). All integer writes are little-endian normalised so
/// digests agree across platforms.
#[derive(Debug, Clone)]
pub struct Fp128Hasher {
    state: u128,
}

impl Fp128Hasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fp128Hasher { state: FNV_OFFSET }
    }

    /// The full 128-bit digest of everything written so far.
    pub fn finish128(&self) -> u128 {
        avalanche(self.state)
    }
}

impl Default for Fp128Hasher {
    fn default() -> Self {
        Fp128Hasher::new()
    }
}

impl Hasher for Fp128Hasher {
    fn finish(&self) -> u64 {
        let mixed = avalanche(self.state);
        (mixed ^ (mixed >> 64)) as u64
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u128).wrapping_mul(FNV_PRIME);
        }
    }

    // Integer writes are explicitly little-endian so fingerprints are
    // identical on every platform (std's defaults use native endianness).
    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }
    fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// The 128-bit fingerprint of any hashable value.
///
/// Deterministic across runs, processes and platforms, which is what lets
/// the checker's parallel frontier workers agree on a shared seen-set and
/// lets counterexample schedules be replayed from a fingerprint trail.
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u128 {
    let mut hasher = Fp128Hasher::new();
    value.hash(&mut hasher);
    hasher.finish128()
}

impl crate::Value {
    /// Stable 128-bit fingerprint of this value (see [`fingerprint_of`]).
    pub fn fingerprint(&self) -> u128 {
        fingerprint_of(self)
    }
}

impl crate::CellState {
    /// Stable 128-bit fingerprint of this cell (see [`fingerprint_of`]).
    pub fn fingerprint(&self) -> u128 {
        fingerprint_of(self)
    }
}

impl crate::Memory {
    /// Stable 128-bit fingerprint of the whole memory (see [`fingerprint_of`]).
    pub fn fingerprint(&self) -> u128 {
        fingerprint_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, InstructionSet, Memory, MemorySpec, Op, Value};

    #[test]
    fn equal_values_share_fingerprints() {
        assert_eq!(Value::int(7).fingerprint(), Value::int(7).fingerprint());
        assert_ne!(Value::int(7).fingerprint(), Value::int(8).fingerprint());
        assert_ne!(Value::int(0).fingerprint(), Value::Bot.fingerprint());
        assert_ne!(
            Value::seq([Value::int(1)]).fingerprint(),
            Value::seq([Value::int(1), Value::int(1)]).fingerprint()
        );
    }

    #[test]
    fn fingerprints_are_the_documented_function_not_an_accident() {
        // Pin one digest: if the hash function ever changes, this fails and
        // the change is a deliberate, visible decision (stored fingerprints
        // and cross-run determinism both depend on stability).
        let mut h = Fp128Hasher::new();
        h.write(b"cbh");
        assert_eq!(h.finish128(), {
            let mut s = FNV_OFFSET;
            for b in [0x63u8, 0x62, 0x68] {
                s = (s ^ b as u128).wrapping_mul(FNV_PRIME);
            }
            avalanche(s)
        });
    }

    #[test]
    fn digest_differences_are_not_additive() {
        // The property the state-space engine's Zobrist sums rely on: for
        // inputs differing by ±1 in their last position, digest deltas must
        // not cancel. (Raw FNV-1a fails this — deltas are small multiples of
        // the prime.)
        let d = |v: u64| {
            let mut h = Fp128Hasher::new();
            std::hash::Hasher::write_u64(&mut h, v);
            h.finish128()
        };
        for base in [0u64, 7, 1000] {
            let up = d(base + 1).wrapping_sub(d(base));
            let down = d(base + 2).wrapping_sub(d(base + 1));
            assert_ne!(up, down, "additive digest structure at {base}");
        }
    }

    #[test]
    fn memory_fingerprint_tracks_state() {
        let spec = MemorySpec::bounded(InstructionSet::ReadWrite, 2);
        let mut a = Memory::new(&spec);
        let b = Memory::new(&spec);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.apply(&Op::single(0, Instruction::write(5))).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn integer_writes_are_endianness_normalised() {
        // A u64 write must equal the same bytes written little-endian.
        let mut a = Fp128Hasher::new();
        std::hash::Hasher::write_u64(&mut a, 0x0102_0304_0506_0708);
        let mut b = Fp128Hasher::new();
        std::hash::Hasher::write(&mut b, &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish128(), b.finish128());
    }
}
