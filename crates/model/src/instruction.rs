//! Instructions and atomic steps.

use crate::Value;
use cbh_bigint::BigInt;
use std::fmt;

/// Every synchronization instruction appearing in the paper.
///
/// The *trivial* instructions (those that never change the location:
/// [`Instruction::Read`], [`Instruction::ReadMax`], [`Instruction::BufferRead`])
/// are distinguished by [`Instruction::is_trivial`]; the covering arguments of
/// Sections 6–7 only care about non-trivial instructions.
///
/// Instructions that "return nothing" in the paper return [`Value::Bot`] here.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `read()` — returns the contents of the location.
    Read,
    /// `write(x)` — stores `x`, returns nothing.
    Write(Value),
    /// `swap(x)` — stores `x`, returns the previous contents.
    Swap(Value),
    /// `compare-and-swap(x, y)` — if the contents equal `expected`, stores
    /// `new`; returns the previous contents either way.
    CompareAndSwap {
        /// Value the location must hold for the swap to happen.
        expected: Value,
        /// Value installed on success.
        new: Value,
    },
    /// `test-and-set()` — returns the number stored and sets the location to 1
    /// **if it contained 0** (the paper's slightly-stronger definition, §1).
    TestAndSet,
    /// `reset()` — stores 0, returns nothing.
    Reset,
    /// `fetch-and-add(x)` — returns the number stored and adds `x` to it.
    FetchAndAdd(BigInt),
    /// `add(x)` — adds `x`, returns nothing.
    Add(BigInt),
    /// `increment()` — adds 1, returns nothing.
    Increment,
    /// `decrement()` — subtracts 1, returns nothing.
    Decrement,
    /// `fetch-and-increment()` — returns the number stored and adds 1.
    FetchAndIncrement,
    /// `multiply(x)` — multiplies the contents by `x`, returns nothing.
    Multiply(BigInt),
    /// `fetch-and-multiply(x)` — returns the number stored and multiplies by `x`.
    FetchAndMultiply(BigInt),
    /// `set-bit(x)` — sets bit `x` of the location to 1, returns nothing.
    SetBit(u64),
    /// `read-max()` — returns the contents of a max-register.
    ReadMax,
    /// `write-max(x)` — stores `x` if it exceeds the current contents.
    WriteMax(Value),
    /// `ℓ-buffer-read()` — returns the inputs of the `ℓ` most recent buffer
    /// writes, least recent first, `⊥`-padded (Section 6).
    BufferRead,
    /// `ℓ-buffer-write(x)` — appends `x` to the buffer, returns nothing.
    BufferWrite(Value),
}

impl Instruction {
    /// Convenience constructor: `write` of an integer.
    pub fn write(v: impl Into<BigInt>) -> Self {
        Instruction::Write(Value::Int(v.into()))
    }

    /// Convenience constructor: `fetch-and-add` of a machine integer.
    pub fn fetch_and_add(x: impl Into<BigInt>) -> Self {
        Instruction::FetchAndAdd(x.into())
    }

    /// Convenience constructor: `add` of a machine integer.
    pub fn add(x: impl Into<BigInt>) -> Self {
        Instruction::Add(x.into())
    }

    /// Convenience constructor: `multiply` by a machine integer.
    pub fn multiply(x: impl Into<BigInt>) -> Self {
        Instruction::Multiply(x.into())
    }

    /// The fieldless discriminant, used for instruction-set membership.
    pub fn kind(&self) -> InstructionKind {
        match self {
            Instruction::Read => InstructionKind::Read,
            Instruction::Write(_) => InstructionKind::Write,
            Instruction::Swap(_) => InstructionKind::Swap,
            Instruction::CompareAndSwap { .. } => InstructionKind::CompareAndSwap,
            Instruction::TestAndSet => InstructionKind::TestAndSet,
            Instruction::Reset => InstructionKind::Reset,
            Instruction::FetchAndAdd(_) => InstructionKind::FetchAndAdd,
            Instruction::Add(_) => InstructionKind::Add,
            Instruction::Increment => InstructionKind::Increment,
            Instruction::Decrement => InstructionKind::Decrement,
            Instruction::FetchAndIncrement => InstructionKind::FetchAndIncrement,
            Instruction::Multiply(_) => InstructionKind::Multiply,
            Instruction::FetchAndMultiply(_) => InstructionKind::FetchAndMultiply,
            Instruction::SetBit(_) => InstructionKind::SetBit,
            Instruction::ReadMax => InstructionKind::ReadMax,
            Instruction::WriteMax(_) => InstructionKind::WriteMax,
            Instruction::BufferRead => InstructionKind::BufferRead,
            Instruction::BufferWrite(_) => InstructionKind::BufferWrite,
        }
    }

    /// Returns `true` if the instruction can never change the location.
    pub fn is_trivial(&self) -> bool {
        matches!(
            self,
            Instruction::Read | Instruction::ReadMax | Instruction::BufferRead
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Read => write!(f, "read()"),
            Instruction::Write(v) => write!(f, "write({v})"),
            Instruction::Swap(v) => write!(f, "swap({v})"),
            Instruction::CompareAndSwap { expected, new } => {
                write!(f, "compare-and-swap({expected}, {new})")
            }
            Instruction::TestAndSet => write!(f, "test-and-set()"),
            Instruction::Reset => write!(f, "reset()"),
            Instruction::FetchAndAdd(x) => write!(f, "fetch-and-add({x})"),
            Instruction::Add(x) => write!(f, "add({x})"),
            Instruction::Increment => write!(f, "increment()"),
            Instruction::Decrement => write!(f, "decrement()"),
            Instruction::FetchAndIncrement => write!(f, "fetch-and-increment()"),
            Instruction::Multiply(x) => write!(f, "multiply({x})"),
            Instruction::FetchAndMultiply(x) => write!(f, "fetch-and-multiply({x})"),
            Instruction::SetBit(x) => write!(f, "set-bit({x})"),
            Instruction::ReadMax => write!(f, "read-max()"),
            Instruction::WriteMax(v) => write!(f, "write-max({v})"),
            Instruction::BufferRead => write!(f, "ℓ-buffer-read()"),
            Instruction::BufferWrite(v) => write!(f, "ℓ-buffer-write({v})"),
        }
    }
}

impl fmt::Debug for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The fieldless discriminant of an [`Instruction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum InstructionKind {
    Read,
    Write,
    Swap,
    CompareAndSwap,
    TestAndSet,
    Reset,
    FetchAndAdd,
    Add,
    Increment,
    Decrement,
    FetchAndIncrement,
    Multiply,
    FetchAndMultiply,
    SetBit,
    ReadMax,
    WriteMax,
    BufferRead,
    BufferWrite,
}

/// One atomic step's effect on memory.
///
/// Almost every step is a [`Op::Single`] instruction on one location. Section 7
/// additionally allows a process to atomically perform one buffer-write per
/// location on any subset of locations ([`Op::MultiAssign`]); the paper proves
/// such "simple transactions" cannot significantly reduce space complexity.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// One instruction applied to one location.
    Single {
        /// Index of the target location.
        loc: usize,
        /// The instruction to apply.
        instr: Instruction,
    },
    /// Atomic multiple assignment: one write per listed location.
    ///
    /// On `ℓ`-buffer memory each entry is an `ℓ-buffer-write`; on plain
    /// read/write memory each entry is a `write`. Locations must be distinct.
    MultiAssign(Vec<(usize, Value)>),
}

impl Op {
    /// One instruction on one location.
    pub fn single(loc: usize, instr: Instruction) -> Self {
        Op::Single { loc, instr }
    }

    /// Convenience constructor: `read()` of `loc`.
    pub fn read(loc: usize) -> Self {
        Op::single(loc, Instruction::Read)
    }

    /// Convenience constructor: atomic multiple assignment.
    pub fn multi_assign(writes: impl IntoIterator<Item = (usize, Value)>) -> Self {
        Op::MultiAssign(writes.into_iter().collect())
    }

    /// The set of locations this step *may modify* (empty for trivial ops).
    pub fn writes(&self) -> Vec<usize> {
        match self {
            Op::Single { loc, instr } => {
                if instr.is_trivial() {
                    Vec::new()
                } else {
                    vec![*loc]
                }
            }
            Op::MultiAssign(ws) => ws.iter().map(|(loc, _)| *loc).collect(),
        }
    }

    /// The set of locations this step touches at all.
    pub fn touches(&self) -> Vec<usize> {
        match self {
            Op::Single { loc, .. } => vec![*loc],
            Op::MultiAssign(ws) => ws.iter().map(|(loc, _)| *loc).collect(),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Single { loc, instr } => write!(f, "{instr} @ {loc}"),
            Op::MultiAssign(ws) => {
                write!(f, "multi-assign[")?;
                for (i, (loc, v)) in ws.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{loc}←{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_instructions_do_not_write() {
        assert!(Instruction::Read.is_trivial());
        assert!(Instruction::ReadMax.is_trivial());
        assert!(Instruction::BufferRead.is_trivial());
        assert!(!Instruction::TestAndSet.is_trivial());
        assert!(!Instruction::write(0).is_trivial());
        assert_eq!(Op::read(3).writes(), Vec::<usize>::new());
        assert_eq!(Op::single(3, Instruction::Increment).writes(), vec![3]);
    }

    #[test]
    fn multi_assign_writes_all_targets() {
        let op = Op::multi_assign([(0, Value::int(1)), (4, Value::Bot)]);
        assert_eq!(op.writes(), vec![0, 4]);
        assert_eq!(op.touches(), vec![0, 4]);
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Instruction::write(9).kind(), InstructionKind::Write);
        assert_eq!(
            Instruction::CompareAndSwap {
                expected: Value::Bot,
                new: Value::int(1)
            }
            .kind(),
            InstructionKind::CompareAndSwap
        );
    }

    #[test]
    fn display_is_paper_notation() {
        assert_eq!(Instruction::fetch_and_add(2).to_string(), "fetch-and-add(2)");
        assert_eq!(Op::read(0).to_string(), "read() @ 0");
        assert_eq!(
            Op::multi_assign([(1, Value::int(5))]).to_string(),
            "multi-assign[1←5]"
        );
    }
}
