//! Property tests for the [`Schedule`] wire format: every pid sequence
//! round-trips, and every malformed string is rejected with a typed error —
//! never silently truncated.

use cbh_model::{Schedule, ScheduleParseError};
use proptest::prelude::*;

proptest! {
    #[test]
    fn wire_format_round_trips(pids in proptest::collection::vec(0usize..1_000_000, 0..64)) {
        let schedule = Schedule::new(pids.iter().copied());
        let wire = schedule.to_string();
        let parsed: Schedule = wire.parse().unwrap();
        prop_assert_eq!(&parsed, &schedule);
        prop_assert_eq!(parsed.as_slice(), pids.as_slice());
        // Display is canonical: re-serialising the parse reproduces the wire.
        prop_assert_eq!(parsed.to_string(), wire);
    }

    #[test]
    fn whitespace_padding_never_changes_the_parse(
        pids in proptest::collection::vec(0usize..10_000, 1..32),
        pad in 0usize..4,
    ) {
        let padded: String = pids
            .iter()
            .map(|p| format!("{}{}{}", " ".repeat(pad), p, " ".repeat(pad % 3)))
            .collect::<Vec<_>>()
            .join(",");
        let parsed: Schedule = padded.parse().unwrap();
        prop_assert_eq!(parsed.as_slice(), pids.as_slice());
    }

    #[test]
    fn trailing_commas_are_typed_errors(
        pids in proptest::collection::vec(0usize..10_000, 1..16),
    ) {
        let wire = format!("{},", Schedule::new(pids));
        prop_assert_eq!(
            wire.parse::<Schedule>().unwrap_err(),
            ScheduleParseError::TrailingComma
        );
    }

    #[test]
    fn doubled_commas_are_typed_errors(
        left in proptest::collection::vec(0usize..10_000, 1..8),
        right in proptest::collection::vec(0usize..10_000, 1..8),
    ) {
        let wire = format!("{},,{}", Schedule::new(left.iter().copied()), Schedule::new(right));
        prop_assert_eq!(
            wire.parse::<Schedule>().unwrap_err(),
            ScheduleParseError::EmptySegment { index: left.len() }
        );
    }

    #[test]
    fn oversized_digit_runs_overflow_instead_of_truncating(
        pids in proptest::collection::vec(0usize..10_000, 0..8),
        extra in 0u8..10,
    ) {
        // usize::MAX with one extra digit appended can never fit a pid.
        let big = format!("{}{extra}", usize::MAX);
        let mut parts: Vec<String> = pids.iter().map(ToString::to_string).collect();
        parts.push(big.clone());
        let wire = parts.join(",");
        prop_assert_eq!(
            wire.parse::<Schedule>().unwrap_err(),
            ScheduleParseError::Overflow { index: pids.len(), token: big }
        );
    }

    #[test]
    fn junk_tokens_are_rejected_with_their_position(
        pids in proptest::collection::vec(0usize..10_000, 0..8),
        junk_pick in 0usize..8,
    ) {
        let junk = ["x", "ab", ";", "#", "!q", "z;w", "1x2", "-3"][junk_pick].to_string();
        let mut parts: Vec<String> = pids.iter().map(ToString::to_string).collect();
        parts.push(junk.clone());
        let wire = parts.join(",");
        prop_assert_eq!(
            wire.parse::<Schedule>().unwrap_err(),
            ScheduleParseError::InvalidToken { index: pids.len(), token: junk }
        );
    }
}
