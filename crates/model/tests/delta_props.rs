//! Property tests for the packed-state delta codec — the wire format the
//! disk-spillable frontier trusts with its configurations.
//!
//! Random schedules over **every Table-1 registry row** produce real
//! parent/child `PackedState` pairs (exactly the pairs a spill run chains),
//! and for each pair:
//!
//! - `encode_delta` → `apply_delta` reproduces the child bit for bit: field
//!   equality, byte equality of a re-encode, and context-digest equality in
//!   both digest modes (the engine's actual seen-set keys);
//! - the flat record round-trips the same way;
//! - a delta chain along the whole schedule replays to the same final state;
//! - corrupting or truncating any encoding makes decoding return a typed
//!   [`DeltaError`] or (for value-level corruption the positional format
//!   cannot distinguish from honest data) a decoded state — but never a
//!   panic, and never a silent half-write.

use cbh_core::registry::{self, RowSpec, RowVisitor};
use cbh_model::packed::delta::{apply_delta, decode_flat, encode_delta, encode_flat, DeltaError};
use cbh_model::{PackedCtx, PackedState, Process, Protocol};
use cbh_sim::Machine;
use proptest::prelude::*;

#[derive(Clone, Copy)]
enum Check {
    Roundtrips,
    Chain,
    Corruption,
}

/// Drives `schedule` (pid stream, modulo `n`, inactive pids skipped) through
/// one row's packed representation and runs `check` on the visited chain.
struct ScheduleWalk<'a> {
    schedule: &'a [usize],
    check: Check,
}

impl RowVisitor for ScheduleWalk<'_> {
    type Output = ();

    fn visit<P>(&mut self, _spec: &RowSpec, protocol: P)
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let n = protocol.n();
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % protocol.domain()).collect();
        let machine = Machine::start(&protocol, &inputs).expect("row starts");
        let ctx = machine.packed_ctx();
        let mut state = machine.pack(&ctx);
        let mut states = vec![state.clone()];
        for &raw in self.schedule {
            let pid = raw % n;
            if !ctx.is_active(&state, pid) {
                continue;
            }
            ctx.step(&mut state, pid).expect("active pid steps");
            states.push(state.clone());
        }
        match self.check {
            Check::Roundtrips => check_roundtrips(&ctx, &states),
            Check::Chain => check_delta_chain(&states),
            Check::Corruption => check_corruption_is_typed(&states),
        }
    }
}

fn walk_all_rows(schedule: &[usize], check: Check) {
    for row in registry::all_rows() {
        registry::visit_row(row.id, 3, &mut ScheduleWalk { schedule, check })
            .expect("registered row");
    }
}

/// Exactness in three currencies: fields, encoded bytes, and both engine
/// digests — the decoded state must be indistinguishable from the original.
fn assert_exact<P: Process>(
    ctx: &PackedCtx<P>,
    original: &PackedState,
    decoded: &PackedState,
    what: &str,
) {
    assert_eq!(original, decoded, "{what}: field mismatch");
    let mut a = Vec::new();
    encode_flat(original, &mut a);
    let mut b = Vec::new();
    encode_flat(decoded, &mut b);
    assert_eq!(a, b, "{what}: byte mismatch");
    for symmetric in [false, true] {
        assert_eq!(
            ctx.digest(original, symmetric),
            ctx.digest(decoded, symmetric),
            "{what}: digest mismatch (symmetric={symmetric})"
        );
    }
}

fn check_roundtrips<P: Process>(ctx: &PackedCtx<P>, states: &[PackedState]) {
    for (index, state) in states.iter().enumerate() {
        let mut flat = Vec::new();
        encode_flat(state, &mut flat);
        let decoded = decode_flat(&flat).expect("honest flat record decodes");
        assert_exact(ctx, state, &decoded, "flat round-trip");
        let _ = index;
    }
    for pair in states.windows(2) {
        let (parent, child) = (&pair[0], &pair[1]);
        let mut delta = Vec::new();
        encode_delta(parent, child, &mut delta);
        let decoded = apply_delta(parent, &delta).expect("honest delta applies");
        assert_exact(ctx, child, &decoded, "delta round-trip");
        // And the reverse edge (undo direction) round-trips as well.
        let mut back = Vec::new();
        encode_delta(child, parent, &mut back);
        let reverted = apply_delta(child, &back).expect("reverse delta applies");
        assert_exact(ctx, parent, &reverted, "reverse delta round-trip");
    }
}

fn check_delta_chain(states: &[PackedState]) {
    // A spill run is exactly this: flat head, then deltas against the
    // previous record. Replaying the chain must land on the final state.
    let mut head = Vec::new();
    encode_flat(&states[0], &mut head);
    let mut current = decode_flat(&head).expect("chain head decodes");
    for child in &states[1..] {
        let mut delta = Vec::new();
        encode_delta(&current, child, &mut delta);
        current = apply_delta(&current, &delta).expect("chain record applies");
    }
    assert_eq!(&current, states.last().unwrap(), "delta chain replay");
}

fn check_corruption_is_typed(states: &[PackedState]) {
    let parent = &states[0];
    let child = states.last().unwrap();
    let mut delta = Vec::new();
    encode_delta(parent, child, &mut delta);
    let mut flat = Vec::new();
    encode_flat(child, &mut flat);
    // Every strict prefix of either encoding is a typed error — truncation
    // can never produce a state.
    for cut in 0..delta.len() {
        assert!(
            apply_delta(parent, &delta[..cut]).is_err(),
            "truncated delta at {cut} decoded"
        );
    }
    for cut in 0..flat.len() {
        assert!(decode_flat(&flat[..cut]).is_err(), "truncated flat at {cut}");
    }
    // Trailing garbage is the TrailingBytes error, not a silent ignore.
    let mut padded = flat.clone();
    padded.extend_from_slice(&[0, 0, 0]);
    assert_eq!(
        decode_flat(&padded),
        Err(DeltaError::TrailingBytes { remaining: 3 })
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn records_roundtrip_exactly_on_every_row(
        schedule in proptest::collection::vec(0usize..3, 1..24),
    ) {
        walk_all_rows(&schedule, Check::Roundtrips);
    }

    #[test]
    fn delta_chains_replay_whole_schedules_on_every_row(
        schedule in proptest::collection::vec(0usize..3, 1..24),
    ) {
        walk_all_rows(&schedule, Check::Chain);
    }

    #[test]
    fn truncation_and_padding_are_typed_errors_on_every_row(
        schedule in proptest::collection::vec(0usize..3, 1..12),
    ) {
        walk_all_rows(&schedule, Check::Corruption);
    }

    #[test]
    fn fuzzed_byte_mutations_never_panic(
        schedule in proptest::collection::vec(0usize..3, 1..16),
        flips in proptest::collection::vec((0usize..4096, 0u8..255), 1..16),
    ) {
        // Byte-level fuzz on one representative dense row: any mutation of a
        // valid record either decodes to *some* state (positional formats
        // cannot authenticate values) or fails with a typed error. What it
        // must never do is panic or allocate absurdly — decoding runs under
        // the codec's length plausibility guard.
        let protocol = cbh_core::bitwise::tas_reset_consensus(3);
        let machine = Machine::start(&protocol, &[0, 1, 2]).unwrap();
        let ctx: PackedCtx<_> = machine.packed_ctx();
        let parent = machine.pack(&ctx);
        let mut state = parent.clone();
        for &raw in &schedule {
            let pid = raw % 3;
            if ctx.is_active(&state, pid) {
                ctx.step(&mut state, pid).unwrap();
            }
        }
        let mut flat = Vec::new();
        encode_flat(&state, &mut flat);
        let mut delta = Vec::new();
        encode_delta(&parent, &state, &mut delta);
        for &(pos, value) in &flips {
            let mut corrupt = flat.clone();
            let at = pos % corrupt.len();
            corrupt[at] ^= value | 1;
            let _ = decode_flat(&corrupt); // must return, Ok or Err
            let mut corrupt = delta.clone();
            let at = pos % corrupt.len();
            corrupt[at] ^= value | 1;
            let _ = apply_delta(&parent, &corrupt);
        }
    }
}
