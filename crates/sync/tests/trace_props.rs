//! Property tests for trace capture & replay.
//!
//! Two guarantees, fuzzed over the whole Table-1 registry:
//!
//! 1. **Lockstep replay** — a capture-enabled threaded run of any registry
//!    row on random inputs yields a trace whose replay through
//!    `cbh_sim::replay_schedule` reproduces the physical run's
//!    [`ConsensusReport`] bit for bit (and the capture survives its wire
//!    format unchanged).
//! 2. **Total decode** — arbitrarily corrupted or truncated trace bytes
//!    decode to a typed [`TraceError`], never a panic: capture files are
//!    data, not trusted input.

use cbh_core::registry::{all_rows, visit_row, RowSpec, RowVisitor};
use cbh_model::trace::{CompactTrace, OpKind, TraceFrame};
use cbh_model::Protocol;
use cbh_sync::run_threaded_traced;
use proptest::prelude::*;

/// splitmix64-style input derivation: deterministic in (seed, pid).
fn derive_input(seed: u64, pid: usize, domain: u64) -> u64 {
    let mut x = seed ^ (pid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x % domain.max(1)
}

struct LockstepCheck {
    seed: u64,
}

impl RowVisitor for LockstepCheck {
    type Output = ();

    fn visit<P>(&mut self, spec: &RowSpec, protocol: P)
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let inputs: Vec<u64> = (0..protocol.n())
            .map(|pid| derive_input(self.seed, pid, protocol.domain()))
            .collect();
        let outcome = run_threaded_traced(&protocol, &inputs, 200_000)
            .unwrap_or_else(|e| panic!("row {} errored: {e}", spec.id));
        assert_eq!(
            outcome.trace.len() as u64,
            outcome.report.steps,
            "row {}: one frame per applied instruction",
            spec.id
        );
        let replayed = cbh_sim::replay_schedule(&protocol, &inputs, &outcome.trace.schedule())
            .unwrap_or_else(|e| panic!("row {}: captured trace fails to replay: {e}", spec.id));
        assert_eq!(
            replayed, outcome.report,
            "row {}: replay of the captured linearization must be lockstep-identical",
            spec.id
        );
        let decoded = CompactTrace::from_bytes(&outcome.trace.to_bytes())
            .unwrap_or_else(|e| panic!("row {}: wire round-trip failed: {e}", spec.id));
        assert_eq!(decoded, outcome.trace, "row {}: wire identity", spec.id);
    }
}

proptest! {
    #[test]
    fn captured_traces_replay_lockstep_on_every_row(
        row_pick in 0usize..64,
        extra_n in 0usize..2,
        seed in any::<u64>(),
    ) {
        let rows = all_rows();
        let spec = &rows[row_pick % rows.len()];
        let n = spec.min_n + extra_n;
        visit_row(spec.id, n, &mut LockstepCheck { seed })
            .expect("registry row exists");
    }

    #[test]
    fn corrupt_trace_bytes_decode_to_typed_errors(
        pids in proptest::collection::vec(0u32..4, 0..48),
        locs in proptest::collection::vec(0u32..8, 48),
        kinds in proptest::collection::vec(0u32..2, 48),
        cut in any::<u16>(),
        flip_at in any::<u16>(),
        flip_bits in 1u8..=255,
    ) {
        // Assemble a valid trace from a random interleaving...
        let mut per_pid = [0u32; 4];
        let frames: Vec<TraceFrame> = pids
            .iter()
            .enumerate()
            .map(|(i, &pid)| {
                let step = per_pid[pid as usize];
                per_pid[pid as usize] += 1;
                TraceFrame {
                    seq: i as u32,
                    pid,
                    kind: if kinds[i] == 0 { OpKind::Single } else { OpKind::MultiAssign },
                    loc: locs[i],
                    step,
                }
            })
            .collect();
        let trace = CompactTrace::from_frames(4, frames).expect("constructed valid");
        let bytes = trace.to_bytes();

        // ...then attack it: truncate anywhere, or flip bits anywhere.
        let truncated = &bytes[..(cut as usize) % (bytes.len() + 1)];
        if truncated.len() < bytes.len() {
            prop_assert!(
                CompactTrace::from_bytes(truncated).is_err(),
                "a strict prefix can never be a valid trace"
            );
        }
        let mut flipped = bytes.clone();
        let at = (flip_at as usize) % flipped.len();
        flipped[at] ^= flip_bits;
        // Flips may or may not land on validated fields; the only contract
        // is totality — Ok or a typed error, never a panic.
        let _ = CompactTrace::from_bytes(&flipped);
    }
}
