//! The paper's derived objects as native concurrent types.
//!
//! These are the objects a downstream user would actually instantiate: a
//! [`MaxRegister`] (Section 4), an [`LBuffer`] (Section 6), the
//! [`HistoryObject`] built from one buffer (Lemma 6.1), the single-writer
//! register array derived from it ([`SwmrRegisters`], Lemma 6.2), and the
//! racing-counters workhorse [`MCounter`] (Section 3).

use cbh_bigint::BigInt;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent max-register: `write_max` only ever raises the value.
///
/// # Examples
///
/// ```
/// use cbh_sync::objects::MaxRegister;
///
/// let r = MaxRegister::new(0u64.into());
/// r.write_max(5u64.into());
/// r.write_max(3u64.into());
/// assert_eq!(r.read_max(), 5u64.into());
/// ```
#[derive(Debug)]
pub struct MaxRegister {
    value: Mutex<BigInt>,
}

impl MaxRegister {
    /// A max-register holding `initial`.
    pub fn new(initial: BigInt) -> Self {
        MaxRegister {
            value: Mutex::new(initial),
        }
    }

    /// Raises the register to `v` if `v` exceeds the current value.
    pub fn write_max(&self, v: BigInt) {
        let mut cur = self.value.lock();
        if v > *cur {
            *cur = v;
        }
    }

    /// The largest value ever written (or the initial value).
    pub fn read_max(&self) -> BigInt {
        self.value.lock().clone()
    }
}

impl Default for MaxRegister {
    fn default() -> Self {
        MaxRegister::new(BigInt::zero())
    }
}

/// A concurrent `ℓ`-buffer: reads return the `ℓ` most recent writes,
/// oldest first, `None`-padded.
#[derive(Debug)]
pub struct LBuffer<T> {
    cap: usize,
    entries: Mutex<VecDeque<T>>,
}

impl<T: Clone> LBuffer<T> {
    /// An empty buffer of capacity `ℓ = cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ℓ-buffer capacity must be at least 1");
        LBuffer {
            cap,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The capacity `ℓ`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// `ℓ-buffer-write(v)`.
    pub fn write(&self, v: T) {
        let mut entries = self.entries.lock();
        entries.push_back(v);
        while entries.len() > self.cap {
            entries.pop_front();
        }
    }

    /// `ℓ-buffer-read()`: `ℓ` slots, oldest first, `None` where fewer than
    /// `ℓ` writes have happened.
    pub fn read(&self) -> Vec<Option<T>> {
        let entries = self.entries.lock();
        let mut out: Vec<Option<T>> = Vec::with_capacity(self.cap);
        out.resize(self.cap - entries.len(), None);
        out.extend(entries.iter().cloned().map(Some));
        out
    }
}

/// A record in a [`HistoryObject`]: unique via `(writer, seq)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HistoryRecord<T> {
    /// The appending writer (must be `< writers`).
    pub writer: usize,
    /// Writer-local sequence number.
    pub seq: u64,
    /// The appended value.
    pub value: T,
}

/// A history object simulated from a single `ℓ`-buffer (Lemma 6.1), for at
/// most `ℓ` distinct writers and any number of readers.
///
/// # Examples
///
/// ```
/// use cbh_sync::objects::HistoryObject;
///
/// let h: HistoryObject<&str> = HistoryObject::new(2);
/// h.append(0, "a");
/// h.append(1, "b");
/// h.append(0, "c");
/// let vals: Vec<_> = h.get_history().into_iter().map(|r| r.value).collect();
/// assert_eq!(vals, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct HistoryObject<T> {
    buffer: LBuffer<(Vec<HistoryRecord<T>>, HistoryRecord<T>)>,
    seqs: Mutex<Vec<u64>>,
}

impl<T: Clone + PartialEq> HistoryObject<T> {
    /// A history object over one `ℓ`-buffer supporting `writers = ℓ` writers.
    pub fn new(writers: usize) -> Self {
        HistoryObject {
            buffer: LBuffer::new(writers),
            seqs: Mutex::new(vec![0; writers]),
        }
    }

    /// Appends `value` on behalf of `writer` (Lemma 6.1's `append`): a
    /// `get-history` followed by one buffer write of `(history, record)`.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is out of range.
    pub fn append(&self, writer: usize, value: T) {
        let seq = {
            let mut seqs = self.seqs.lock();
            let s = seqs[writer];
            seqs[writer] += 1;
            s
        };
        let record = HistoryRecord { writer, seq, value };
        let history = self.get_history();
        self.buffer.write((history, record));
    }

    /// Returns the full linearized history (Lemma 6.1's `get-history`).
    pub fn get_history(&self) -> Vec<HistoryRecord<T>> {
        let slots = self.buffer.read();
        let present: Vec<&(Vec<HistoryRecord<T>>, HistoryRecord<T>)> =
            slots.iter().flatten().collect();
        if present.len() < slots.len() {
            return present.iter().map(|(_, x)| x.clone()).collect();
        }
        if present.is_empty() {
            return Vec::new();
        }
        let x1 = &present[0].1;
        let h = present
            .iter()
            .map(|(h, _)| h)
            .max_by_key(|h| h.len())
            .expect("non-empty");
        let same = |a: &HistoryRecord<T>, b: &HistoryRecord<T>| {
            a.writer == b.writer && a.seq == b.seq
        };
        let mut out: Vec<HistoryRecord<T>> = match h.iter().position(|r| same(r, x1)) {
            Some(pos) => h[..pos].to_vec(),
            None => h.clone(),
        };
        out.extend(present.iter().map(|(_, x)| x.clone()));
        out
    }
}

/// `ℓ` single-writer multi-reader registers from one `ℓ`-buffer (Lemma 6.2).
#[derive(Debug)]
pub struct SwmrRegisters<T> {
    history: HistoryObject<T>,
}

impl<T: Clone + PartialEq> SwmrRegisters<T> {
    /// `count` single-writer registers (register `i` owned by writer `i`),
    /// all initially empty.
    pub fn new(count: usize) -> Self {
        SwmrRegisters {
            history: HistoryObject::new(count),
        }
    }

    /// Writes `v` to the register owned by `owner`.
    pub fn write(&self, owner: usize, v: T) {
        self.history.append(owner, v);
    }

    /// Reads the register owned by `owner` (`None` if never written).
    pub fn read(&self, owner: usize) -> Option<T> {
        self.history
            .get_history()
            .into_iter()
            .rev()
            .find(|r| r.writer == owner)
            .map(|r| r.value)
    }
}

/// An `m`-component counter with lock-free increments and a double-collect
/// `scan` (counts are monotone, so repeated identical collects linearize).
#[derive(Debug)]
pub struct MCounter {
    components: Vec<AtomicU64>,
}

impl MCounter {
    /// An `m`-component counter, all components 0.
    pub fn new(m: usize) -> Self {
        MCounter {
            components: (0..m).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of components.
    pub fn m(&self) -> usize {
        self.components.len()
    }

    /// Increments component `v`.
    pub fn increment(&self, v: usize) {
        self.components[v].fetch_add(1, Ordering::SeqCst);
    }

    /// A linearizable snapshot of all components (double collect).
    pub fn scan(&self) -> Vec<u64> {
        let collect = |out: &mut Vec<u64>| {
            out.clear();
            out.extend(self.components.iter().map(|c| c.load(Ordering::SeqCst)));
        };
        let mut prev = Vec::new();
        let mut cur = Vec::new();
        collect(&mut prev);
        loop {
            collect(&mut cur);
            if prev == cur {
                return cur;
            }
            std::mem::swap(&mut prev, &mut cur);
        }
    }
}

/// Native racing-counters consensus (Lemma 3.1 directly on [`MCounter`]):
/// `n` threads, values `0..m`; returns the agreed value.
///
/// # Panics
///
/// Panics if `inputs` is empty or any input is `≥ m`.
pub fn racing_consensus_native(m: usize, inputs: &[u64]) -> u64 {
    assert!(!inputs.is_empty());
    assert!(inputs.iter().all(|&v| (v as usize) < m), "inputs in domain");
    let n = inputs.len() as u64;
    let counter = MCounter::new(m);
    let decisions: Vec<Mutex<Option<u64>>> = inputs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (pid, &input) in inputs.iter().enumerate() {
            let counter = &counter;
            let decisions = &decisions;
            scope.spawn(move || {
                let mut target = input as usize;
                loop {
                    counter.increment(target);
                    let counts = counter.scan();
                    let lead = counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map(|(v, _)| v)
                        .expect("m ≥ 1");
                    if counts
                        .iter()
                        .enumerate()
                        .all(|(v, &c)| v == lead || counts[lead] >= c + n)
                    {
                        *decisions[pid].lock() = Some(lead as u64);
                        return;
                    }
                    target = lead;
                }
            });
        }
    });

    let first = decisions[0].lock().expect("decided");
    for d in &decisions {
        assert_eq!(d.lock().expect("decided"), first, "agreement");
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_register_is_monotone_under_threads() {
        let r = MaxRegister::default();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..100 {
                        r.write_max(BigInt::from(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(r.read_max(), BigInt::from(7099u64));
    }

    #[test]
    fn lbuffer_semantics() {
        let b: LBuffer<u32> = LBuffer::new(3);
        assert_eq!(b.read(), vec![None, None, None]);
        b.write(1);
        b.write(2);
        assert_eq!(b.read(), vec![None, Some(1), Some(2)]);
        b.write(3);
        b.write(4);
        assert_eq!(b.read(), vec![Some(2), Some(3), Some(4)]);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn history_object_sequential() {
        let h: HistoryObject<u32> = HistoryObject::new(3);
        for i in 0..10 {
            h.append((i % 3) as usize, i);
        }
        let vals: Vec<u32> = h.get_history().into_iter().map(|r| r.value).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn history_object_concurrent_appends_linearize() {
        let h: HistoryObject<(usize, u64)> = HistoryObject::new(4);
        std::thread::scope(|s| {
            for w in 0..4usize {
                let h = &h;
                s.spawn(move || {
                    for i in 0..50u64 {
                        h.append(w, (w, i));
                    }
                });
            }
        });
        let hist = h.get_history();
        assert_eq!(hist.len(), 200, "no append is lost");
        // Per-writer subsequences appear in order.
        for w in 0..4usize {
            let seqs: Vec<u64> = hist
                .iter()
                .filter(|r| r.writer == w)
                .map(|r| r.seq)
                .collect();
            assert_eq!(seqs, (0..50).collect::<Vec<_>>(), "writer {w} in order");
        }
    }

    #[test]
    fn swmr_registers() {
        let regs: SwmrRegisters<&str> = SwmrRegisters::new(2);
        assert_eq!(regs.read(0), None);
        regs.write(0, "x");
        regs.write(1, "y");
        regs.write(0, "z");
        assert_eq!(regs.read(0), Some("z"));
        assert_eq!(regs.read(1), Some("y"));
    }

    #[test]
    fn mcounter_scan_sums_all_increments() {
        let c = MCounter::new(2);
        std::thread::scope(|s| {
            for t in 0..6usize {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.increment(t % 2);
                    }
                });
            }
        });
        assert_eq!(c.scan(), vec![3000, 3000]);
    }

    #[test]
    fn native_racing_consensus_agrees_and_is_valid() {
        for _ in 0..5 {
            let inputs = [2u64, 0, 2, 1, 2, 2, 0, 1];
            let v = racing_consensus_native(3, &inputs);
            assert!(inputs.contains(&v));
        }
    }

    #[test]
    fn native_racing_unanimous() {
        assert_eq!(racing_consensus_native(4, &[3, 3, 3, 3]), 3);
    }
}
