//! Universality of the history object (Conclusions, §10).
//!
//! *"One history object can be used to implement any sequentially defined
//! object."* — the paper's closing observation, implemented: a
//! [`Universal<S>`] wraps one [`HistoryObject`]
//! (itself simulated from a single `ℓ`-buffer, Lemma 6.1) and exposes any
//! [`SequentialSpec`]. Every invocation appends the operation to the shared
//! history and locally replays the linearized prefix to compute its response;
//! the object is linearizable because the history is.
//!
//! This is the sense in which the space hierarchy measures something
//! universal: the locations needed for consensus are, for these instruction
//! sets, the locations needed to implement *anything*.

use crate::objects::HistoryObject;

/// A sequentially-specified object: deterministic transitions over an
/// initial state.
pub trait SequentialSpec {
    /// Operation type (must be self-contained; it is stored in the history).
    type Op: Clone + PartialEq;
    /// Response type.
    type Resp;
    /// The object's state during replay.
    type State;

    /// The initial state.
    fn init() -> Self::State;

    /// Applies one operation, returning the response.
    fn apply(state: &mut Self::State, op: &Self::Op) -> Self::Resp;
}

/// A linearizable object implemented from one history object, supporting up
/// to `writers` mutating processes and any number of readers.
#[derive(Debug)]
pub struct Universal<S: SequentialSpec> {
    history: HistoryObject<S::Op>,
}

impl<S: SequentialSpec> Universal<S> {
    /// A universal object over a history object for `writers` processes.
    pub fn new(writers: usize) -> Self {
        Universal {
            history: HistoryObject::new(writers),
        }
    }

    /// Invokes `op` on behalf of `writer` and returns its response.
    ///
    /// Linearization point: the append of `op` into the history. The
    /// response is computed by replaying every operation up to and including
    /// `op` against [`SequentialSpec::init`].
    ///
    /// # Panics
    ///
    /// Panics if `writer` is out of range for the underlying history object.
    pub fn invoke(&self, writer: usize, op: S::Op) -> S::Resp {
        self.history.append(writer, op);
        // Replay the prefix ending at the *last* append by this writer (which
        // is the one we just performed; appends by one writer are sequential).
        let hist = self.history.get_history();
        let my_last = hist
            .iter()
            .rposition(|r| r.writer == writer)
            .expect("our append is in the history");
        let mut state = S::init();
        let mut resp = None;
        for rec in &hist[..=my_last] {
            let r = S::apply(&mut state, &rec.value);
            if std::ptr::eq(rec, &hist[my_last]) {
                resp = Some(r);
            }
        }
        resp.expect("replay reached our operation")
    }

    /// A read-only snapshot: replays the whole history and returns the state.
    pub fn read_state(&self) -> S::State {
        let mut state = S::init();
        for rec in self.history.get_history() {
            let _ = S::apply(&mut state, &rec.value);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A FIFO queue of u64s.
    struct QueueSpec;

    #[derive(Debug, Clone, PartialEq)]
    enum QueueOp {
        Enqueue(u64),
        Dequeue,
    }

    impl SequentialSpec for QueueSpec {
        type Op = QueueOp;
        type Resp = Option<u64>;
        type State = std::collections::VecDeque<u64>;

        fn init() -> Self::State {
            std::collections::VecDeque::new()
        }

        fn apply(state: &mut Self::State, op: &QueueOp) -> Option<u64> {
            match op {
                QueueOp::Enqueue(v) => {
                    state.push_back(*v);
                    None
                }
                QueueOp::Dequeue => state.pop_front(),
            }
        }
    }

    #[test]
    fn sequential_queue_semantics() {
        let q: Universal<QueueSpec> = Universal::new(1);
        assert_eq!(q.invoke(0, QueueOp::Dequeue), None);
        q.invoke(0, QueueOp::Enqueue(1));
        q.invoke(0, QueueOp::Enqueue(2));
        assert_eq!(q.invoke(0, QueueOp::Dequeue), Some(1));
        assert_eq!(q.invoke(0, QueueOp::Dequeue), Some(2));
        assert_eq!(q.invoke(0, QueueOp::Dequeue), None);
    }

    #[test]
    fn concurrent_queue_is_linearizable() {
        // 3 producers enqueue disjoint ranges concurrently; a replayed state
        // afterwards must contain every element exactly once, and each
        // producer's elements in order.
        let q: Universal<QueueSpec> = Universal::new(3);
        std::thread::scope(|s| {
            for w in 0..3usize {
                let q = &q;
                s.spawn(move || {
                    for i in 0..50u64 {
                        q.invoke(w, QueueOp::Enqueue(w as u64 * 1000 + i));
                    }
                });
            }
        });
        let state = q.read_state();
        assert_eq!(state.len(), 150, "no enqueue lost");
        for w in 0..3u64 {
            let mine: Vec<u64> = state
                .iter()
                .copied()
                .filter(|v| v / 1000 == w)
                .collect();
            let expect: Vec<u64> = (0..50).map(|i| w * 1000 + i).collect();
            assert_eq!(mine, expect, "producer {w} in order");
        }
    }

    /// A bank account that rejects overdrafts — responses depend on the
    /// *linearized* order, which makes it a sharper linearizability probe.
    struct AccountSpec;

    impl SequentialSpec for AccountSpec {
        type Op = i64; // deposit (+) or withdrawal (−)
        type Resp = bool; // accepted?
        type State = i64;

        fn init() -> i64 {
            0
        }

        fn apply(balance: &mut i64, op: &i64) -> bool {
            if *balance + op >= 0 {
                *balance += op;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn account_never_overdrafts_under_contention() {
        let acct: Universal<AccountSpec> = Universal::new(4);
        let accepted = std::sync::atomic::AtomicI64::new(0);
        std::thread::scope(|s| {
            for w in 0..4usize {
                let acct = &acct;
                let accepted = &accepted;
                s.spawn(move || {
                    for i in 0..40 {
                        let op = if (w + i) % 2 == 0 { 5 } else { -3 };
                        if acct.invoke(w, op) {
                            accepted.fetch_add(op, std::sync::atomic::Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        let balance = acct.read_state();
        assert!(balance >= 0, "linearized balance never negative");
        assert_eq!(
            balance,
            accepted.load(std::sync::atomic::Ordering::SeqCst),
            "responses consistent with the linearization"
        );
    }
}
